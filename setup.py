"""Setuptools entry point.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 517/660 editable installs (which build a wheel) are unavailable; project
metadata therefore lives here so ``pip install -e .`` can use the legacy
``setup.py develop`` path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    description=(
        "Two-phase recall-and-select framework for fast pre-trained model "
        "selection (ICDE 2024 reproduction)"
    ),
    long_description=open("README.md", encoding="utf-8").read() if __import__("os").path.exists("README.md") else "",
    long_description_content_type="text/markdown",
    author="Reproduction Authors",
    license="MIT",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=[
        "numpy>=1.24",
        "scipy>=1.10",
    ],
    extras_require={
        "dev": [
            "pytest>=7.0",
            "pytest-benchmark>=4.0",
            "hypothesis>=6.0",
        ],
    },
)
