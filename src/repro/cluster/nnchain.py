"""Nearest-neighbor-chain agglomerative clustering (sub-quadratic merge loop).

The classical nearest-neighbor-chain algorithm (Benzecri 1982, Murtagh 1983)
computes the full agglomerative dendrogram for any *reducible* linkage —
average (the paper's choice), single and complete all are — in ``O(n^2)``
time with ``O(n)`` extra state, by repeatedly following nearest-neighbor
pointers until a reciprocal pair is found and merging it.  The working-
matrix scan in :mod:`repro.cluster.hierarchical` instead re-derives linkage
values from raw distance blocks on every merge, which makes each merge cost
``O(active)`` small numpy calls — the ~750 s clustering tail of the n=5000
out-of-core build (``docs/benchmarks.md``).

Equivalence contract (enforced by ``tests/cluster/test_nnchain.py`` and the
property suite):

* On **tie-free** inputs the applied merge sequence — pair slots, heights
  and final labels — is identical to
  :meth:`repro.cluster.hierarchical.AgglomerativeClustering.fit_predict`:
  reducible linkages have monotone dendrograms, so the chain's merges,
  stable-sorted by height, replay in exactly the order the greedy
  closest-pair scan discovers them.  Heights agree bitwise for single and
  complete linkage (min/max are exact); for average linkage the
  Lance-Williams recurrence is mathematically identical to the scan's raw
  block means but rounds differently, so heights agree to ~1 ulp per merge
  depth.
* On tied inputs NN-chain tie-breaking is **not** order-equivalent to the
  scan's row-major first-occurrence rule (different reciprocal pairs can
  legally merge first, and for average/complete linkage that changes the
  dendrogram).  The chain therefore checks every nearest-neighbor decision
  for an exact duplicate of the row minimum and, on the first tie it
  encounters, raises :class:`TiedDistancesError`;
  :class:`NNChainClustering` catches it and delegates the whole input to
  the scan oracle, so ``fit_predict`` reproduces the scan's tie behavior
  — including the row-min cache tie branch — on every input the chain
  cannot decide unambiguously.  The tie fuzz in
  ``tests/property/test_property_cluster.py`` hammers this with
  adversarial tied/duplicate-distance matrices.

Memory-mapped distance matrices are handled exactly like the scan path: the
mutable linkage working matrix spills to a scratch memmap in the matrix
store (``work_store``), the input is only read in row blocks
(:func:`repro.store.iter_row_blocks`), and — unlike the scan — no
``O(|merged cluster| x n)`` raw-row refetch happens per merge: the
Lance-Williams update needs only the two working rows being merged.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.cluster.assignments import ClusterAssignment
from repro.cluster.distance import STREAM_BLOCK_ROWS, check_distance_matrix
from repro.cluster.hierarchical import AgglomerativeClustering
from repro.store import StoreLike, iter_row_blocks, resolve_store
from repro.utils.exceptions import ConfigurationError, DataError

__all__ = [
    "NNChainClustering",
    "TiedDistancesError",
    "nn_chain_dendrogram",
    "nnchain_cluster",
]


class TiedDistancesError(DataError):
    """The chain met an exactly tied nearest-neighbor decision.

    Raised by :func:`nn_chain_dendrogram` so callers can fall back to the
    scan algorithm, whose global row-major first-occurrence tie-breaking is
    the repository's reference behavior on tied inputs.
    """


def _lance_williams(
    linkage: str, row_a: np.ndarray, row_b: np.ndarray, size_a: float, size_b: float
) -> np.ndarray:
    """Linkage row of ``a u b`` to every slot, from the rows of ``a`` and ``b``.

    Exact (bitwise) for single/complete linkage; for average linkage the
    weighted mean is mathematically the raw block mean with different
    floating-point rounding.
    """
    if linkage == "average":
        return (size_a * row_a + size_b * row_b) / (size_a + size_b)
    if linkage == "single":
        return np.minimum(row_a, row_b)
    return np.maximum(row_a, row_b)


def nn_chain_dendrogram(
    distance_matrix: np.ndarray,
    *,
    linkage: str = "average",
    work_store: StoreLike = None,
) -> List[Tuple[int, int, float]]:
    """Full dendrogram of ``distance_matrix`` as ``(a, b, height)`` merges.

    Each merge joins the clusters currently living in slots ``a < b``; the
    merged cluster keeps slot ``a`` and slot ``b`` retires (the same
    merge-into-the-lower-slot convention as the scan algorithm, so the two
    merge histories are directly comparable).  Merges are returned in
    **chain discovery order**, which is not sorted by height; see
    :class:`NNChainClustering` for the stopping-rule replay.

    Memory-mapped inputs get a scratch working memmap in ``work_store``
    (or the process-default matrix store); in-RAM inputs use a plain copy.
    Both paths perform identical float operations, so their dendrograms are
    bitwise-identical.

    Raises :class:`TiedDistancesError` the moment a visited working row
    attains its minimum in more than one column — the chain's local
    tie-breaking cannot be proven order-equivalent to the scan's global
    rule, so ambiguous inputs are refused rather than silently re-broken.
    """
    if linkage not in ("average", "single", "complete"):
        raise ConfigurationError(f"unknown linkage {linkage!r}")
    distances = check_distance_matrix(distance_matrix)
    n = distances.shape[0]
    if n == 0:
        raise DataError("cannot cluster zero items")

    scratch = None
    if isinstance(distances, np.memmap):
        scratch = resolve_store(work_store).scratch((n, n), prefix="nnchain")
        working = scratch.array
        for start, stop in iter_row_blocks(n, STREAM_BLOCK_ROWS):
            working[start:stop] = distances[start:stop]
    else:
        working = distances.astype(float)
    np.fill_diagonal(working, np.inf)

    size = np.ones(n)
    merges: List[Tuple[int, int, float]] = []
    # The chain and its stack of step distances.  chain_distance[i] is the
    # linkage distance between chain[i] and chain[i - 1]; the sentinel inf
    # for the chain head keeps the reciprocal test below uniform.
    chain: List[int] = []
    chain_distance: List[float] = []
    try:
        while len(merges) < n - 1:
            if not chain:
                # Slot 0 is never retired (merges keep the lower slot), so
                # the deterministic restart point is always slot 0.
                chain = [0]
                chain_distance = [np.inf]
            current = chain[-1]
            row = np.asarray(working[current])
            minimum = float(row.min())
            if np.count_nonzero(row == minimum) > 1:
                raise TiedDistancesError(
                    "tied nearest-neighbor distances; fall back to the scan "
                    "algorithm for first-occurrence tie-breaking"
                )
            if minimum >= chain_distance[-1]:
                # No strictly closer neighbor than the predecessor: the
                # last two chain clusters are reciprocal nearest neighbors
                # (ties prefer the predecessor, which guarantees
                # termination).  Merge them.
                other = chain[-2]
                height = chain_distance[-1]
                chain.pop()
                chain.pop()
                chain_distance.pop()
                chain_distance.pop()
                keep, retire = min(current, other), max(current, other)
                merged_row = _lance_williams(
                    linkage,
                    np.asarray(working[keep]),
                    np.asarray(working[retire]),
                    float(size[keep]),
                    float(size[retire]),
                )
                merged_row[keep] = np.inf
                merged_row[retire] = np.inf
                working[keep, :] = merged_row
                working[:, keep] = merged_row
                working[retire, :] = np.inf
                working[:, retire] = np.inf
                size[keep] += size[retire]
                size[retire] = 0
                merges.append((keep, retire, height))
            else:
                # Extend the chain towards the strictly nearest neighbor
                # (argmin breaks remaining ties towards the lowest index,
                # matching the scan's row-major first-occurrence rule).
                chain.append(int(np.argmin(row)))
                chain_distance.append(minimum)
    finally:
        if scratch is not None:
            scratch.close()
    return merges


class NNChainClustering:
    """Drop-in agglomerative clusterer built on the nearest-neighbor chain.

    Mirrors :class:`repro.cluster.hierarchical.AgglomerativeClustering`'s
    constructor and :meth:`fit_predict` contract (stopping rules,
    ``merge_history_``, label numbering) while replacing the
    ``O(active)``-numpy-calls-per-merge working-matrix scan with the
    ``O(n^2)``-total chain algorithm.

    The chain discovers merges out of height order, so :meth:`fit_predict`
    computes the full dendrogram once, stable-sorts it by height (for a
    reducible linkage the dendrogram is monotone: every child merge is no
    higher than its parent, and the stable sort keeps chain order — which
    respects dependencies — among equal heights), and then applies the
    stopping rules to the sorted sequence exactly as the greedy scan does:
    stop below ``num_clusters`` remaining, stop above
    ``distance_threshold``, stop at a non-finite height.
    """

    def __init__(
        self,
        *,
        num_clusters: Optional[int] = None,
        distance_threshold: Optional[float] = None,
        linkage: str = "average",
    ) -> None:
        if num_clusters is None and distance_threshold is None:
            raise ConfigurationError(
                "one of num_clusters or distance_threshold must be given"
            )
        if num_clusters is not None and num_clusters < 1:
            raise ConfigurationError("num_clusters must be >= 1")
        if distance_threshold is not None and distance_threshold < 0:
            raise ConfigurationError("distance_threshold must be >= 0")
        if linkage not in ("average", "single", "complete"):
            raise ConfigurationError(f"unknown linkage {linkage!r}")
        self.num_clusters = num_clusters
        self.distance_threshold = distance_threshold
        self.linkage = linkage
        self.merge_history_: List[tuple] = []

    # ------------------------------------------------------------------ #
    def fit_predict(
        self, distance_matrix: np.ndarray, *, work_store: StoreLike = None
    ) -> np.ndarray:
        """Cluster items given their pairwise distances; returns labels.

        ``merge_history_`` records the applied merges as
        ``(first, second, height)`` with ``first < second`` — on tie-free
        inputs entry-for-entry the scan algorithm's history.

        Inputs where the chain encounters an exactly tied nearest-neighbor
        decision are delegated wholesale to the scan algorithm, whose
        first-occurrence tie-breaking is the reference behavior — so the
        result matches the scan on those inputs too, at the scan's cost.
        """
        if hasattr(distance_matrix, "shape"):
            n = distance_matrix.shape[0]
        else:
            n = np.asarray(distance_matrix).shape[0]
        try:
            merges = nn_chain_dendrogram(
                distance_matrix, linkage=self.linkage, work_store=work_store
            )
        except TiedDistancesError:
            oracle = AgglomerativeClustering(
                num_clusters=self.num_clusters,
                distance_threshold=self.distance_threshold,
                linkage=self.linkage,
            )
            labels = oracle.fit_predict(distance_matrix, work_store=work_store)
            self.merge_history_ = list(oracle.merge_history_)
            return labels
        order = np.argsort([height for _, _, height in merges], kind="stable")
        target_clusters = self.num_clusters if self.num_clusters is not None else 1

        clusters: List[List[int]] = [[i] for i in range(n)]
        # Lineage roots: replay references chain-time slots; floating-point
        # height inversions (possible at ~1 ulp for average linkage) could
        # order a parent merge before one of its children, so each slot is
        # resolved to its current root instead of being trusted verbatim.
        root = list(range(n))

        def find(slot: int) -> int:
            while root[slot] != slot:
                root[slot] = root[root[slot]]
                slot = root[slot]
            return slot

        self.merge_history_ = []
        remaining = n
        for index in order:
            if remaining <= max(target_clusters, 1):
                break
            a, b, height = merges[index]
            if not np.isfinite(height):
                break
            if self.distance_threshold is not None and height > self.distance_threshold:
                break
            first, second = find(a), find(b)
            if first == second:  # pragma: no cover - inversion double-merge guard
                continue
            if first > second:
                first, second = second, first
            self.merge_history_.append((first, second, float(height)))
            clusters[first] = clusters[first] + clusters[second]
            clusters[second] = []
            root[second] = first
            remaining -= 1

        labels = np.empty(n, dtype=int)
        active = [slot for slot in range(n) if clusters[slot]]
        for new_id, slot in enumerate(active):
            for member in clusters[slot]:
                labels[member] = new_id
        return labels


def nnchain_cluster(
    item_names,
    distance_matrix: np.ndarray,
    *,
    num_clusters: Optional[int] = None,
    distance_threshold: Optional[float] = None,
    linkage: str = "average",
    work_store: StoreLike = None,
) -> ClusterAssignment:
    """Convenience wrapper returning a :class:`ClusterAssignment`."""
    algorithm = NNChainClustering(
        num_clusters=num_clusters,
        distance_threshold=distance_threshold,
        linkage=linkage,
    )
    labels = algorithm.fit_predict(distance_matrix, work_store=work_store)
    return ClusterAssignment.from_labels(item_names, labels)
