"""Clustering substrate used by model clustering and convergence-trend mining.

The paper compares K-means against agglomerative hierarchical clustering
(average linkage) and evaluates cluster quality with the silhouette
coefficient.  Both algorithms, the silhouette metric, and the distance
helpers they share are implemented here from scratch on numpy so the
reproduction carries no external ML dependencies.
"""

from repro.cluster.distance import pairwise_distances, similarity_to_distance
from repro.cluster.hierarchical import AgglomerativeClustering, hierarchical_cluster
from repro.cluster.kmeans import KMeans, kmeans_cluster
from repro.cluster.nnchain import (
    NNChainClustering,
    TiedDistancesError,
    nn_chain_dendrogram,
    nnchain_cluster,
)
from repro.cluster.silhouette import silhouette_samples, silhouette_score
from repro.cluster.assignments import ClusterAssignment

__all__ = [
    "pairwise_distances",
    "similarity_to_distance",
    "AgglomerativeClustering",
    "hierarchical_cluster",
    "KMeans",
    "kmeans_cluster",
    "NNChainClustering",
    "TiedDistancesError",
    "nn_chain_dendrogram",
    "nnchain_cluster",
    "silhouette_samples",
    "silhouette_score",
    "ClusterAssignment",
    "ClusteringUpdate",
    "update_clustering",
]


def __getattr__(name):
    # Lazy re-export: repro.cluster.incremental imports from repro.core,
    # which imports this package — resolving it at first attribute access
    # instead of import time breaks the cycle.
    if name in ("ClusteringUpdate", "update_clustering"):
        from repro.cluster import incremental

        return getattr(incremental, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
