"""Distance helpers shared by the clustering algorithms.

:func:`distance_matrix_for` is the cache-aware entry point used by the
model clusterer: it derives the ``d = 1 - s`` distance matrix from the
(vectorized, memoised) Eq. 1 similarity of a performance matrix, and
memoises the converted distances under their own key so downstream
consumers skip even the conversion on repeat runs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from repro.cache import CacheLike, distance_key, resolve_cache, similarity_key
from repro.utils.exceptions import DataError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.performance import PerformanceMatrix


def pairwise_distances(points: np.ndarray, *, metric: str = "euclidean") -> np.ndarray:
    """Symmetric ``(n, n)`` distance matrix of the rows of ``points``.

    Supported metrics: ``euclidean``, ``sqeuclidean``, ``cosine`` and
    ``cityblock``.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise DataError(f"points must be 2-d, got shape {points.shape}")
    n = points.shape[0]
    if metric in ("euclidean", "sqeuclidean"):
        norms = np.sum(points**2, axis=1)
        squared = norms[:, None] + norms[None, :] - 2.0 * points @ points.T
        squared = np.clip(squared, 0.0, None)
        matrix = squared if metric == "sqeuclidean" else np.sqrt(squared)
    elif metric == "cosine":
        norms = np.linalg.norm(points, axis=1)
        norms = np.where(norms == 0, 1.0, norms)
        normalised = points / norms[:, None]
        matrix = 1.0 - normalised @ normalised.T
        matrix = np.clip(matrix, 0.0, 2.0)
    elif metric == "cityblock":
        matrix = np.abs(points[:, None, :] - points[None, :, :]).sum(axis=2)
    else:
        raise DataError(f"unknown distance metric {metric!r}")
    np.fill_diagonal(matrix, 0.0)
    # Enforce exact symmetry against floating-point drift.
    return (matrix + matrix.T) / 2.0


def similarity_to_distance(similarity: np.ndarray) -> np.ndarray:
    """Convert a similarity matrix in ``[0, 1]`` to a distance matrix.

    The paper's Eq. 1 produces similarities; the clustering algorithms work
    on distances ``d = 1 - s`` with a zero diagonal.
    """
    sim = np.asarray(similarity, dtype=float)
    if sim.ndim != 2 or sim.shape[0] != sim.shape[1]:
        raise DataError(f"similarity must be a square matrix, got shape {sim.shape}")
    distance = 1.0 - sim
    distance = np.clip(distance, 0.0, None)
    np.fill_diagonal(distance, 0.0)
    return (distance + distance.T) / 2.0


def distance_matrix_for(
    matrix: "PerformanceMatrix",
    *,
    method: str = "performance",
    top_k: int = 5,
    model_cards: Optional[Dict[str, str]] = None,
    similarity: Optional[np.ndarray] = None,
    cache: CacheLike = None,
) -> np.ndarray:
    """Cache-aware model-distance matrix of a performance matrix.

    Computes (or fetches) the Eq. 1 / text-baseline similarity via
    :func:`repro.core.similarity.similarity_matrix_for` and converts it with
    :func:`similarity_to_distance`.  The converted distance matrix is
    memoised under a key derived from the similarity key, so a second call
    for the same inputs touches neither the similarity nor the conversion.

    Parameters
    ----------
    similarity:
        Optional precomputed similarity matrix aligned with
        ``matrix.model_names``; when given, only the ``1 - s`` conversion
        runs and nothing is read from or written to the cache — the
        conversion is cheaper than hashing the array for a key, and a
        custom similarity must never populate (or be shadowed by) the
        canonical Eq. 1 entry.
    """
    from repro.core.similarity import similarity_matrix_for

    if similarity is not None:
        return similarity_to_distance(similarity)
    store = resolve_cache(cache)
    key = None
    if store is not None and method == "performance":
        key = distance_key(similarity_key(matrix, method=method, top_k=top_k))
        cached = store.get(key)
        if cached is not None:
            return cached
    similarity = similarity_matrix_for(
        matrix, method=method, top_k=top_k, model_cards=model_cards, cache=cache
    )
    distance = similarity_to_distance(similarity)
    if store is not None and key is not None:
        store.put(key, distance)
    return distance


def check_distance_matrix(matrix: np.ndarray) -> np.ndarray:
    """Validate a precomputed distance matrix (square, symmetric, zero diagonal)."""
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise DataError(f"distance matrix must be square, got shape {arr.shape}")
    if np.any(arr < -1e-9):
        raise DataError("distance matrix contains negative entries")
    if not np.allclose(arr, arr.T, atol=1e-8):
        raise DataError("distance matrix must be symmetric")
    if not np.allclose(np.diag(arr), 0.0, atol=1e-8):
        raise DataError("distance matrix must have a zero diagonal")
    return arr
