"""Distance helpers shared by the clustering algorithms."""

from __future__ import annotations

import numpy as np

from repro.utils.exceptions import DataError


def pairwise_distances(points: np.ndarray, *, metric: str = "euclidean") -> np.ndarray:
    """Symmetric ``(n, n)`` distance matrix of the rows of ``points``.

    Supported metrics: ``euclidean``, ``sqeuclidean``, ``cosine`` and
    ``cityblock``.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise DataError(f"points must be 2-d, got shape {points.shape}")
    n = points.shape[0]
    if metric in ("euclidean", "sqeuclidean"):
        norms = np.sum(points**2, axis=1)
        squared = norms[:, None] + norms[None, :] - 2.0 * points @ points.T
        squared = np.clip(squared, 0.0, None)
        matrix = squared if metric == "sqeuclidean" else np.sqrt(squared)
    elif metric == "cosine":
        norms = np.linalg.norm(points, axis=1)
        norms = np.where(norms == 0, 1.0, norms)
        normalised = points / norms[:, None]
        matrix = 1.0 - normalised @ normalised.T
        matrix = np.clip(matrix, 0.0, 2.0)
    elif metric == "cityblock":
        matrix = np.abs(points[:, None, :] - points[None, :, :]).sum(axis=2)
    else:
        raise DataError(f"unknown distance metric {metric!r}")
    np.fill_diagonal(matrix, 0.0)
    # Enforce exact symmetry against floating-point drift.
    return (matrix + matrix.T) / 2.0


def similarity_to_distance(similarity: np.ndarray) -> np.ndarray:
    """Convert a similarity matrix in ``[0, 1]`` to a distance matrix.

    The paper's Eq. 1 produces similarities; the clustering algorithms work
    on distances ``d = 1 - s`` with a zero diagonal.
    """
    sim = np.asarray(similarity, dtype=float)
    if sim.ndim != 2 or sim.shape[0] != sim.shape[1]:
        raise DataError(f"similarity must be a square matrix, got shape {sim.shape}")
    distance = 1.0 - sim
    distance = np.clip(distance, 0.0, None)
    np.fill_diagonal(distance, 0.0)
    return (distance + distance.T) / 2.0


def check_distance_matrix(matrix: np.ndarray) -> np.ndarray:
    """Validate a precomputed distance matrix (square, symmetric, zero diagonal)."""
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise DataError(f"distance matrix must be square, got shape {arr.shape}")
    if np.any(arr < -1e-9):
        raise DataError("distance matrix contains negative entries")
    if not np.allclose(arr, arr.T, atol=1e-8):
        raise DataError("distance matrix must be symmetric")
    if not np.allclose(np.diag(arr), 0.0, atol=1e-8):
        raise DataError("distance matrix must have a zero diagonal")
    return arr
