"""Distance helpers shared by the clustering algorithms.

:func:`distance_matrix_for` is the cache-aware entry point used by the
model clusterer: it derives the ``d = 1 - s`` distance matrix from the
(vectorized, memoised) Eq. 1 similarity of a performance matrix, and
memoises the converted distances under their own key so downstream
consumers skip even the conversion on repeat runs.

For out-of-core repositories the same conversion runs tile-by-tile:
:func:`distance_memmap_for` reads row blocks of a (memmapped) similarity
matrix on demand and writes the distance tiles into the
:mod:`repro.store` matrix store, so the clustering layer never holds a
dense ``(n, n)`` matrix in RAM.  :func:`check_distance_matrix` and
:func:`upper_triangle_values` stream memmapped inputs block-wise for the
same reason.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from repro.cache import CacheLike, distance_key, resolve_cache, similarity_key
from repro.store import StoreLike, iter_row_blocks, resolve_store
from repro.utils.exceptions import DataError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import SimilarityConfig
    from repro.core.performance import PerformanceMatrix

#: Rows per block when streaming a memory-mapped matrix through the
#: validation / conversion helpers (also used by the clustering layer's
#: working-copy and nearest-cache initialisation).
STREAM_BLOCK_ROWS = 512


def pairwise_distances(points: np.ndarray, *, metric: str = "euclidean") -> np.ndarray:
    """Symmetric ``(n, n)`` distance matrix of the rows of ``points``.

    Supported metrics: ``euclidean``, ``sqeuclidean``, ``cosine`` and
    ``cityblock``.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise DataError(f"points must be 2-d, got shape {points.shape}")
    n = points.shape[0]
    if metric in ("euclidean", "sqeuclidean"):
        norms = np.sum(points**2, axis=1)
        squared = norms[:, None] + norms[None, :] - 2.0 * points @ points.T
        squared = np.clip(squared, 0.0, None)
        matrix = squared if metric == "sqeuclidean" else np.sqrt(squared)
    elif metric == "cosine":
        norms = np.linalg.norm(points, axis=1)
        norms = np.where(norms == 0, 1.0, norms)
        normalised = points / norms[:, None]
        matrix = 1.0 - normalised @ normalised.T
        matrix = np.clip(matrix, 0.0, 2.0)
    elif metric == "cityblock":
        matrix = np.abs(points[:, None, :] - points[None, :, :]).sum(axis=2)
    else:
        raise DataError(f"unknown distance metric {metric!r}")
    np.fill_diagonal(matrix, 0.0)
    # Enforce exact symmetry against floating-point drift.
    return (matrix + matrix.T) / 2.0


def similarity_to_distance(similarity: np.ndarray) -> np.ndarray:
    """Convert a similarity matrix in ``[0, 1]`` to a distance matrix.

    The paper's Eq. 1 produces similarities; the clustering algorithms work
    on distances ``d = 1 - s`` with a zero diagonal.
    """
    sim = np.asarray(similarity, dtype=float)
    if sim.ndim != 2 or sim.shape[0] != sim.shape[1]:
        raise DataError(f"similarity must be a square matrix, got shape {sim.shape}")
    distance = 1.0 - sim
    distance = np.clip(distance, 0.0, None)
    np.fill_diagonal(distance, 0.0)
    return (distance + distance.T) / 2.0


def distance_matrix_for(
    matrix: "PerformanceMatrix",
    *,
    method: str = "performance",
    top_k: int = 5,
    model_cards: Optional[Dict[str, str]] = None,
    similarity: Optional[np.ndarray] = None,
    cache: CacheLike = None,
) -> np.ndarray:
    """Cache-aware model-distance matrix of a performance matrix.

    Computes (or fetches) the Eq. 1 / text-baseline similarity via
    :func:`repro.core.similarity.similarity_matrix_for` and converts it with
    :func:`similarity_to_distance`.  The converted distance matrix is
    memoised under a key derived from the similarity key, so a second call
    for the same inputs touches neither the similarity nor the conversion.

    Parameters
    ----------
    similarity:
        Optional precomputed similarity matrix aligned with
        ``matrix.model_names``; when given, only the ``1 - s`` conversion
        runs and nothing is read from or written to the cache — the
        conversion is cheaper than hashing the array for a key, and a
        custom similarity must never populate (or be shadowed by) the
        canonical Eq. 1 entry.
    """
    from repro.core.similarity import similarity_matrix_for

    if similarity is not None:
        return similarity_to_distance(similarity)
    store = resolve_cache(cache)
    key = None
    if store is not None and method == "performance":
        key = distance_key(similarity_key(matrix, method=method, top_k=top_k))
        cached = store.get(key)
        if cached is not None:
            return cached
    similarity = similarity_matrix_for(
        matrix, method=method, top_k=top_k, model_cards=model_cards, cache=cache
    )
    distance = similarity_to_distance(similarity)
    if store is not None and key is not None:
        store.put(key, distance)
    return distance


def check_distance_matrix(matrix: np.ndarray) -> np.ndarray:
    """Validate a precomputed distance matrix (square, symmetric, zero diagonal).

    Memory-mapped inputs are validated block-by-block (bounded RAM); the
    checks and their tolerances are identical to the dense path.
    """
    if isinstance(matrix, np.ndarray) and matrix.dtype == np.float64:
        # Keep the instance as-is: np.asarray would demote an out-of-core
        # np.memmap to a plain-ndarray view and silently send it down the
        # dense (densifying) validation and clustering paths.
        arr = matrix
    else:
        arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise DataError(f"distance matrix must be square, got shape {arr.shape}")
    if isinstance(arr, np.memmap):
        _check_distance_memmap(arr)
        return arr
    if np.any(arr < -1e-9):
        raise DataError("distance matrix contains negative entries")
    if not np.allclose(arr, arr.T, atol=1e-8):
        raise DataError("distance matrix must be symmetric")
    if not np.allclose(np.diag(arr), 0.0, atol=1e-8):
        raise DataError("distance matrix must have a zero diagonal")
    return arr


def _check_distance_memmap(arr: np.memmap) -> None:
    """Blocked negative/symmetry/diagonal checks for memmapped distances."""
    n = arr.shape[0]
    spans = list(iter_row_blocks(n, STREAM_BLOCK_ROWS))
    for start, stop in spans:
        block = np.asarray(arr[start:stop])
        if np.any(block < -1e-9):
            raise DataError("distance matrix contains negative entries")
        diagonal = block[np.arange(stop - start), np.arange(start, stop)]
        if not np.allclose(diagonal, 0.0, atol=1e-8):
            raise DataError("distance matrix must have a zero diagonal")
    for i, (row_start, row_stop) in enumerate(spans):
        for col_start, col_stop in spans[i:]:
            block = arr[row_start:row_stop, col_start:col_stop]
            mirror = arr[col_start:col_stop, row_start:row_stop]
            if not np.allclose(block, np.asarray(mirror).T, atol=1e-8):
                raise DataError("distance matrix must be symmetric")


def upper_triangle_values(matrix: np.ndarray, *, block_rows: int = STREAM_BLOCK_ROWS) -> np.ndarray:
    """Off-diagonal upper-triangle values of a square matrix, row-major.

    Exactly the values (in exactly the order) of
    ``matrix[np.triu_indices_from(matrix, k=1)]`` — so downstream
    statistics (the clustering threshold quantile) are bitwise-identical —
    but gathered row-block by row-block: memmapped matrices are streamed
    without materialising the ``O(n^2)`` index arrays the ``triu`` route
    needs.  The returned array still holds ``n (n - 1) / 2`` floats
    (``~4 n^2`` bytes); ``docs/scaling.md`` accounts for it in the memory
    model.
    """
    n = matrix.shape[0]
    out = np.empty(n * (n - 1) // 2, dtype=float)
    position = 0
    for start, stop in iter_row_blocks(n, block_rows):
        # Copy straight into the preallocated result: holding per-row views
        # would pin every source block in memory until the final concat.
        block = np.asarray(matrix[start:stop])
        for i in range(start, stop):
            width = n - i - 1
            out[position : position + width] = block[i - start, i + 1 :]
            position += width
    return out


def distance_memmap_for(
    matrix: "PerformanceMatrix",
    similarity: np.ndarray,
    *,
    top_k: int = 5,
    config: Optional["SimilarityConfig"] = None,
    store: StoreLike = None,
) -> np.ndarray:
    """Out-of-core ``d = 1 - s`` conversion of a (memmapped) Eq. 1 similarity.

    Reads ``similarity`` row tiles on demand, writes the converted distance
    tiles into the matrix store under the canonical distance key (derived
    from the similarity key, as in :func:`distance_matrix_for`) and returns
    the published read-only memmap.

    Requires the exact symmetry the Eq. 1 matrix guarantees by
    construction (``s[i, j] == s[j, i]`` bitwise): under it the dense
    path's symmetrisation ``(d + d.T) / 2`` is the identity, so the tile
    conversion — clip to ``[0, inf)``, zero diagonal — produces a result
    bitwise-identical to
    ``similarity_to_distance(similarity)``.  The property suite enforces
    this equivalence.
    """
    from repro.core.config import SimilarityConfig

    config = config or SimilarityConfig()
    matrix_store = resolve_store(store if store is not None else config.store_dir)
    key = distance_key(similarity_key(matrix, method="performance", top_k=top_k))
    n = similarity.shape[0]
    if similarity.ndim != 2 or similarity.shape != (n, n):
        raise DataError(
            f"similarity must be a square matrix, got shape {similarity.shape}"
        )
    existing = matrix_store.open(key)
    if existing is not None and existing.shape == (n, n):
        return existing
    writer = matrix_store.create(key, (n, n))
    try:
        out = writer.array
        block_rows = max(1, config.max_bytes_in_flight // max(1, n * 8 * 2))
        for start, stop in iter_row_blocks(n, block_rows):
            tile = 1.0 - np.asarray(similarity[start:stop])
            np.clip(tile, 0.0, None, out=tile)
            tile[np.arange(stop - start), np.arange(start, stop)] = 0.0
            out[start:stop] = tile
        return writer.commit()
    except BaseException:
        writer.abort()
        raise
