"""Cluster-assignment container shared by k-means and hierarchical clustering.

Backs the paper's offline model-clustering step (Section III): the
assignment's singleton/non-singleton split is what routes each model
through Eq. 2/3 (representative proxy score) or Eq. 4 (similarity-propagated
score) during coarse recall, and its membership tables feed the paper's
Table II/III cluster analyses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.utils.exceptions import DataError


@dataclass
class ClusterAssignment:
    """Result of a clustering run over named items.

    Attributes
    ----------
    item_names:
        Names of the clustered items, aligned with ``labels``.
    labels:
        Integer cluster id per item (0-based, contiguous).
    """

    item_names: List[str]
    labels: np.ndarray

    def __post_init__(self) -> None:
        self.labels = np.asarray(self.labels, dtype=int)
        if self.labels.ndim != 1 or len(self.item_names) != self.labels.shape[0]:
            raise DataError("item_names and labels must be aligned 1-d sequences")
        if self.labels.size and self.labels.min() < 0:
            raise DataError("cluster labels must be non-negative")

    @property
    def num_clusters(self) -> int:
        """Number of distinct clusters."""
        return int(len(set(self.labels.tolist())))

    def members(self, cluster_id: int) -> List[str]:
        """Item names belonging to ``cluster_id``."""
        return [name for name, label in zip(self.item_names, self.labels) if label == cluster_id]

    def cluster_of(self, item_name: str) -> int:
        """Cluster id of ``item_name``."""
        try:
            index = self.item_names.index(item_name)
        except ValueError:
            raise DataError(f"unknown item {item_name!r}") from None
        return int(self.labels[index])

    def as_dict(self) -> Dict[int, List[str]]:
        """Mapping cluster id -> member names."""
        out: Dict[int, List[str]] = {}
        for name, label in zip(self.item_names, self.labels):
            out.setdefault(int(label), []).append(name)
        return out

    def non_singleton_clusters(self) -> Dict[int, List[str]]:
        """Clusters with more than one member (the paper's |C| > 1 clusters)."""
        return {cid: members for cid, members in self.as_dict().items() if len(members) > 1}

    def singleton_items(self) -> List[str]:
        """Items that ended up alone in their cluster."""
        return [
            members[0]
            for members in self.as_dict().values()
            if len(members) == 1
        ]

    @classmethod
    def from_labels(cls, item_names: Sequence[str], labels: Sequence[int]) -> "ClusterAssignment":
        """Build an assignment, re-indexing labels to be contiguous from 0."""
        raw = np.asarray(list(labels), dtype=int)
        unique = {label: index for index, label in enumerate(sorted(set(raw.tolist())))}
        remapped = np.array([unique[label] for label in raw.tolist()], dtype=int)
        return cls(item_names=list(item_names), labels=remapped)
