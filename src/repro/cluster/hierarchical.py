"""Agglomerative hierarchical clustering on a precomputed distance matrix.

The paper's preferred model-clustering algorithm is hierarchical clustering
with the performance-based similarity of Eq. 1.  This implementation supports
average, single and complete linkage and two stopping rules: a fixed number
of clusters or a distance threshold (merging stops once the closest pair of
clusters is farther apart than the threshold) — the latter is what produces
the paper's mix of non-singleton and singleton clusters.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.cluster.assignments import ClusterAssignment
from repro.cluster.distance import check_distance_matrix
from repro.utils.exceptions import ConfigurationError, DataError


class AgglomerativeClustering:
    """Bottom-up clustering over a precomputed distance matrix.

    Parameters
    ----------
    num_clusters:
        Stop when this many clusters remain (mutually exclusive with
        ``distance_threshold`` being the active stopping rule; if both are
        given, merging stops when either rule triggers).
    distance_threshold:
        Stop merging once the closest pair of clusters exceeds this linkage
        distance.
    linkage:
        ``"average"`` (paper default), ``"single"`` or ``"complete"``.
    """

    def __init__(
        self,
        *,
        num_clusters: Optional[int] = None,
        distance_threshold: Optional[float] = None,
        linkage: str = "average",
    ) -> None:
        if num_clusters is None and distance_threshold is None:
            raise ConfigurationError(
                "one of num_clusters or distance_threshold must be given"
            )
        if num_clusters is not None and num_clusters < 1:
            raise ConfigurationError("num_clusters must be >= 1")
        if distance_threshold is not None and distance_threshold < 0:
            raise ConfigurationError("distance_threshold must be >= 0")
        if linkage not in ("average", "single", "complete"):
            raise ConfigurationError(f"unknown linkage {linkage!r}")
        self.num_clusters = num_clusters
        self.distance_threshold = distance_threshold
        self.linkage = linkage
        self.merge_history_: List[tuple] = []

    # ------------------------------------------------------------------ #
    def fit_predict(self, distance_matrix: np.ndarray) -> np.ndarray:
        """Cluster items given their pairwise distances; returns labels."""
        distances = check_distance_matrix(distance_matrix)
        n = distances.shape[0]
        if n == 0:
            raise DataError("cannot cluster zero items")
        target_clusters = self.num_clusters if self.num_clusters is not None else 1
        clusters: List[List[int]] = [[i] for i in range(n)]
        # Working linkage-distance matrix between current clusters.
        linkage_distances = distances.copy().astype(float)
        np.fill_diagonal(linkage_distances, np.inf)
        active = list(range(n))
        self.merge_history_ = []

        while len(active) > max(target_clusters, 1):
            sub = linkage_distances[np.ix_(active, active)]
            flat_index = int(np.argmin(sub))
            row, col = divmod(flat_index, len(active))
            if row == col:
                break
            best_distance = float(sub[row, col])
            if self.distance_threshold is not None and best_distance > self.distance_threshold:
                break
            first, second = active[row], active[col]
            self.merge_history_.append((first, second, best_distance))
            merged_members = clusters[first] + clusters[second]
            clusters[first] = merged_members
            clusters[second] = []
            # Update linkage distances of the merged cluster to all others.
            for other in active:
                if other in (first, second):
                    continue
                linkage_distances[first, other] = linkage_distances[other, first] = (
                    self._linkage_distance(distances, merged_members, clusters[other])
                )
            linkage_distances[second, :] = np.inf
            linkage_distances[:, second] = np.inf
            active.remove(second)

        labels = np.empty(n, dtype=int)
        for new_id, cluster_index in enumerate(sorted(active)):
            for member in clusters[cluster_index]:
                labels[member] = new_id
        return labels

    def _linkage_distance(
        self, distances: np.ndarray, members_a: List[int], members_b: List[int]
    ) -> float:
        block = distances[np.ix_(members_a, members_b)]
        if self.linkage == "average":
            return float(block.mean())
        if self.linkage == "single":
            return float(block.min())
        return float(block.max())


def hierarchical_cluster(
    item_names: Sequence[str],
    distance_matrix: np.ndarray,
    *,
    num_clusters: Optional[int] = None,
    distance_threshold: Optional[float] = None,
    linkage: str = "average",
) -> ClusterAssignment:
    """Convenience wrapper returning a :class:`ClusterAssignment`."""
    algorithm = AgglomerativeClustering(
        num_clusters=num_clusters,
        distance_threshold=distance_threshold,
        linkage=linkage,
    )
    labels = algorithm.fit_predict(distance_matrix)
    return ClusterAssignment.from_labels(item_names, labels)
