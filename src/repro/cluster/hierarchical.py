"""Agglomerative hierarchical clustering on a precomputed distance matrix.

The paper's preferred model-clustering algorithm is hierarchical clustering
with the performance-based similarity of Eq. 1.  This implementation supports
average, single and complete linkage and two stopping rules: a fixed number
of clusters or a distance threshold (merging stops once the closest pair of
clusters is farther apart than the threshold) — the latter is what produces
the paper's mix of non-singleton and singleton clusters.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.cluster.assignments import ClusterAssignment
from repro.cluster.distance import STREAM_BLOCK_ROWS, check_distance_matrix
from repro.store import StoreLike, iter_row_blocks, resolve_store
from repro.utils.exceptions import ConfigurationError, DataError


class AgglomerativeClustering:
    """Bottom-up clustering over a precomputed distance matrix.

    Parameters
    ----------
    num_clusters:
        Stop when this many clusters remain (mutually exclusive with
        ``distance_threshold`` being the active stopping rule; if both are
        given, merging stops when either rule triggers).
    distance_threshold:
        Stop merging once the closest pair of clusters exceeds this linkage
        distance.
    linkage:
        ``"average"`` (paper default), ``"single"`` or ``"complete"``.
    """

    def __init__(
        self,
        *,
        num_clusters: Optional[int] = None,
        distance_threshold: Optional[float] = None,
        linkage: str = "average",
    ) -> None:
        if num_clusters is None and distance_threshold is None:
            raise ConfigurationError(
                "one of num_clusters or distance_threshold must be given"
            )
        if num_clusters is not None and num_clusters < 1:
            raise ConfigurationError("num_clusters must be >= 1")
        if distance_threshold is not None and distance_threshold < 0:
            raise ConfigurationError("distance_threshold must be >= 0")
        if linkage not in ("average", "single", "complete"):
            raise ConfigurationError(f"unknown linkage {linkage!r}")
        self.num_clusters = num_clusters
        self.distance_threshold = distance_threshold
        self.linkage = linkage
        self.merge_history_: List[tuple] = []

    # ------------------------------------------------------------------ #
    def fit_predict(
        self, distance_matrix: np.ndarray, *, work_store: StoreLike = None
    ) -> np.ndarray:
        """Cluster items given their pairwise distances; returns labels.

        Memory-mapped distance matrices are clustered **without
        densifying**: the mutable linkage working matrix is spilled to a
        scratch memmap in the matrix store (``work_store`` or the process
        default), original distances are read as on-demand blocks, and the
        closest pair is found by an allocation-free scan over the working
        matrix.  The merge sequence — and therefore the labels — is
        identical to the in-RAM path: inactive rows/columns hold ``inf``,
        so the row-major argmin visits the active pairs in exactly the
        order the former active-submatrix scan did.

        Transient memory is ``O(|merged cluster| x n)`` per merge (the
        merged cluster's raw rows are fetched in one block so linkage
        means stay bit-exact); with threshold-stopped runs clusters stay
        small, but near-``num_clusters=1`` configurations approach a full
        row set — see the memory model in ``docs/scaling.md``.
        """
        distances = check_distance_matrix(distance_matrix)
        n = distances.shape[0]
        if n == 0:
            raise DataError("cannot cluster zero items")
        target_clusters = self.num_clusters if self.num_clusters is not None else 1
        clusters: List[List[int]] = [[i] for i in range(n)]
        # Working linkage-distance matrix between current clusters.  For a
        # memmapped input it is a scratch memmap too (deleted afterwards);
        # in-RAM inputs keep the plain-copy behaviour.
        scratch = None
        if isinstance(distances, np.memmap):
            scratch = resolve_store(work_store).scratch((n, n), prefix="linkage")
            linkage_distances = scratch.array
            for start, stop in iter_row_blocks(n, STREAM_BLOCK_ROWS):
                linkage_distances[start:stop] = distances[start:stop]
        else:
            linkage_distances = distances.astype(float)
        np.fill_diagonal(linkage_distances, np.inf)
        active = list(range(n))
        self.merge_history_ = []

        # Per-row nearest cache: row_min[i] / row_arg[i] hold the minimum of
        # working row i and the *first* column attaining it.  The closest
        # pair is then (argmin(row_min), row_arg[...]) — exactly the pair a
        # row-major scan of the full working matrix would find, ties
        # included (argmin breaks ties towards the lowest index, and the
        # cache maintenance below preserves first-occurrence semantics), so
        # the merge sequence is identical to an exhaustive scan while each
        # iteration touches O(active) entries instead of O(n^2).
        row_min = np.empty(n)
        row_arg = np.empty(n, dtype=int)
        for start, stop in iter_row_blocks(n, STREAM_BLOCK_ROWS):
            block = np.asarray(linkage_distances[start:stop])
            row_arg[start:stop] = np.argmin(block, axis=1)
            row_min[start:stop] = block[np.arange(stop - start), row_arg[start:stop]]

        def rescan(row: int) -> None:
            values = linkage_distances[row]
            index = int(np.argmin(values))
            row_arg[row] = index
            row_min[row] = values[index]

        try:
            while len(active) > max(target_clusters, 1):
                first = int(np.argmin(row_min))
                second = int(row_arg[first])
                best_distance = float(row_min[first])
                if first == second or not np.isfinite(best_distance):
                    break  # every remaining pair is inactive (inf)
                if self.distance_threshold is not None and best_distance > self.distance_threshold:
                    break
                self.merge_history_.append((first, second, best_distance))
                merged_members = clusters[first] + clusters[second]
                clusters[first] = merged_members
                clusters[second] = []
                # Retire the absorbed cluster *before* updating the others:
                # cache rescans below must never see a stale finite entry in
                # its column.
                linkage_distances[second, :] = np.inf
                linkage_distances[:, second] = np.inf
                row_min[second] = np.inf
                active.remove(second)
                # Update linkage distances of the merged cluster to all
                # others.  The merged cluster's raw-distance rows are
                # fetched once — for a memmapped input this is the only
                # bulk read of the iteration — and every linkage value is
                # computed from the same contiguous blocks the naive
                # ``distances[np.ix_(a, b)]`` lookups produced, so the
                # floating-point results are unchanged.
                merged_rows = np.asarray(distances[merged_members])
                for other in active:
                    if other == first:
                        continue
                    # take() yields a C-contiguous block — the same layout
                    # (hence the same pairwise-summation order in mean())
                    # as the historical distances[np.ix_(a, b)] lookup.
                    value = self._linkage_block(
                        np.take(merged_rows, clusters[other], axis=1)
                    )
                    linkage_distances[first, other] = linkage_distances[other, first] = value
                    arg = int(row_arg[other])
                    if arg == first or arg == second:
                        # The cached minimum's own column changed; rescan.
                        rescan(other)
                    elif value < row_min[other] or (
                        value == row_min[other] and first < arg
                    ):
                        row_min[other] = value
                        row_arg[other] = first
                rescan(first)
        finally:
            if scratch is not None:
                scratch.close()

        labels = np.empty(n, dtype=int)
        for new_id, cluster_index in enumerate(sorted(active)):
            for member in clusters[cluster_index]:
                labels[member] = new_id
        return labels

    def _linkage_block(self, block: np.ndarray) -> float:
        """Linkage distance of one ``(|a|, |b|)`` raw-distance block."""
        if self.linkage == "average":
            return float(block.mean())
        if self.linkage == "single":
            return float(block.min())
        return float(block.max())

    def _linkage_distance(
        self, distances: np.ndarray, members_a: List[int], members_b: List[int]
    ) -> float:
        return self._linkage_block(distances[np.ix_(members_a, members_b)])


def hierarchical_cluster(
    item_names: Sequence[str],
    distance_matrix: np.ndarray,
    *,
    num_clusters: Optional[int] = None,
    distance_threshold: Optional[float] = None,
    linkage: str = "average",
    work_store: StoreLike = None,
) -> ClusterAssignment:
    """Convenience wrapper returning a :class:`ClusterAssignment`.

    ``work_store`` names the matrix store that receives the scratch
    working matrix of a memory-mapped input (default: the process-default
    store), exactly as in :meth:`AgglomerativeClustering.fit_predict`.
    """
    algorithm = AgglomerativeClustering(
        num_clusters=num_clusters,
        distance_threshold=distance_threshold,
        linkage=linkage,
    )
    labels = algorithm.fit_predict(distance_matrix, work_store=work_store)
    return ClusterAssignment.from_labels(item_names, labels)
