"""Silhouette coefficient (Rousseeuw, 1987) on a precomputed distance matrix.

Used by the paper to compare clustering configurations (Table I, Table X) and
to validate convergence-trend clustering (Fig. 6).

:func:`silhouette_samples` streams the distance matrix one row block at a
time (:func:`repro.store.iter_row_blocks` — a memory-mapped matrix is no
longer densified one row per Python iteration), hoists the per-cluster
membership masks out of the row loop into integer gather indexes computed
once, and vectorizes all post-processing (means, nearest-other-cluster
min, the silhouette formula) across the block.  The per-cluster *sum
reduction itself* deliberately stays a per-row 1-D ``.sum()`` over the
gathered members: numpy reduces a 2-D array along an axis in sequential
order (vectorizing across the other axis) while a 1-D sum uses pairwise
summation, so a fully 2-D reduction would change the low-order bits — and
silhouette values feed the golden experiment snapshots.  The result is
bitwise-identical to :func:`_silhouette_samples_loop`, the original
per-row loop kept as the oracle (asserted in
``tests/cluster/test_silhouette.py``), while dropping the
``O(n · clusters)`` mask rebuilds the loop performed for every row.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.distance import STREAM_BLOCK_ROWS, check_distance_matrix
from repro.store import iter_row_blocks
from repro.utils.exceptions import DataError


def _check_inputs(distance_matrix: np.ndarray, labels: np.ndarray):
    distances = check_distance_matrix(distance_matrix)
    labels = np.asarray(labels, dtype=int)
    n = distances.shape[0]
    if labels.shape != (n,):
        raise DataError("labels must align with the distance matrix")
    unique = np.unique(labels)
    if unique.size < 2:
        raise DataError("silhouette requires at least two clusters")
    return distances, labels, unique


def silhouette_samples(distance_matrix: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Per-sample silhouette values ``(b - a) / max(a, b)``.

    Samples in singleton clusters get a silhouette of 0, following the
    scikit-learn convention.
    """
    distances, labels, unique = _check_inputs(distance_matrix, labels)
    n = distances.shape[0]
    members = [np.flatnonzero(labels == cluster) for cluster in unique]
    counts = np.array([index.size for index in members], dtype=float)
    # Column of each sample's own cluster in the per-cluster sum table.
    own_column = np.searchsorted(unique, labels)
    own_counts = counts[own_column]

    values = np.zeros(n)
    for start, stop in iter_row_blocks(n, STREAM_BLOCK_ROWS):
        block = np.asarray(distances[start:stop])
        rows = stop - start
        sums = np.empty((rows, unique.size))
        for local in range(rows):
            row = block[local]
            for column, index in enumerate(members):
                # Integer gather of the precomputed members yields the same
                # ascending-index array as the loop's boolean ``row[mask]``,
                # and the 1-D pairwise ``.sum()`` the same bits.
                sums[local, column] = row[index].sum()
        block_own = own_column[start:stop]
        block_own_counts = own_counts[start:stop]
        non_singleton = block_own_counts > 1
        intra = np.zeros(rows)
        intra[non_singleton] = (
            sums[non_singleton, block_own[non_singleton]]
            / (block_own_counts[non_singleton] - 1)
        )
        means = sums / counts
        means[np.arange(rows), block_own] = np.inf
        inter = means.min(axis=1)
        denominator = np.maximum(intra, inter)
        computable = non_singleton & (denominator != 0)
        values[start:stop][computable] = (
            inter[computable] - intra[computable]
        ) / denominator[computable]
    return values


def _silhouette_samples_loop(
    distance_matrix: np.ndarray, labels: np.ndarray
) -> np.ndarray:
    """Reference per-row loop; the oracle the streaming path must match."""
    distances, labels, unique = _check_inputs(distance_matrix, labels)
    n = distances.shape[0]
    values = np.zeros(n)
    for i in range(n):
        own = labels[i]
        own_mask = labels == own
        own_size = int(own_mask.sum())
        if own_size <= 1:
            values[i] = 0.0
            continue
        intra = distances[i, own_mask].sum() / (own_size - 1)
        inter = np.inf
        for other in unique:
            if other == own:
                continue
            other_mask = labels == other
            inter = min(inter, float(distances[i, other_mask].mean()))
        denominator = max(intra, inter)
        values[i] = 0.0 if denominator == 0 else (inter - intra) / denominator
    return values


def silhouette_score(distance_matrix: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette value over all samples."""
    return float(np.mean(silhouette_samples(distance_matrix, labels)))
