"""Silhouette coefficient (Rousseeuw, 1987) on a precomputed distance matrix.

Used by the paper to compare clustering configurations (Table I, Table X) and
to validate convergence-trend clustering (Fig. 6).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.distance import check_distance_matrix
from repro.utils.exceptions import DataError


def silhouette_samples(distance_matrix: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Per-sample silhouette values ``(b - a) / max(a, b)``.

    Samples in singleton clusters get a silhouette of 0, following the
    scikit-learn convention.
    """
    distances = check_distance_matrix(distance_matrix)
    labels = np.asarray(labels, dtype=int)
    n = distances.shape[0]
    if labels.shape != (n,):
        raise DataError("labels must align with the distance matrix")
    unique = np.unique(labels)
    if unique.size < 2:
        raise DataError("silhouette requires at least two clusters")

    values = np.zeros(n)
    for i in range(n):
        own = labels[i]
        own_mask = labels == own
        own_size = int(own_mask.sum())
        if own_size <= 1:
            values[i] = 0.0
            continue
        intra = distances[i, own_mask].sum() / (own_size - 1)
        inter = np.inf
        for other in unique:
            if other == own:
                continue
            other_mask = labels == other
            inter = min(inter, float(distances[i, other_mask].mean()))
        denominator = max(intra, inter)
        values[i] = 0.0 if denominator == 0 else (inter - intra) / denominator
    return values


def silhouette_score(distance_matrix: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette value over all samples."""
    return float(np.mean(silhouette_samples(distance_matrix, labels)))
