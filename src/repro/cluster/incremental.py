"""Incremental cluster maintenance for a mutable model repository.

A full re-cluster after every zoo change would throw away the warm offline
artifacts the paper's online phases depend on.  :func:`update_clustering`
instead *patches* an existing :class:`~repro.core.model_clustering.ModelClustering`:

* **removals** drop members from their clusters (empty clusters disappear,
  representatives are re-elected only in the touched clusters);
* **additions** are placed into the nearest existing cluster by average
  linkage distance — the exact join criterion the offline hierarchical run
  used — or become new singleton clusters when no cluster is within the
  recorded merge threshold.  With
  :attr:`~repro.core.config.ClusteringConfig.ann_placement` set, only the
  clusters containing the addition's approximate nearest neighbors in
  performance space (IVF index, :mod:`repro.ann`) are considered — the
  per-cluster linkage values stay exact, only the candidate set is pruned;
  the default ``None`` keeps the exact all-clusters scan.

The incremental guarantees — enforced by the property suite
(``tests/property/test_property_incremental.py``) — are *structural*,
stated relative to the previous epoch:

* pairwise co-membership of surviving models is preserved **exactly** (an
  added model can join an existing cluster but can never cause two old
  clusters to merge or one to split);
* additions are judged against the merge threshold *recorded at the last
  full clustering* — the join criterion stays frozen between full runs;
* ``extras["stale_models"]`` counts every incrementally placed or removed
  model since that last full run.

A from-scratch re-cluster of the updated repository is **not** bounded by
the stale count: when the threshold is quantile-derived, a fresh run
re-estimates it on the new distance distribution and may regroup survivors
wholesale.  That temporal drift is exactly what the staleness budget
bounds: once the stale fraction exceeds
``ClusteringConfig.staleness_threshold`` the update falls back to a full
re-cluster (identical to a cold offline run on the same similarity),
resetting both the counter and the recorded threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.cluster.assignments import ClusterAssignment
from repro.cluster.distance import similarity_to_distance, upper_triangle_values
from repro.core.config import ClusteringConfig
from repro.core.model_clustering import ModelClusterer, ModelClustering
from repro.core.performance import PerformanceMatrix
from repro.utils.exceptions import DataError


@dataclass
class ClusteringUpdate:
    """Result of one incremental clustering update.

    Attributes
    ----------
    clustering:
        The updated (or fully rebuilt) model clustering.
    reclustered:
        ``True`` when the staleness threshold forced a full re-cluster.
    added / removed:
        Model names that entered / left the repository in this update.
    touched_clusters:
        Cluster ids (of the *new* clustering) whose membership changed;
        empty after a full re-cluster.
    staleness:
        Fraction of models placed incrementally since the last full
        clustering (0.0 right after a re-cluster).
    """

    clustering: ModelClustering
    reclustered: bool
    added: List[str] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)
    touched_clusters: List[int] = field(default_factory=list)
    staleness: float = 0.0


def _average_linkage_to_clusters(
    distance_row: np.ndarray, labels: np.ndarray
) -> Dict[int, float]:
    """Mean distance from one model to every current cluster's members."""
    out: Dict[int, float] = {}
    for cluster_id in np.unique(labels):
        members = np.flatnonzero(labels == cluster_id)
        out[int(cluster_id)] = float(distance_row[members].mean())
    return out


def update_clustering(
    old: ModelClustering,
    new_matrix: PerformanceMatrix,
    new_similarity: np.ndarray,
    *,
    config: Optional[ClusteringConfig] = None,
    seed: int = 0,
    distance: Optional[np.ndarray] = None,
    similarity_config=None,
) -> ClusteringUpdate:
    """Patch ``old`` to cover the models of ``new_matrix``.

    ``new_similarity`` must be the Eq. 1 (or baseline) similarity matrix of
    ``new_matrix`` — typically the output of
    :func:`repro.core.similarity.update_similarity_matrix`.  Models present
    in both repositories keep their cluster; removed models are dropped;
    added models join their nearest cluster (average linkage within the
    merge threshold recorded by the last full clustering) or start a new
    singleton.  See the module docstring for the precise equivalence
    guarantees (they are relative to the previous epoch, not to a
    from-scratch run, whose quantile threshold would be re-estimated).

    ``distance`` optionally supplies the precomputed
    ``similarity_to_distance(new_similarity)`` conversion so callers that
    already hold it (e.g. the refresh path warming the distance cache)
    avoid a second ``O(n^2)`` pass.  ``similarity_config`` carries the
    out-of-core memory policy through to a threshold-triggered full
    re-cluster, so its scratch working matrix spills into the configured
    store rather than the process default.

    When the accumulated stale fraction — incrementally placed or removed
    models since the last full run — would exceed
    ``config.staleness_threshold``, the whole repository is re-clustered
    from scratch with :class:`~repro.core.model_clustering.ModelClusterer`
    (on the supplied similarity, so the result is identical to a cold
    offline run) and the staleness counter resets.
    """
    config = config or old.config
    new_names = new_matrix.model_names
    if not (isinstance(new_similarity, np.ndarray) and new_similarity.dtype == np.float64):
        # Rewrap only when needed: np.asarray would demote an out-of-core
        # np.memmap to a plain-ndarray view and hide its disk backing from
        # downstream reporting.
        new_similarity = np.asarray(new_similarity, dtype=float)
    if new_similarity.shape != (len(new_names), len(new_names)):
        raise DataError(
            f"similarity shape {new_similarity.shape} does not match the "
            f"{len(new_names)} models of new_matrix"
        )
    old_names = old.model_names
    old_set, new_set = set(old_names), set(new_names)
    added = [name for name in new_names if name not in old_set]
    removed = [name for name in old_names if name not in new_set]

    stale_before = float(old.extras.get("stale_models", 0.0))
    stale_after = stale_before + len(added) + len(removed)
    staleness = stale_after / max(1, len(new_names))

    def full_recluster() -> ClusteringUpdate:
        clusterer = ModelClusterer(config, seed=seed)
        # Hand the precomputed (possibly memmapped) distance through so the
        # re-cluster neither repeats the O(n^2) conversion nor densifies an
        # out-of-core matrix.
        clustering = clusterer.cluster(
            new_matrix,
            similarity=new_similarity,
            distance=distance,
            similarity_config=similarity_config,
        )
        return ClusteringUpdate(
            clustering=clustering,
            reclustered=True,
            added=added,
            removed=removed,
            staleness=0.0,
        )

    if len(new_names) < 2:
        raise DataError(
            "incremental clustering requires at least two surviving models; "
            "the repository shrank below the clusterable minimum"
        )
    if staleness > config.staleness_threshold:
        return full_recluster()
    if not added and not removed:
        return ClusteringUpdate(
            clustering=old,
            reclustered=False,
            staleness=stale_before / max(1, len(new_names)),
        )

    if distance is None:
        distance = similarity_to_distance(new_similarity)
    # The join criterion of the last full run; additions fall back to a
    # fresh quantile estimate when it was never recorded (e.g. a clustering
    # built with an explicit cluster count, or k-means).
    threshold = old.extras.get("distance_threshold")
    if threshold is None:
        off_diagonal = upper_triangle_values(distance)
        threshold = float(np.quantile(off_diagonal, config.threshold_quantile))

    # Surviving models keep their old cluster label (re-indexed later).
    old_label_of = dict(zip(old_names, old.assignment.labels.tolist()))
    labels = np.empty(len(new_names), dtype=int)
    touched: set = set()
    next_label = int(old.assignment.labels.max()) + 1 if len(old_names) else 0
    for index, name in enumerate(new_names):
        if name in old_label_of:
            labels[index] = old_label_of[name]
        else:
            labels[index] = -1  # placed below, after all survivors are known
    for cluster_id in {old_label_of[name] for name in removed}:
        touched.add(int(cluster_id))

    # Optional ANN shortlist over performance vectors: candidate clusters
    # are those containing the addition's nearest neighbors; built over the
    # survivors and extended as each addition is placed, so sequential
    # placement semantics (siblings can share a new cluster) are kept.
    ann_index = None
    ann_rows: List[int] = []
    if config.ann_placement is not None and added:
        survivors = np.flatnonzero(labels != -1)
        if survivors.size:
            from repro.ann import IVFIndex

            vectors = np.stack(
                [new_matrix.model_vector(new_names[int(i)]) for i in survivors]
            )
            ann_index = IVFIndex(vectors, seed=seed)
            ann_rows = [int(i) for i in survivors]

    # Place additions sequentially so siblings added together can share a
    # new cluster instead of each starting its own singleton.
    for index, name in enumerate(new_names):
        if labels[index] != -1:
            continue
        placed = np.flatnonzero(labels != -1)
        if placed.size:
            candidates = placed
            if ann_index is not None and len(ann_rows) > config.ann_placement:
                ids, _ = ann_index.search(
                    new_matrix.model_vector(name), config.ann_placement
                )
                neighbor_labels = np.unique(
                    labels[[ann_rows[i] for i in ids.tolist()]]
                )
                candidates = placed[np.isin(labels[placed], neighbor_labels)]
            # Linkage means run over each candidate cluster's *full*
            # membership — only which clusters are compared is pruned.
            linkage = _average_linkage_to_clusters(
                distance[index, candidates], labels[candidates]
            )
            best = min(linkage, key=lambda cid: (linkage[cid], cid))
            if linkage[best] <= threshold:
                labels[index] = best
                touched.add(int(best))
                if ann_index is not None:
                    ann_index.add(new_matrix.model_vector(name))
                    ann_rows.append(index)
                continue
        labels[index] = next_label
        touched.add(int(next_label))
        next_label += 1
        if ann_index is not None:
            ann_index.add(new_matrix.model_vector(name))
            ann_rows.append(index)

    assignment = ClusterAssignment.from_labels(new_names, labels)
    # Map the raw labels used above onto the re-indexed contiguous ids.
    raw_to_final = {
        int(raw): int(final)
        for raw, final in zip(labels.tolist(), assignment.labels.tolist())
    }
    touched_final = sorted(
        raw_to_final[cid] for cid in touched if cid in raw_to_final
    )

    # Representatives: keep old winners for untouched clusters, re-elect in
    # touched ones (membership changed there).
    representatives: Dict[int, str] = {}
    for cluster_id, members in assignment.non_singleton_clusters().items():
        if cluster_id not in touched_final:
            survivor_rep = old.representatives.get(old_label_of[members[0]])
            if survivor_rep is not None:
                representatives[cluster_id] = survivor_rep
                continue
        representatives[cluster_id] = max(members, key=new_matrix.average_accuracy)

    extras = dict(old.extras)
    silhouette = ModelClusterer._safe_silhouette(
        distance, assignment.labels, extras=extras
    )
    extras["stale_models"] = stale_after
    extras["distance_threshold"] = float(threshold)
    clustering = ModelClustering(
        assignment=assignment,
        similarity=new_similarity,
        representatives=representatives,
        config=config,
        silhouette=silhouette,
        extras=extras,
    )
    return ClusteringUpdate(
        clustering=clustering,
        reclustered=False,
        added=added,
        removed=removed,
        touched_clusters=touched_final,
        staleness=staleness,
    )
