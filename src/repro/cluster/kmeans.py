"""K-means clustering (Lloyd's algorithm with k-means++ initialisation).

Two roles in the reproduction: the k-means alternative to hierarchical
model clustering in the paper's Table I comparison, and the grouping of
benchmark validation accuracies into convergence trends for the Eq. 5/6
prediction (:mod:`repro.core.convergence`, Fig. 4).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.cluster.assignments import ClusterAssignment
from repro.utils.exceptions import ConfigurationError, DataError
from repro.utils.rng import as_generator


class KMeans:
    """Plain k-means on row vectors.

    Parameters
    ----------
    num_clusters:
        Number of clusters ``k``.
    max_iter:
        Maximum Lloyd iterations.
    num_init:
        Number of k-means++ restarts; the run with the lowest inertia wins.
    rng:
        Seed or generator for initialisation.
    """

    def __init__(
        self,
        num_clusters: int,
        *,
        max_iter: int = 100,
        num_init: int = 4,
        tol: float = 1e-6,
        rng=None,
    ) -> None:
        if num_clusters < 1:
            raise ConfigurationError("num_clusters must be >= 1")
        if max_iter < 1 or num_init < 1:
            raise ConfigurationError("max_iter and num_init must be >= 1")
        self.num_clusters = int(num_clusters)
        self.max_iter = int(max_iter)
        self.num_init = int(num_init)
        self.tol = float(tol)
        self._rng = as_generator(rng)
        self.centers_: Optional[np.ndarray] = None
        self.inertia_: Optional[float] = None

    # ------------------------------------------------------------------ #
    def fit_predict(self, points: np.ndarray) -> np.ndarray:
        """Cluster ``points`` and return per-row labels."""
        points = np.asarray(points, dtype=float)
        if points.ndim != 2:
            raise DataError(f"points must be 2-d, got shape {points.shape}")
        if points.shape[0] < self.num_clusters:
            raise DataError(
                f"cannot form {self.num_clusters} clusters from {points.shape[0]} points"
            )
        best_labels, best_inertia, best_centers = None, np.inf, None
        for _ in range(self.num_init):
            labels, inertia, centers = self._single_run(points)
            if inertia < best_inertia:
                best_labels, best_inertia, best_centers = labels, inertia, centers
        self.centers_ = best_centers
        self.inertia_ = float(best_inertia)
        return best_labels

    def _single_run(self, points: np.ndarray):
        centers = self._init_centers(points)
        labels = np.zeros(points.shape[0], dtype=int)
        previous_inertia = np.inf
        for _ in range(self.max_iter):
            distances = self._distances_to_centers(points, centers)
            labels = np.argmin(distances, axis=1)
            inertia = float(np.sum(distances[np.arange(points.shape[0]), labels]))
            new_centers = centers.copy()
            for cluster in range(self.num_clusters):
                mask = labels == cluster
                if np.any(mask):
                    new_centers[cluster] = points[mask].mean(axis=0)
                else:
                    # Re-seed an empty cluster at the point farthest from its center.
                    farthest = int(np.argmax(distances.min(axis=1)))
                    new_centers[cluster] = points[farthest]
            centers = new_centers
            if abs(previous_inertia - inertia) < self.tol:
                break
            previous_inertia = inertia
        distances = self._distances_to_centers(points, centers)
        labels = np.argmin(distances, axis=1)
        inertia = float(np.sum(distances[np.arange(points.shape[0]), labels]))
        return labels, inertia, centers

    def _init_centers(self, points: np.ndarray) -> np.ndarray:
        """k-means++ seeding."""
        n = points.shape[0]
        centers = np.empty((self.num_clusters, points.shape[1]))
        first = int(self._rng.integers(0, n))
        centers[0] = points[first]
        closest = np.sum((points - centers[0]) ** 2, axis=1)
        for index in range(1, self.num_clusters):
            total = closest.sum()
            if total <= 0:
                choice = int(self._rng.integers(0, n))
            else:
                probabilities = closest / total
                choice = int(self._rng.choice(n, p=probabilities))
            centers[index] = points[choice]
            distances = np.sum((points - centers[index]) ** 2, axis=1)
            closest = np.minimum(closest, distances)
        return centers

    @staticmethod
    def _distances_to_centers(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
        return (
            np.sum(points**2, axis=1)[:, None]
            + np.sum(centers**2, axis=1)[None, :]
            - 2.0 * points @ centers.T
        ).clip(min=0.0)


def kmeans_cluster(
    item_names: Sequence[str],
    points: np.ndarray,
    num_clusters: int,
    *,
    rng=None,
) -> ClusterAssignment:
    """Convenience wrapper returning a :class:`ClusterAssignment`."""
    labels = KMeans(num_clusters, rng=rng).fit_predict(np.asarray(points, dtype=float))
    return ClusterAssignment.from_labels(item_names, labels)
