"""JSON-lines front-end of the scheduled selection service.

``python -m repro serve`` wraps a :class:`~repro.service.SelectionService`
in a long-lived, line-oriented JSON protocol — over stdin/stdout by default
or a TCP socket with ``--port`` — so non-Python clients can drive the
epoch scheduler.  One request or response per line:

* ``{"op": "select", "target": "mnli", "id": "r1", "top_k": 4}`` —
  submit a request; answered immediately with an ``accepted`` event, then
  asynchronously with ``progress`` events as stages complete and finally a
  ``result`` (or ``failed``) event.  With ``"total_epochs"`` (alias
  ``"raise_budget"``) the request runs under a larger fine-selection
  budget — against a plan store this continues a finished request from its
  journaled rungs instead of restarting it.  ``"extrapolate": true``
  enables curve-extrapolation early stopping for this request;
  ``"exact": true`` forces the bitwise paper-faithful path regardless of
  the server's ``--extrapolate`` default (``docs/extrapolation.md``).
* ``{"op": "poll", "id": "r1"}`` — progress snapshot of one request;
  ``"best": true`` adds the anytime answer (current best candidate with
  confidence ordering) while the request is still training.
* ``{"op": "resume"}`` — resubmit journaled requests a crashed process
  left unfinished (requires ``--store-dir``); the recovered handles are
  tracked like fresh submissions and stream the usual events.
* ``{"op": "stats"}`` — service counters (scheduler + session pool included).
* ``{"op": "shutdown"}`` — drain outstanding requests and stop serving.

Responses echo the client-chosen ``id``.  Admission failures surface as
``failed`` events with the same structured error object the CLI's
``select``/``batch`` commands emit on budget exhaustion (see
:func:`error_payload`).  The protocol, fairness policies and tuning knobs
are documented in ``docs/serving.md``.
"""

from __future__ import annotations

import json
import socketserver
import threading
from typing import Dict, Optional, TextIO

from repro.core.results import TwoPhaseResult
from repro.utils.exceptions import ReproError

#: Exit code of CLI commands failing on scheduler admission/budget errors —
#: distinct from 2 (usage / library errors) so scripts can tell backpressure
#: from misuse.
EXIT_SCHEDULER = 3

#: Structured error codes per scheduler exception type.
_ERROR_CODES = {
    "QueueFullError": "queue_full",
    "BudgetExhaustedError": "budget_exhausted",
    "RequestTimeoutError": "timeout",
    "RateLimitError": "rate_limited",
    "WorkerLostError": "worker_lost",
}

#: Seconds between progress sweeps of the emitter thread.
_POLL_INTERVAL = 0.02


def result_payload(result: TwoPhaseResult) -> Dict[str, object]:
    """JSON-friendly view of one two-phase result (shared with the CLI)."""
    payload = {
        "target": result.target_name,
        "selected_model": result.selected_model,
        "selected_accuracy": result.selected_accuracy,
        "total_cost": result.total_cost,
        "runtime_epochs": result.selection.runtime_epochs,
        "recall_epoch_cost": result.recall.epoch_cost,
        "recalled_models": list(result.recall.recalled_models),
    }
    extrapolation = result.selection.extras.get("extrapolation")
    if extrapolation:
        # Budget-honesty accounting of speculative early stops: which arms
        # were pruned, the epochs saved and the regret bound at decision
        # time.  Absent on the exact path, so exact payloads are unchanged.
        payload["extrapolation"] = extrapolation
    return payload


def error_payload(error: Exception) -> Dict[str, object]:
    """Structured JSON error object for scheduler/request failures."""
    name = type(error).__name__
    return {
        "error": {
            "code": _ERROR_CODES.get(name, "error"),
            "type": name,
            "message": str(error),
        }
    }


class ServeFrontEnd:
    """Line-oriented JSON protocol over one :class:`SelectionService`.

    One front end serves any number of streams/connections; submissions
    from all of them multiplex onto the service's single epoch scheduler,
    which is the point — concurrent clients share the training budget and
    session pool.
    """

    def __init__(
        self,
        service,
        *,
        default_timeout: Optional[float] = None,
        recover: bool = False,
    ) -> None:
        self.service = service
        self.default_timeout = default_timeout
        self._recover_lock = threading.Lock()
        #: Handles recovered at startup, waiting for the first stream to
        #: adopt them (so their result/failed events reach a client).
        self._startup_recovered = list(service.recover()) if recover else []

    def _adopt_recovered(self, emitter: "_EventEmitter") -> None:
        """Hand startup-recovered handles to the first connected stream."""
        with self._recover_lock:
            handles, self._startup_recovered = self._startup_recovered, []
        for handle in handles:
            emitter.track(f"recovered-{handle.id}", handle)

    @property
    def recovered_count(self) -> int:
        """Startup-recovered requests not yet adopted by a stream."""
        with self._recover_lock:
            return len(self._startup_recovered)

    # ------------------------------------------------------------------ #
    # stdin/stdout mode
    # ------------------------------------------------------------------ #
    def serve_stream(self, lines, out: TextIO) -> int:
        """Serve line-delimited JSON requests from ``lines`` until EOF/shutdown.

        Events for in-flight requests are emitted asynchronously between
        reads; at EOF (or an explicit ``shutdown`` op) outstanding requests
        are drained before returning.  Returns a process exit code.
        """
        emitter = _EventEmitter(self, out)
        emitter.start()
        self._adopt_recovered(emitter)
        try:
            for line in lines:
                line = line.strip()
                if not line:
                    continue
                response = self.handle_line(line, emitter)
                if response is not None:
                    emitter.emit(response)
                if emitter.shutdown_requested:
                    break
        finally:
            emitter.drain_and_stop()
        return 0

    def handle_line(self, line: str, emitter: "_EventEmitter") -> Optional[Dict]:
        """Dispatch one protocol line; return the immediate response (if any)."""
        try:
            message = json.loads(line)
        except json.JSONDecodeError as error:
            return {"event": "error", "message": f"malformed JSON: {error}"}
        if not isinstance(message, dict):
            return {"event": "error", "message": "expected a JSON object"}
        op = message.get("op")
        request_id = message.get("id")
        try:
            if op == "select":
                return self._handle_select(message, emitter)
            if op == "poll":
                return self._handle_poll(message, emitter)
            if op == "resume":
                return self._handle_resume(request_id, emitter)
            if op == "ping":
                # Cheap liveness probe: answered from the scheduler's lock
                # without touching artifacts — heartbeat traffic must stay
                # O(1) however loaded the service is.
                payload = {"event": "pong", **self.service.load()}
                if request_id is not None:
                    payload["id"] = request_id
                return payload
            if op == "refresh":
                return self._handle_refresh(message)
            if op == "stats":
                payload = {"event": "stats", "stats": self.service.stats()}
                if request_id is not None:
                    payload["id"] = request_id
                return payload
            if op == "shutdown":
                emitter.shutdown_requested = True
                payload = {"event": "shutting_down"}
                if request_id is not None:
                    payload["id"] = request_id
                return payload
            return {"event": "error", "id": request_id,
                    "message": f"unknown op {op!r}"}
        except ReproError as error:
            payload = {"event": "failed", **error_payload(error)}
            if request_id is not None:
                payload["id"] = request_id
            return payload

    def _handle_select(self, message: Dict, emitter: "_EventEmitter") -> Dict:
        target = message.get("target")
        if not isinstance(target, str) or not target:
            return {"event": "error", "id": message.get("id"),
                    "message": "select needs a 'target' string"}
        total_epochs = message.get("total_epochs", message.get("raise_budget"))
        # Per-request speculative mode: "exact" wins over "extrapolate";
        # absent both, the service default applies.
        extrapolate = None
        if message.get("exact"):
            extrapolate = False
        elif message.get("extrapolate"):
            extrapolate = True
        handle = self.service.submit(
            target,
            top_k=message.get("top_k"),
            timeout=message.get("timeout", self.default_timeout),
            epoch_quota=message.get("epoch_quota"),
            total_epochs=total_epochs,
            extrapolate=extrapolate,
        )
        request_id = message.get("id", f"req-{handle.id}")
        emitter.track(request_id, handle)
        return {"event": "accepted", "id": request_id, "target": target,
                "request": handle.id}

    def _handle_poll(self, message: Dict, emitter: "_EventEmitter") -> Dict:
        request_id = message.get("id")
        handle = emitter.tracked(request_id)
        if handle is None:
            return {"event": "error", "id": request_id,
                    "message": f"unknown request id {request_id!r}"}
        snapshot = self.service.poll(handle, best=bool(message.get("best")))
        # The scheduler's numeric id moves to "request"; "id" stays the
        # client-chosen correlation id.
        snapshot["request"] = snapshot.pop("id", None)
        return {"event": "status", "id": request_id, **snapshot}

    def _handle_refresh(self, message: Dict) -> Dict:
        """Apply a zoo update in place: in-flight requests drain on the old
        epoch, later admissions see the new one (``docs/zoo-updates.md``)."""
        added = message.get("added") or []
        removed = message.get("removed") or []
        if not added and not removed:
            return {"event": "error", "id": message.get("id"),
                    "message": "refresh needs 'added' and/or 'removed' model names"}
        result = self.service.refresh(added=added, removed=removed)
        payload: Dict[str, object] = {
            "event": "refreshed",
            "zoo_version": result.new_version.key,
            "old_version": result.old_version.key,
            "added": len(result.added),
            "removed": len(result.removed),
            "reclustered": result.reclustered,
        }
        if message.get("id") is not None:
            payload["id"] = message["id"]
        return payload

    def _handle_resume(self, request_id, emitter: "_EventEmitter") -> Dict:
        """Recover journaled in-flight requests and track them here."""
        self._adopt_recovered(emitter)  # startup recoveries join this stream
        handles = self.service.recover()
        entries = []
        for handle in handles:
            rid = f"recovered-{handle.id}"
            emitter.track(rid, handle)
            entries.append(
                {"id": rid, "target": handle.target_name, "request": handle.id}
            )
        payload: Dict[str, object] = {
            "event": "recovered",
            "count": len(entries),
            "requests": entries,
        }
        if request_id is not None:
            payload["id"] = request_id
        return payload

    # ------------------------------------------------------------------ #
    # TCP mode
    # ------------------------------------------------------------------ #
    def serve_tcp(self, host: str, port: int):
        """Bind a threading TCP server speaking the same line protocol.

        Returns the started server; callers own its lifecycle
        (``server.serve_forever()`` / ``server.shutdown()``).  The bound
        port is ``server.server_address[1]`` (useful with ``port=0``).
        """
        front = self

        class Handler(socketserver.StreamRequestHandler):
            def handle(self) -> None:
                out = SocketLineWriter(self.wfile)
                emitter = _EventEmitter(front, out)
                emitter.start()
                front._adopt_recovered(emitter)
                try:
                    for raw in self.rfile:
                        line = raw.decode("utf-8").strip()
                        if not line:
                            continue
                        response = front.handle_line(line, emitter)
                        if response is not None:
                            emitter.emit(response)
                        if emitter.shutdown_requested:
                            break
                finally:
                    emitter.drain_and_stop()

        class Server(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        return Server((host, port), Handler)


class SocketLineWriter:
    """Minimal text adapter over a binary socket file.

    Shared with the distributed router (:mod:`repro.distrib.router`), whose
    TCP handler writes the same line-delimited JSON events.
    """

    def __init__(self, wfile) -> None:
        self._wfile = wfile

    def write(self, text: str) -> None:
        self._wfile.write(text.encode("utf-8"))

    def flush(self) -> None:
        self._wfile.flush()


class _EventEmitter:
    """Streams request lifecycle events for one client stream.

    A small poller thread watches tracked handles and emits a ``progress``
    event whenever a request completes another stage, then a terminal
    ``result``/``failed`` event — the streaming per-stage feedback of the
    serve protocol.  All writes share one lock so event lines never
    interleave.
    """

    def __init__(self, front: ServeFrontEnd, out) -> None:
        self._front = front
        self._out = out
        self._write_lock = threading.Lock()
        self._tracked: Dict[object, object] = {}
        self._last_stage: Dict[object, int] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.shutdown_requested = False

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._watch, name="repro-serve-emitter", daemon=True
        )
        self._thread.start()

    def emit(self, payload: Dict) -> None:
        with self._write_lock:
            self._out.write(json.dumps(payload) + "\n")
            self._out.flush()

    def track(self, request_id, handle) -> None:
        with self._lock:
            self._tracked[request_id] = handle
            self._last_stage[request_id] = -1

    def tracked(self, request_id):
        with self._lock:
            return self._tracked.get(request_id)

    # ------------------------------------------------------------------ #
    def _watch(self) -> None:
        while not self._stop.wait(_POLL_INTERVAL):
            self._sweep()

    def _sweep(self) -> None:
        with self._lock:
            items = list(self._tracked.items())
        for request_id, handle in items:
            snapshot = self._front.service.poll(handle)
            progress = snapshot.get("progress") or {}
            stage = progress.get("stage", 0)
            if handle.state in ("done", "failed"):
                self._finish(request_id, handle)
            elif stage > self._last_stage.get(request_id, -1):
                self._last_stage[request_id] = stage
                self.emit({
                    "event": "progress", "id": request_id,
                    "target": handle.target_name,
                    "stage": stage, "num_stages": progress.get("num_stages"),
                    "surviving": progress.get("surviving", []),
                })

    def _finish(self, request_id, handle) -> None:
        with self._lock:
            # Another sweep may have finished it concurrently.
            if request_id not in self._tracked:
                return
            del self._tracked[request_id]
            self._last_stage.pop(request_id, None)
        if handle.error is not None:
            self.emit({"event": "failed", "id": request_id,
                       "target": handle.target_name,
                       **error_payload(handle.error)})
        elif handle.result is None:
            # Still running (drain timed out): report abandonment rather
            # than crash on a result that does not exist yet.
            self.emit({
                "event": "failed", "id": request_id,
                "target": handle.target_name,
                "error": {"code": "timeout", "type": "ShutdownTimeout",
                          "message": "request still running at shutdown"},
            })
        else:
            payload = result_payload(handle.result)
            payload["latency_seconds"] = handle.latency_seconds()
            self.emit({"event": "result", "id": request_id, **payload})

    def drain_and_stop(self) -> None:
        """Wait out every tracked request, emit its terminal event, stop."""
        while True:
            with self._lock:
                handles = list(self._tracked.items())
            if not handles:
                break
            for request_id, handle in handles:
                handle.wait(timeout=60.0)
                self._finish(request_id, handle)
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
