"""``python -m repro`` entry point (see :mod:`repro.cli` and docs/cli.md)."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
