"""Long-lived selection service: one offline phase, many online answers.

The paper splits the framework into an *offline* phase (performance matrix +
model clustering, once per repository version) and cheap *online* phases
(coarse recall + fine selection, once per query).  :class:`SelectionService` is the
deployment shape of that split: it builds — or receives — warm
:class:`~repro.core.pipeline.OfflineArtifacts` once, then answers any number
of ``select`` / ``select_many`` / ``recall`` requests against them, fanning
work out over the configured :mod:`repro.parallel` executor and keeping
running totals (requests, epoch-equivalents spent) for observability.

Two request paths exist:

* the **blocking** path — :meth:`SelectionService.select` and friends run
  the caller's request to completion in the calling thread, exactly as a
  bare :class:`~repro.core.pipeline.TwoPhaseSelector` would;
* the **scheduled** path — :meth:`SelectionService.submit` enqueues the
  request with the service's :class:`~repro.sched.scheduler.EpochScheduler`
  and returns a handle immediately; :meth:`poll` streams per-stage
  progress and :meth:`result` blocks for the outcome.  Concurrent
  requests interleave at epoch granularity over a shared training budget
  and reuse each other's partially-trained sessions through the
  :class:`~repro.sched.pool.SessionPool` — results are bitwise-identical
  to the blocking path either way (see ``docs/serving.md``).

The service is thread-safe: the engines it shares across requests hold no
per-request mutable state, lazy checkpoint construction is lock-guarded in
the hub, and the artifact cache is thread-safe — so a server can call one
service instance from many request threads.  The ``python -m repro`` CLI is
a thin front-end over this class (``python -m repro serve`` exposes the
scheduled path as a long-lived JSON front-end).

The model zoo underneath a running service is *mutable*:
:meth:`SelectionService.refresh` applies checkpoint additions/removals by
deriving the next artifact version incrementally
(:meth:`~repro.core.pipeline.OfflineArtifacts.refresh`) and swapping it in
atomically — in-flight requests finish against the old epoch, later
requests see the new one.  See ``docs/zoo-updates.md``.

Typical use::

    from repro.service import SelectionService

    service = SelectionService.from_modality("nlp", seed=0)
    result = service.select("mnli")
    handle = service.submit("boolq")          # scheduled, non-blocking
    service.poll(handle)["state"]
    service.result(handle).selected_model
    service.stats()["total_epoch_cost"]
"""

from __future__ import annotations

import copy
import threading
import time
from typing import Dict, List, Optional, Sequence, Union

from repro.cache import cache_stats
from repro.core.batch import BatchSelectionReport
from repro.core.config import PipelineConfig
from repro.core.extrapolation import ExtrapolationConfig
from repro.core.pipeline import OfflineArtifacts, TwoPhaseSelector
from repro.core.results import RecallResult, TwoPhaseResult
from repro.data.tasks import ClassificationTask
from repro.data.workloads import DataScale, suite_for_modality
from repro.parallel.executor import ExecutorLike, get_executor
from repro.persist.store import PlanStore
from repro.sched.config import SchedulerConfig
from repro.sched.pool import SessionPool
from repro.sched.scheduler import EpochScheduler, SchedulerContext, SelectionRequest
from repro.utils.exceptions import ConfigurationError
from repro.zoo.finetune import FineTuner
from repro.zoo.hub import ModelHub

TargetLike = Union[str, ClassificationTask]


class SelectionService:
    """Answer many selection requests off one warm set of offline artifacts.

    Parameters
    ----------
    artifacts:
        Prebuilt offline artifacts; build them once with
        :meth:`OfflineArtifacts.build` or let :meth:`from_modality` /
        :meth:`from_hub` do it.
    fine_tuner:
        Fine-tuning engine shared by every request (a fresh seeded one is
        created otherwise).
    parallel:
        Executor, :class:`~repro.parallel.ParallelConfig` or
        ``"backend[:workers]"`` spec for the online hot paths; defaults to
        ``artifacts.config.parallel``.
    scheduler:
        :class:`~repro.sched.config.SchedulerConfig` of the service's
        epoch scheduler (policy, concurrency, epoch budget, queue bound).
        The scheduler itself starts lazily on the first :meth:`submit`.
    seed:
        Seed for the default fine-tuner.
    store_dir:
        Optional directory for the durable plan store.  When set, every
        scheduled request is journaled and its sessions snapshotted
        (:class:`~repro.persist.store.PlanStore`), making the service
        crash-safe: :meth:`recover` resubmits whatever was in flight when
        a previous process died, finished requests answer straight from
        disk, and a later :meth:`submit` with a raised ``total_epochs``
        continues from the journaled rungs.
    extrapolation:
        Optional :class:`~repro.core.extrapolation.ExtrapolationConfig`
        making curve-extrapolation early stopping the *default* for
        scheduled requests (each :meth:`submit` can still override with
        ``extrapolate=``).  ``None`` — the default — is exact mode; the
        blocking :meth:`select` path is always exact.  See
        ``docs/extrapolation.md``.
    """

    def __init__(
        self,
        artifacts: OfflineArtifacts,
        *,
        fine_tuner: Optional[FineTuner] = None,
        parallel: ExecutorLike = None,
        scheduler: Optional[SchedulerConfig] = None,
        seed: int = 0,
        store_dir: Optional[str] = None,
        extrapolation: Optional[ExtrapolationConfig] = None,
    ) -> None:
        self.artifacts = artifacts
        if parallel is None:
            parallel = getattr(artifacts.config, "parallel", None)
        self._executor = get_executor(parallel)
        self._selector = TwoPhaseSelector(
            artifacts, fine_tuner=fine_tuner, seed=seed, parallel=self._executor
        )
        self._lock = threading.Lock()
        self._refresh_lock = threading.Lock()
        self._started_at = time.monotonic()
        self._requests = 0
        self._targets_served = 0
        self._epoch_cost = 0.0
        self._refreshes = 0
        self._seed = int(seed)
        self._scheduler_config = scheduler or SchedulerConfig()
        self._scheduler: Optional[EpochScheduler] = None
        self._persist = PlanStore(store_dir) if store_dir is not None else None
        self._extrapolation = extrapolation

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_hub(
        cls,
        hub: ModelHub,
        suite=None,
        *,
        config: Optional[PipelineConfig] = None,
        fine_tuner: Optional[FineTuner] = None,
        parallel: ExecutorLike = None,
        scheduler: Optional[SchedulerConfig] = None,
        seed: int = 0,
        store_dir: Optional[str] = None,
        extrapolation: Optional[ExtrapolationConfig] = None,
    ) -> "SelectionService":
        """Run the offline phase for ``hub`` and wrap it in a service."""
        artifacts = OfflineArtifacts.build(
            hub, suite, config=config, fine_tuner=fine_tuner
        )
        return cls(
            artifacts,
            fine_tuner=fine_tuner,
            parallel=parallel,
            scheduler=scheduler,
            seed=seed,
            store_dir=store_dir,
            extrapolation=extrapolation,
        )

    @classmethod
    def from_modality(
        cls,
        modality: str,
        *,
        scale: str = "full",
        seed: int = 0,
        num_models: Optional[int] = None,
        config: Optional[PipelineConfig] = None,
        parallel: ExecutorLike = None,
        scheduler: Optional[SchedulerConfig] = None,
        store_dir: Optional[str] = None,
        extrapolation: Optional[ExtrapolationConfig] = None,
    ) -> "SelectionService":
        """Build the simulated repository for ``modality`` and serve it.

        ``scale`` is ``"full"`` (paper-sized datasets) or ``"small"`` (fast
        smoke runs); ``num_models`` optionally truncates the catalogue.
        """
        if scale not in ("full", "small"):
            raise ConfigurationError("scale must be 'full' or 'small'")
        data_scale = DataScale.default() if scale == "full" else DataScale.small()
        suite = suite_for_modality(modality, seed=seed, scale=data_scale)
        hub = ModelHub(suite, seed=seed)
        if num_models is not None:
            hub = hub.subset(hub.model_names[:num_models])
        config = config or PipelineConfig.for_modality(modality)
        return cls.from_hub(
            hub, suite, config=config, parallel=parallel, scheduler=scheduler,
            seed=seed, store_dir=store_dir, extrapolation=extrapolation,
        )

    # ------------------------------------------------------------------ #
    # request API
    # ------------------------------------------------------------------ #
    @property
    def target_names(self) -> List[str]:
        """Dedicated target datasets of the served suite."""
        return list(self.artifacts.suite.target_names)

    @property
    def parallel_spec(self) -> str:
        """Compact description of the executor serving requests."""
        executor = self._executor
        workers = executor.resolved_workers()
        return executor.backend if workers == 1 else f"{executor.backend}:{workers}"

    def select(self, target: TargetLike, *, top_k: Optional[int] = None) -> TwoPhaseResult:
        """Answer one selection request (coarse recall + fine selection)."""
        result = self._selector.select(target, top_k=top_k)
        self._account(targets=1, cost=result.total_cost)
        return result

    def select_many(
        self, targets: Sequence[TargetLike], *, top_k: Optional[int] = None
    ) -> BatchSelectionReport:
        """Answer a batch of selection requests off the shared clustering."""
        report = self._selector.select_many(targets, top_k=top_k)
        self._account(targets=len(report.results), cost=report.totals()["total_cost"])
        return report

    def recall(self, target: TargetLike, *, top_k: Optional[int] = None) -> RecallResult:
        """Run only the coarse-recall phase for ``target``."""
        result = self._selector.recall_only(target, top_k=top_k)
        self._account(targets=1, cost=result.epoch_cost)
        return result

    # ------------------------------------------------------------------ #
    # scheduled request API
    # ------------------------------------------------------------------ #
    def _scheduler_context(self) -> SchedulerContext:
        """Bind a new request to the currently served artifact epoch."""
        with self._lock:
            selector = self._selector
            artifacts = self.artifacts
        version = artifacts.version
        fine_selection = selector._fine_selection
        if self._extrapolation is not None and self._extrapolation.enabled:
            # Policy clone so the service-level speculative default never
            # leaks into the blocking (always-exact) selector path.
            fine_selection = copy.copy(fine_selection)
            fine_selection.extrapolation = self._extrapolation
        return SchedulerContext(
            artifacts=artifacts,
            recall=selector._recall,
            fine_selection=fine_selection,
            version_key=version.key if version is not None else "v0",
            fine_tuner=selector.fine_tuner,
        )

    def _on_request_complete(self, request: SelectionRequest) -> None:
        if request.result is not None:
            self._account(targets=1, cost=request.result.total_cost)
        else:
            with self._lock:
                self._requests += 1

    def _ensure_scheduler(self) -> EpochScheduler:
        with self._lock:
            if self._scheduler is None:
                self._scheduler = EpochScheduler(
                    self._scheduler_context,
                    config=self._scheduler_config,
                    parallel=self._executor,
                    pool=SessionPool(self._selector.fine_tuner),
                    on_complete=self._on_request_complete,
                    persist=self._persist,
                )
                self._scheduler.start()
            return self._scheduler

    def submit(
        self,
        target: TargetLike,
        *,
        top_k: Optional[int] = None,
        timeout: Optional[float] = None,
        epoch_quota: Optional[int] = None,
        total_epochs: Optional[int] = None,
        extrapolate: Union[None, bool, ExtrapolationConfig] = None,
    ) -> SelectionRequest:
        """Enqueue a request with the epoch scheduler; return its handle.

        The request trains cooperatively with every other in-flight
        request (fair-share or deadline order, shared epoch budget and
        session pool) and its result is bitwise-identical to
        :meth:`select`.  ``total_epochs`` overrides this request's fine
        selection budget (the raise-budget verb — with a plan store, a
        finished request resubmitted under a larger budget continues from
        its journaled rungs).  ``extrapolate`` overrides the service's
        speculative early-stopping default for this request: ``True`` (or
        an :class:`~repro.core.extrapolation.ExtrapolationConfig`) prunes
        arms whose extrapolated ceiling cannot win, ``False`` forces exact
        mode (see ``docs/extrapolation.md``).  Raises
        :class:`~repro.utils.exceptions.QueueFullError` when the bounded
        admission queue rejects the request (backpressure); ``timeout``
        and ``epoch_quota`` bound the request's wall time and charged
        epochs (:class:`~repro.utils.exceptions.RequestTimeoutError` /
        :class:`~repro.utils.exceptions.BudgetExhaustedError`).
        """
        return self._ensure_scheduler().submit(
            target,
            top_k=top_k,
            timeout=timeout,
            epoch_quota=epoch_quota,
            total_epochs=total_epochs,
            extrapolate=extrapolate,
        )

    def poll(self, request: SelectionRequest, *, best: bool = False) -> Dict[str, object]:
        """Progress snapshot of a submitted request (per-stage detail).

        ``best=True`` adds the anytime answer: the confidence-ordered
        current-best candidates of the still-running plan.
        """
        return self._ensure_scheduler().poll(request, best=best)

    def recover(self) -> List[SelectionRequest]:
        """Resubmit journaled requests a previous process left unfinished.

        Requires the service to have a plan store (``store_dir``); returns
        the new handles (empty without a store, or when nothing was in
        flight).  Resumed requests replay their journals — recall skipped,
        recorded steps completed from session snapshots without
        retraining — and then train only what was never journaled.
        """
        return self._ensure_scheduler().recover()

    def result(
        self, request: SelectionRequest, timeout: Optional[float] = None
    ) -> TwoPhaseResult:
        """Block until a submitted request finishes; return its result.

        Re-raises the request's failure (timeout, budget exhaustion) if it
        did not complete.
        """
        return self._ensure_scheduler().result(request, timeout=timeout)

    def load(self) -> Dict[str, int]:
        """Cheap load probe: active and queued scheduled-request counts.

        Unlike :meth:`stats` this never builds the scheduler, reads no
        artifacts and allocates nothing of note — it is the payload of the
        serve protocol's ``ping`` heartbeat, which must stay O(1) while
        the service is saturated.
        """
        with self._lock:
            scheduler = self._scheduler
        if scheduler is None:
            return {"active": 0, "queued": 0}
        return scheduler.load()

    def close(self) -> None:
        """Drain and stop the scheduler (if one was started)."""
        with self._lock:
            scheduler, self._scheduler = self._scheduler, None
        if scheduler is not None:
            scheduler.close(drain=True)

    # ------------------------------------------------------------------ #
    # zoo updates
    # ------------------------------------------------------------------ #
    def refresh(self, *, added: Sequence = (), removed: Sequence[str] = ()):
        """Apply a zoo update and swap in the refreshed offline artifacts.

        Delegates to :meth:`~repro.core.pipeline.OfflineArtifacts.refresh`
        (incremental: only new checkpoints are fine-tuned, only changed
        similarity rows recomputed, clustering patched within its staleness
        budget) and atomically replaces the served artifacts and online
        engines.  Requests already running keep the old epoch — including
        scheduled requests, whose context was bound at admission; the swap
        is serialised so concurrent refreshes apply one at a time, and
        cache entries of the superseded version are evicted only *after*
        the swap so old-epoch requests still in flight cannot repopulate
        them.  Idle pooled sessions of the superseded version are evicted
        the same way (their keys embed the zoo version, so they could
        never be hit again anyway).  Returns the
        :class:`~repro.core.pipeline.RefreshResult`.

        The offline fine-tuner is deliberately **not** the online selector's:
        added models must train under the same (artifact-recorded) tuner the
        original offline matrix used, or the incremental == from-scratch
        guarantee breaks.
        """
        from repro.cache import fingerprint_matrix, resolve_cache
        from repro.core.pipeline import evict_spilled_artifacts

        with self._refresh_lock:
            old_matrix = self.artifacts.matrix
            old_config = self.artifacts.config
            old_version = self.artifacts.version
            result = self.artifacts.refresh(
                added=added, removed=removed, evict_superseded=False
            )
            selector = TwoPhaseSelector(
                result.artifacts,
                fine_tuner=self._selector.fine_tuner,
                seed=self._seed,
                parallel=self._executor,
            )
            with self._lock:
                self.artifacts = result.artifacts
                self._selector = selector
                self._refreshes += 1
                scheduler = self._scheduler
            store = resolve_cache(None)
            if store is not None:
                result.evicted_entries = store.evict_matching(
                    fingerprint_matrix(old_matrix)
                )
            result.evicted_entries += evict_spilled_artifacts(
                getattr(old_config, "similarity", None), fingerprint_matrix(old_matrix)
            )
            if scheduler is not None and old_version is not None:
                scheduler.pool.evict_version(old_version.key)
            if self._persist is not None and old_version is not None:
                # Journals and snapshots of the superseded version could
                # never be resumed (recovery checks the version key), so
                # reclaim their disk space as part of the same sweep.
                result.evicted_entries += self._persist.evict_version(
                    old_version.key
                )
        return result

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def _account(self, *, targets: int, cost: float) -> None:
        with self._lock:
            self._requests += 1
            self._targets_served += targets
            self._epoch_cost += float(cost)

    def cluster_summary(self) -> Dict[str, float]:
        """Summary statistics of the warm model clustering."""
        return self._selector.cluster_summary()

    def stats(self) -> Dict[str, object]:
        """Service counters plus artifact-cache statistics.

        Keys: ``requests``, ``targets_served``, ``total_epoch_cost``,
        ``uptime_seconds``, ``num_models``, ``zoo_version``, ``refreshes``,
        ``parallel``, ``similarity_backing`` (``"memmap"`` when the served
        similarity matrix is an out-of-core spill the service reads row
        tiles from on demand, ``"memory"`` otherwise), ``scheduler`` (the
        epoch scheduler's queue/completion counters and the session pool's
        hit/reuse report — ``None`` until the first :meth:`submit`) and
        ``cache`` (the per-tier hit/miss report of the process cache).

        Everything version-coupled — the request/epoch counters, the
        served artifacts and the scheduler snapshot — is read in **one**
        critical section of the same lock :meth:`refresh` swaps under, so
        a ``stats()`` racing a refresh can never pair the new
        ``zoo_version`` with the old counters (or vice versa).
        """
        import numpy as np

        with self._lock:
            snapshot: Dict[str, object] = {
                "requests": self._requests,
                "targets_served": self._targets_served,
                "total_epoch_cost": self._epoch_cost,
                "refreshes": self._refreshes,
            }
            artifacts = self.artifacts
            scheduler = self._scheduler
            snapshot["scheduler"] = scheduler.stats() if scheduler is not None else None
        snapshot["uptime_seconds"] = time.monotonic() - self._started_at
        snapshot["num_models"] = len(artifacts.hub)
        version = artifacts.version
        snapshot["zoo_version"] = version.key if version is not None else None
        snapshot["parallel"] = self.parallel_spec
        snapshot["similarity_backing"] = (
            "memmap"
            if isinstance(artifacts.clustering.similarity, np.memmap)
            else "memory"
        )
        snapshot["cache"] = cache_stats()
        return snapshot
