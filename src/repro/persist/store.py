"""Durable plan store: journals plus atomically-published session snapshots.

:class:`PlanStore` owns one directory with two key families, both named by
the content-hash keys of :mod:`repro.cache`:

* ``journals/<plan-key>.jsonl`` — one append-only
  :class:`~repro.persist.journal.PlanJournal` per selection request,
  keyed by :func:`repro.cache.plan_key` (zoo version, task fingerprint,
  policy, ``top_k``);
* ``sessions/<session-key>.pkl`` — the latest snapshot of each shared
  fine-tuning session lineage, keyed by :func:`repro.cache.session_key`.
  Snapshots are whole pickled
  :class:`~repro.zoo.finetune.FineTuneSession` objects (the same payload
  the process executor already ships between workers), so a restored
  session continues training bitwise-identically to one that never left
  memory.

Snapshots are published like :class:`~repro.cache.store.DiskCache` entries:
written to a writer-unique temporary file and moved into place with an
atomic :func:`os.replace`, so a reader can never observe a half-written
snapshot and a killed writer leaves only a stale temp file — which
:meth:`PlanStore.sweep_temp_files` removes on the next startup (temp files
embed the writer's pid; only files of dead processes are swept, so a live
writer sharing the directory is never disturbed).

Both key families embed the zoo version (``zoo=<version>``), which is what
makes :meth:`evict_version` — the refresh-time invalidation sweep — a
filename fragment match, exactly like the artifact cache's.
"""

from __future__ import annotations

import os
import pickle
import threading
from pathlib import Path
from typing import Dict, List, Union

from repro.cache.store import _UNSAFE_FILENAME, sweep_stale_temp_files
from repro.persist.hooks import fire_crash_point
from repro.persist.journal import PlanJournal


class PlanStore:
    """Directory of plan journals and session snapshots for one deployment.

    Parameters
    ----------
    directory:
        Root directory (created if missing); ``journals/`` and
        ``sessions/`` live under it.
    fsync:
        Forwarded to every :class:`PlanJournal` (see there); snapshot
        publishes always use atomic replace regardless.
    """

    def __init__(self, directory: Union[str, Path], *, fsync: bool = False) -> None:
        self.directory = Path(directory)
        self.fsync = bool(fsync)
        self.journals_dir = self.directory / "journals"
        self.sessions_dir = self.directory / "sessions"
        self.journals_dir.mkdir(parents=True, exist_ok=True)
        self.sessions_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._journals: Dict[str, PlanJournal] = {}
        #: Epoch count of the last published snapshot per session key —
        #: skips republishing a session no round has advanced.
        self._published_epochs: Dict[str, int] = {}
        self.swept_temp_files = self.sweep_temp_files()

    # ------------------------------------------------------------------ #
    # paths
    # ------------------------------------------------------------------ #
    def _safe_name(self, key: str) -> str:
        return _UNSAFE_FILENAME.sub("_", key)

    def journal_path(self, plan_key: str) -> Path:
        """On-disk path of the journal for ``plan_key``."""
        return self.journals_dir / f"{self._safe_name(plan_key)}.jsonl"

    def session_path(self, session_key: str) -> Path:
        """On-disk path of the snapshot for ``session_key``."""
        return self.sessions_dir / f"{self._safe_name(session_key)}.pkl"

    # ------------------------------------------------------------------ #
    # journals
    # ------------------------------------------------------------------ #
    def journal(self, plan_key: str) -> PlanJournal:
        """The (cached) journal of one plan key, reading any existing file."""
        with self._lock:
            journal = self._journals.get(plan_key)
            if journal is None:
                journal = PlanJournal(self.journal_path(plan_key), fsync=self.fsync)
                self._journals[plan_key] = journal
            return journal

    def journal_paths(self) -> List[Path]:
        """Every journal file currently in the store (sorted for determinism)."""
        return sorted(self.journals_dir.glob("*.jsonl"))

    def drop_journal(self, plan_key: str) -> bool:
        """Delete one journal (cache and file); returns whether it existed."""
        with self._lock:
            self._journals.pop(plan_key, None)
        path = self.journal_path(plan_key)
        if path.exists():
            path.unlink(missing_ok=True)
            return True
        return False

    # ------------------------------------------------------------------ #
    # session snapshots
    # ------------------------------------------------------------------ #
    def save_session(self, session_key: str, session) -> bool:
        """Publish the latest snapshot of one session lineage (atomic).

        Skips the write when the session has not advanced past the last
        published snapshot.  Returns whether a snapshot was written.
        """
        epochs = session.epochs_trained
        with self._lock:
            if self._published_epochs.get(session_key, -1) >= epochs:
                return False
        final = self.session_path(session_key)
        tmp = final.with_name(
            f"{final.name}.tmp-{os.getpid()}-{threading.get_ident()}"
        )
        with open(tmp, "wb") as handle:
            pickle.dump(session, handle, protocol=pickle.HIGHEST_PROTOCOL)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        fire_crash_point("publish", key=session_key, epochs=epochs)
        os.replace(tmp, final)
        with self._lock:
            self._published_epochs[session_key] = epochs
        return True

    def load_session(self, session_key: str):
        """Load the latest snapshot of ``session_key`` (or ``None``).

        A missing, truncated or otherwise unreadable snapshot behaves like
        a miss — the caller starts a fresh session and training replays
        from the journal's accounting instead of crashing recovery.
        """
        path = self.session_path(session_key)
        if not path.exists():
            return None
        try:
            with open(path, "rb") as handle:
                session = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            return None
        with self._lock:
            published = self._published_epochs.get(session_key, -1)
            self._published_epochs[session_key] = max(
                published, session.epochs_trained
            )
        return session

    def session_keys_on_disk(self) -> List[str]:
        """Sanitised session-key stems of every stored snapshot (sorted)."""
        return sorted(path.stem for path in self.sessions_dir.glob("*.pkl"))

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #
    def sweep_temp_files(self) -> int:
        """Remove orphaned temp files of dead writers in both directories."""
        return sweep_stale_temp_files(self.journals_dir) + sweep_stale_temp_files(
            self.sessions_dir
        )

    def evict_version(self, version_key: str) -> int:
        """Drop every journal and snapshot of one zoo version.

        Plan and session keys both embed ``zoo=<version>``, so the sweep is
        a filename fragment match (the fragment is sanitised exactly like
        the keys were).  Returns the number of files removed.  This is the
        persistence leg of the refresh-time invalidation sweep — journals
        of a superseded version could never be resumed anyway (their
        version check would reject them), so they are reclaimed eagerly.
        """
        fragment = self._safe_name(f"zoo={version_key}:")
        removed = 0
        with self._lock:
            stale = [key for key in self._journals if fragment in self._safe_name(key)]
            for key in stale:
                del self._journals[key]
            stale_sessions = [
                key for key in self._published_epochs
                if fragment in self._safe_name(key)
            ]
            for key in stale_sessions:
                del self._published_epochs[key]
        for directory, suffix in ((self.journals_dir, ".jsonl"),
                                  (self.sessions_dir, ".pkl")):
            for path in directory.glob(f"*{suffix}"):
                if fragment in path.name:
                    path.unlink(missing_ok=True)
                    removed += 1
        return removed

    def stats(self) -> Dict[str, int]:
        """Counts of stored journals/snapshots plus the startup sweep tally."""
        return {
            "journals": len(self.journal_paths()),
            "sessions": len(list(self.sessions_dir.glob("*.pkl"))),
            "swept_temp_files": self.swept_temp_files,
        }
