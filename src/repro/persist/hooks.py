"""Crash-point hooks: named fault-injection sites in the persistence path.

Durability claims are only as good as the worst crash you have tested, so
the persistence code declares its crash-relevant boundaries explicitly by
calling :func:`fire_crash_point` with a site name:

* ``"plan.step"`` — a selection plan is about to record one completed
  training step (the step-boundary of the resumable state machine);
* ``"plan.prune"`` — the speculative early-stopping hook decided to
  retire one or more arms but nothing has been mutated or journaled yet
  (the decision boundary of :mod:`repro.core.extrapolation`);
* ``"journal.append"`` — a journal record is about to be written;
* ``"journal.flush"`` — a journal record was written but not yet flushed;
* ``"publish"`` — a session snapshot's temporary file is fully written
  but not yet atomically published with ``os.replace``.

In production no hook is installed and every call is a dictionary miss —
effectively free.  The fault-injection harness
(``tests/faultinject/harness.py``) installs a hook that raises
:class:`SimulatedCrash` at the N-th hit of a site, which is how the test
suite proves that a process dying at *any* of these boundaries leaves the
on-disk state recoverable.

This module deliberately imports nothing from the rest of the library so
any layer (``repro.core.plan`` included) can declare crash points without
creating import cycles.
"""

from __future__ import annotations

import os
import threading
from typing import Callable, Dict, Optional

#: Hook signature: ``hook(site, info)`` — raise to simulate a crash.
CrashHook = Callable[[str, Dict[str, object]], None]


class SimulatedCrash(BaseException):
    """Raised by an installed crash hook to simulate sudden process death.

    Derives from :class:`BaseException` (like ``KeyboardInterrupt``) so no
    ``except Exception`` recovery path in the library can accidentally
    swallow the simulated crash and keep running code the real dead
    process never would have reached.
    """


_LOCK = threading.Lock()
_HOOKS: Dict[str, CrashHook] = {}


def install_hook(site: str, hook: CrashHook) -> None:
    """Install ``hook`` at ``site`` (replacing any previous hook there)."""
    with _LOCK:
        _HOOKS[site] = hook


def remove_hook(site: str) -> None:
    """Remove the hook at ``site`` (a no-op when none is installed)."""
    with _LOCK:
        _HOOKS.pop(site, None)


def clear_hooks() -> None:
    """Remove every installed hook."""
    with _LOCK:
        _HOOKS.clear()


def arm_exit_from_env(environ: Optional[Dict[str, str]] = None) -> Optional[str]:
    """Arm a hard-exit failpoint from ``REPRO_CRASH_SITE``/``REPRO_CRASH_AT``.

    The subprocess mode of the fault-injection harness cannot install a
    Python hook into a freshly spawned ``python -m repro serve`` process,
    so the serve entry point calls this once at startup: when
    ``REPRO_CRASH_SITE`` names a crash site, a hook is installed that
    calls ``os._exit(137)`` on the N-th hit of that site (N from
    ``REPRO_CRASH_AT``, default 1).  ``os._exit`` skips every ``finally``
    block, ``atexit`` handler and buffered flush — the closest in-process
    stand-in for ``SIGKILL`` that still triggers at a deterministic
    boundary.  Returns the armed site name, or ``None`` when the
    environment does not request a failpoint.
    """
    env = os.environ if environ is None else environ
    site = env.get("REPRO_CRASH_SITE")
    if not site:
        return None
    ordinal = max(1, int(env.get("REPRO_CRASH_AT", "1")))
    hits = {"n": 0}

    def _exit_hook(_site: str, _info: Dict[str, object]) -> None:
        hits["n"] += 1
        if hits["n"] >= ordinal:
            os._exit(137)

    install_hook(site, _exit_hook)
    return site


def fire_crash_point(site: str, **info: object) -> None:
    """Run the hook installed at ``site`` (if any) with ``info`` context.

    Called by the persistence and plan layers at their crash-relevant
    boundaries; a hook simulates a crash by raising
    :class:`SimulatedCrash`.
    """
    if not _HOOKS:  # fast path: nothing installed anywhere
        return
    with _LOCK:
        hook: Optional[CrashHook] = _HOOKS.get(site)
    if hook is not None:
        hook(site, info)
