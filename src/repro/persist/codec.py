"""JSON codecs for the result records the plan journal persists.

Round-tripping is exact: Python's ``json`` serialises floats via ``repr``
and parses them back to the identical IEEE-754 double, so a
:class:`~repro.core.results.TwoPhaseResult` decoded from a journal compares
bitwise-equal to the live object it was encoded from — the property the
resume suite asserts.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.results import (
    RecallResult,
    SelectionResult,
    StageRecord,
    TwoPhaseResult,
)


def encode_recall(result: RecallResult) -> Dict[str, object]:
    """JSON payload of one coarse-recall outcome."""
    return {
        "target_name": result.target_name,
        "recalled_models": list(result.recalled_models),
        "recall_scores": dict(result.recall_scores),
        "proxy_scores": dict(result.proxy_scores),
        "raw_proxy_scores": dict(result.raw_proxy_scores),
        "epoch_cost": result.epoch_cost,
    }


def decode_recall(payload: Dict[str, object]) -> RecallResult:
    """Rebuild a :class:`RecallResult` from its journal payload."""
    return RecallResult(
        target_name=payload["target_name"],
        recalled_models=list(payload["recalled_models"]),
        recall_scores=dict(payload["recall_scores"]),
        proxy_scores=dict(payload["proxy_scores"]),
        raw_proxy_scores=dict(payload["raw_proxy_scores"]),
        epoch_cost=payload["epoch_cost"],
    )


def encode_stage(record: StageRecord) -> Dict[str, object]:
    """JSON payload of one filtering-stage record."""
    return {
        "stage": record.stage,
        "surviving_models": list(record.surviving_models),
        "validation_accuracy": dict(record.validation_accuracy),
        "predicted_accuracy": dict(record.predicted_accuracy),
        "removed_by_trend": list(record.removed_by_trend),
        "removed_by_halving": list(record.removed_by_halving),
    }


def decode_stage(payload: Dict[str, object]) -> StageRecord:
    """Rebuild a :class:`StageRecord` from its journal payload."""
    return StageRecord(
        stage=payload["stage"],
        surviving_models=list(payload["surviving_models"]),
        validation_accuracy=dict(payload["validation_accuracy"]),
        predicted_accuracy=dict(payload["predicted_accuracy"]),
        removed_by_trend=list(payload["removed_by_trend"]),
        removed_by_halving=list(payload["removed_by_halving"]),
    )


def encode_selection(result: SelectionResult) -> Dict[str, object]:
    """JSON payload of one fine-selection outcome."""
    return {
        "method": result.method,
        "target_name": result.target_name,
        "selected_model": result.selected_model,
        "selected_accuracy": result.selected_accuracy,
        "selected_val_accuracy": result.selected_val_accuracy,
        "runtime_epochs": result.runtime_epochs,
        "num_candidates": result.num_candidates,
        "stages": [encode_stage(record) for record in result.stages],
        "final_accuracies": dict(result.final_accuracies),
        "extra_epoch_cost": result.extra_epoch_cost,
        # Written only when present so exact-mode journal payloads stay
        # byte-identical to those of releases that predate ``extras``.
        **({"extras": dict(result.extras)} if result.extras else {}),
    }


def decode_selection(payload: Dict[str, object]) -> SelectionResult:
    """Rebuild a :class:`SelectionResult` from its journal payload."""
    return SelectionResult(
        method=payload["method"],
        target_name=payload["target_name"],
        selected_model=payload["selected_model"],
        selected_accuracy=payload["selected_accuracy"],
        selected_val_accuracy=payload["selected_val_accuracy"],
        runtime_epochs=payload["runtime_epochs"],
        num_candidates=payload["num_candidates"],
        stages=[decode_stage(stage) for stage in payload["stages"]],
        final_accuracies=dict(payload["final_accuracies"]),
        extra_epoch_cost=payload["extra_epoch_cost"],
        extras=dict(payload.get("extras", {})),  # absent in older journals
    )


def encode_result(result: TwoPhaseResult, *, schedule: List[int]) -> Dict[str, object]:
    """JSON payload of one finished request (with the schedule it ran under).

    ``schedule`` lets recovery tell a result that satisfies the current
    budget apart from one computed under a smaller, since-raised budget.
    """
    return {
        "target_name": result.target_name,
        "schedule": [int(epochs) for epochs in schedule],
        "recall": encode_recall(result.recall),
        "selection": encode_selection(result.selection),
    }


def decode_result(payload: Dict[str, object]) -> TwoPhaseResult:
    """Rebuild a :class:`TwoPhaseResult` from its journal payload."""
    return TwoPhaseResult(
        target_name=payload["target_name"],
        recall=decode_recall(payload["recall"]),
        selection=decode_selection(payload["selection"]),
    )
