"""Append-only, checksummed journal of one selection plan's progress.

A :class:`PlanJournal` is a JSON-lines file in which every line is one
self-validating record::

    {"seq": 3, "type": "step", "payload": {...}, "check": "<sha-16>"}

``check`` is the content fingerprint of ``(seq, type, payload)``, so a
reader can detect any torn, truncated or garbled record without trusting
file length or flush ordering.  Records are only ever appended; recovery
reads the longest valid prefix and silently drops the tail beyond the
first invalid record — exactly the contract a crashed writer needs (a
process killed mid-append leaves at most one partial final line, which the
checksum rejects).

The journal is the durable half of the crash-safety story: session
snapshots (see :class:`~repro.persist.store.PlanStore`) make the training
state restorable, and the journal records which steps a request has
*already been charged for*, so a restart replays them instead of paying
their epochs again.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.cache.keys import fingerprint_text
from repro.persist.hooks import fire_crash_point

#: Record types written by the scheduler's persistence path.  ``prune``
#: records document speculative early-stop decisions (audit trail only —
#: replay re-derives the prune set deterministically from the ``step``
#: records, so an old journal without them still resumes correctly).
RECORD_TYPES = ("request", "recall", "step", "stage", "result", "prune")


def _checksum(seq: int, record_type: str, payload: Dict[str, object]) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return fingerprint_text(str(seq), record_type, canonical)


def encode_record(seq: int, record_type: str, payload: Dict[str, object]) -> str:
    """One journal line (no trailing newline) for ``(seq, type, payload)``."""
    return json.dumps(
        {
            "seq": seq,
            "type": record_type,
            "payload": payload,
            "check": _checksum(seq, record_type, payload),
        },
        sort_keys=True,
        separators=(",", ":"),
    )


def decode_record(line: str, expected_seq: int) -> Optional[Dict[str, object]]:
    """Parse and validate one journal line; ``None`` when invalid.

    A record is valid only when it parses as JSON, carries the expected
    sequence number (append-only files cannot skip or repeat) and its
    checksum matches the recomputed fingerprint of its contents.
    """
    try:
        record = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(record, dict):
        return None
    seq, record_type, payload = (
        record.get("seq"),
        record.get("type"),
        record.get("payload"),
    )
    if seq != expected_seq or not isinstance(record_type, str):
        return None
    if not isinstance(payload, dict):
        return None
    if record.get("check") != _checksum(seq, record_type, payload):
        return None
    return record


class PlanJournal:
    """Append-only journal file of one selection request.

    Parameters
    ----------
    path:
        Journal file (created on the first append).
    fsync:
        When true every append is forced to stable storage with
        :func:`os.fsync` — survives power loss, not just process death.
        The default (false) flushes to the OS, which is sufficient for
        the crash model the fault harness tests (``SIGKILL``).
    """

    def __init__(self, path: Union[str, Path], *, fsync: bool = False) -> None:
        self.path = Path(path)
        self.fsync = bool(fsync)
        self._records, self._dropped = self._read_valid_prefix()
        if self._dropped:
            # Compact the file down to its valid prefix: future appends
            # must land *after* the last valid record, not beyond a
            # garbage line the next recovery would refuse to read past.
            try:
                self._rewrite_prefix()
            except OSError:
                # Read-only store: reads still serve the valid prefix;
                # only a journal that is appended to must be compacted.
                pass

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def _read_valid_prefix(self) -> Tuple[List[Dict[str, object]], int]:
        if not self.path.exists():
            return [], 0
        records: List[Dict[str, object]] = []
        dropped = 0
        with open(self.path, "r", encoding="utf-8", errors="replace") as handle:
            lines = handle.read().splitlines()
        for line in lines:
            if not line.strip():
                continue
            record = decode_record(line, expected_seq=len(records))
            if record is None:
                # First invalid record: everything after it is untrusted.
                dropped = len(lines) - len(records)
                break
            records.append(record)
        return records, dropped

    def _rewrite_prefix(self) -> None:
        """Atomically rewrite the file as exactly the valid prefix.

        Crash-safe itself: the prefix is written to a writer-unique temp
        file and moved into place with ``os.replace``, so dying mid-rewrite
        leaves either the old file (tail still dropped on the next read)
        or the compacted one — never a shorter-than-prefix journal.
        """
        tmp = self.path.with_name(
            f"{self.path.name}.tmp-{os.getpid()}-{threading.get_ident()}"
        )
        with open(tmp, "w", encoding="utf-8") as handle:
            for record in self._records:
                handle.write(
                    encode_record(record["seq"], record["type"], record["payload"])
                    + "\n"
                )
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, self.path)

    @property
    def records(self) -> List[Dict[str, object]]:
        """Validated records, in append order (the journal's valid prefix)."""
        return list(self._records)

    @property
    def dropped_records(self) -> int:
        """Lines beyond the valid prefix that recovery discarded."""
        return self._dropped

    def __len__(self) -> int:
        return len(self._records)

    def of_type(self, record_type: str) -> List[Dict[str, object]]:
        """Validated records of one type, in append order."""
        return [r for r in self._records if r["type"] == record_type]

    def last_of_type(self, record_type: str) -> Optional[Dict[str, object]]:
        """Most recent validated record of one type (or ``None``)."""
        for record in reversed(self._records):
            if record["type"] == record_type:
                return record
        return None

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #
    def append(self, record_type: str, payload: Dict[str, object]) -> Dict[str, object]:
        """Durably append one record; returns the record as stored.

        The write is a single ``write()`` of one full line to a file opened
        in append mode, so concurrent appends from one process never
        interleave partially, and a crash mid-write leaves only a torn
        final line that the checksum drops on recovery.
        """
        if record_type not in RECORD_TYPES:
            raise ValueError(f"unknown journal record type {record_type!r}")
        seq = len(self._records)
        line = encode_record(seq, record_type, payload)
        fire_crash_point(
            "journal.append", path=str(self.path), type=record_type, seq=seq
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            fire_crash_point(
                "journal.flush", path=str(self.path), type=record_type, seq=seq
            )
            if self.fsync:
                os.fsync(handle.fileno())
        record = {"seq": seq, "type": record_type, "payload": payload}
        self._records.append(record)
        return record
