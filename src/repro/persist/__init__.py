"""Crash-safe persistence of selection plans and fine-tuning sessions.

The online phase charges real fine-tuning epochs per request, so a crashed
server that restarts from scratch re-pays every epoch already spent.  This
package makes selection requests durable instead:

* :class:`~repro.persist.journal.PlanJournal` — an append-only,
  checksummed JSON-lines journal recording one request's admission,
  recall outcome, every charged training step, every stage transition and
  the final result.  Recovery reads the longest valid prefix; torn tails
  from a crash are detected by per-record checksums and dropped.
* :class:`~repro.persist.store.PlanStore` — the on-disk store pairing
  journals with atomically-published session snapshots (pickled
  :class:`~repro.zoo.finetune.FineTuneSession` objects keyed by
  :func:`repro.cache.session_key`), plus the startup sweep for orphaned
  temp files and the refresh-time ``evict_version`` sweep.
* :mod:`~repro.persist.recovery` — the startup scan classifying journaled
  requests as completed or pending, so a restarted scheduler resubmits
  exactly the in-flight work.
* :mod:`~repro.persist.hooks` — named crash points
  (``plan.step``/``journal.append``/``publish`` …) the fault-injection
  harness uses to kill the process at every durability boundary.

Together these give the three crash-safety properties the fault harness
proves (see ``docs/persistence.md``): a killed server resumes in-flight
requests bitwise-identically without retraining journaled epochs, clients
can ask for the current best candidate at any time, and a finished request
whose budget is later raised continues from its old rungs.
"""

from repro.persist.codec import (
    decode_recall,
    decode_result,
    decode_selection,
    decode_stage,
    encode_recall,
    encode_result,
    encode_selection,
    encode_stage,
)
from repro.persist.hooks import (
    SimulatedCrash,
    arm_exit_from_env,
    clear_hooks,
    fire_crash_point,
    install_hook,
    remove_hook,
)
from repro.persist.journal import PlanJournal
from repro.persist.recovery import (
    RecoveredRequest,
    pending_requests,
    scan_store,
    store_summary,
)
from repro.persist.store import PlanStore, sweep_stale_temp_files

__all__ = [
    "PlanJournal",
    "PlanStore",
    "RecoveredRequest",
    "SimulatedCrash",
    "arm_exit_from_env",
    "clear_hooks",
    "decode_recall",
    "decode_result",
    "decode_selection",
    "decode_stage",
    "encode_recall",
    "encode_result",
    "encode_selection",
    "encode_stage",
    "fire_crash_point",
    "install_hook",
    "pending_requests",
    "remove_hook",
    "scan_store",
    "store_summary",
    "sweep_stale_temp_files",
]
