"""Startup recovery scan over a :class:`~repro.persist.store.PlanStore`.

On restart a server does not know which requests were in flight when the
previous process died; the journals do.  :func:`scan_store` reads every
journal's valid prefix and classifies each request as *completed* (its
latest submission has a journaled ``result`` under the same stage
schedule) or *pending* (anything else — including a journal whose tail was
torn by the crash).  Pending requests are what
:meth:`repro.sched.scheduler.EpochScheduler.recover` resubmits; the
journal replay inside the scheduler then restores their charged steps
without retraining.

The scan is deliberately forgiving: an empty journal, a journal with no
``request`` record yet, or one of a different zoo version is skipped
rather than fatal — recovery must never be the thing that crashes a
restart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.persist.journal import PlanJournal
from repro.persist.store import PlanStore


@dataclass
class RecoveredRequest:
    """One journaled request found by the startup scan.

    ``completed`` reflects the *latest* submission recorded in the
    journal: a request whose budget was raised after a first completion is
    completed only if the raised-budget run also journaled its result.
    """

    plan_key: str
    target: str
    version_key: str
    method: str
    schedule: List[int]
    top_k: Optional[int] = None
    completed: bool = False
    steps_journaled: int = 0
    dropped_records: int = 0
    journal_file: str = ""
    result_schedules: List[List[int]] = field(default_factory=list)
    #: Speculative early-stopping knobs the request ran under (``None``
    #: for exact mode) — resubmitting under the same mode is what makes
    #: the resumed run reopen the same journal.
    extrapolation: Optional[Dict[str, object]] = None


def _scan_journal(journal: PlanJournal) -> Optional[RecoveredRequest]:
    requests = journal.of_type("request")
    if not requests:
        return None  # empty or headerless journal: nothing to resume
    latest = requests[-1]["payload"]
    result_schedules = [
        list(record["payload"].get("schedule", []))
        for record in journal.of_type("result")
    ]
    schedule = list(latest.get("schedule", []))
    return RecoveredRequest(
        plan_key=latest.get("plan_key", ""),
        target=latest.get("target", ""),
        version_key=latest.get("version_key", ""),
        method=latest.get("method", ""),
        schedule=schedule,
        top_k=latest.get("top_k"),
        completed=schedule in result_schedules,
        steps_journaled=len(journal.of_type("step")),
        dropped_records=journal.dropped_records,
        journal_file=str(journal.path),
        result_schedules=result_schedules,
        extrapolation=(
            dict(latest["extrapolation"])
            if isinstance(latest.get("extrapolation"), dict)
            else None
        ),
    )


def scan_store(
    store: PlanStore, *, version_key: Optional[str] = None
) -> List[RecoveredRequest]:
    """Classify every journal in ``store``; optionally filter by zoo version.

    Returns one :class:`RecoveredRequest` per resumable journal, in
    deterministic (sorted path) order.  Journals that cannot be attributed
    to a request — empty files, corrupt-from-the-first-record files — are
    skipped; torn tails within an otherwise valid journal only reduce
    ``steps_journaled`` (the valid prefix is still resumed).
    """
    recovered: List[RecoveredRequest] = []
    for path in store.journal_paths():
        entry = _scan_journal(PlanJournal(path, fsync=store.fsync))
        if entry is None:
            continue
        if version_key is not None and entry.version_key != version_key:
            continue
        recovered.append(entry)
    return recovered


def pending_requests(
    store: PlanStore, *, version_key: Optional[str] = None
) -> List[RecoveredRequest]:
    """The subset of :func:`scan_store` still awaiting a result."""
    return [
        entry
        for entry in scan_store(store, version_key=version_key)
        if not entry.completed
    ]


def store_summary(
    store: PlanStore, *, version_key: Optional[str] = None
) -> Dict[str, int]:
    """Journal census of ``store``: total, pending and completed counts.

    This is the startup banner's one-line answer to "what would recovery
    do here?" — a supervisor (or operator) can read the pending count
    before deciding to resume, without paying for the resubmissions.
    """
    entries = scan_store(store, version_key=version_key)
    pending = sum(1 for entry in entries if not entry.completed)
    return {
        "journals": len(entries),
        "pending": pending,
        "completed": len(entries) - pending,
    }
