"""Wire helpers for the routed serving tier's JSON-lines protocol.

The router, its workers and the test harness all speak the serve
protocol of :mod:`repro.serving` — one JSON object per line over TCP.
This module owns the two primitives everything else builds on:

* :func:`connect_with_retry` — open a TCP connection by *polling* for
  port readiness instead of sleeping a fixed interval, so callers block
  exactly as long as the server needs to come up (and fail fast with the
  last socket error once the deadline passes).
* :class:`JsonLinesConnection` — a thread-compatible send/recv pair over
  one such connection (sends are locked so concurrent writers never
  interleave partial lines; receives are left to a single reader thread,
  which is how the router's per-worker relay uses it).
"""

from __future__ import annotations

import json
import socket
import threading
import time
from typing import Dict, Optional

#: Default seconds between readiness probes while a port is refusing.
_RETRY_INTERVAL = 0.05


def connect_with_retry(
    host: str,
    port: int,
    *,
    timeout: float = 30.0,
    interval: float = _RETRY_INTERVAL,
) -> socket.socket:
    """Connect to ``(host, port)``, polling until the listener is ready.

    Retries ``ConnectionRefusedError``/``OSError`` until ``timeout``
    seconds have passed, then re-raises the last error.  The returned
    socket has ``timeout`` set as its per-operation timeout.
    """
    deadline = time.monotonic() + timeout
    last_error: Optional[OSError] = None
    while time.monotonic() < deadline:
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
            sock.settimeout(timeout)
            return sock
        except OSError as error:
            last_error = error
            time.sleep(interval)
    raise last_error if last_error is not None else OSError(
        f"no connection to {host}:{port} within {timeout}s"
    )


class JsonLinesConnection:
    """One line-delimited JSON peer: locked sends, blocking receives."""

    def __init__(self, host: str, port: int, *, timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self._sock = connect_with_retry(host, port, timeout=timeout)
        self._reader = self._sock.makefile("r", encoding="utf-8")
        self._send_lock = threading.Lock()
        self._closed = False

    def send(self, payload: Dict[str, object]) -> None:
        """Write one protocol line (thread-safe; raises OSError when dead)."""
        data = (json.dumps(payload) + "\n").encode("utf-8")
        with self._send_lock:
            self._sock.sendall(data)

    def recv(self) -> Optional[Dict[str, object]]:
        """Blocking read of the next line; ``None`` on EOF / closed socket.

        Malformed lines (a peer dying mid-write) also terminate the
        stream with ``None`` — the caller's EOF handling covers both.
        """
        try:
            line = self._reader.readline()
        except (OSError, ValueError):
            return None
        if not line:
            return None
        try:
            message = json.loads(line)
        except json.JSONDecodeError:
            return None
        return message if isinstance(message, dict) else None

    def close(self) -> None:
        self._closed = True
        for closer in (self._reader.close, self._sock.close):
            try:
                closer()
            except OSError:
                pass

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "JsonLinesConnection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def ping(host: str, port: int, *, timeout: float = 5.0) -> Dict[str, object]:
    """One-shot liveness probe: ``{"op": "ping"}`` -> the ``pong`` payload.

    Raises ``OSError``/``TimeoutError`` when the peer is unreachable or
    silent — the supervisor treats any raise as a failed heartbeat.
    """
    with JsonLinesConnection(host, port, timeout=timeout) as conn:
        conn.send({"op": "ping"})
        reply = conn.recv()
    if reply is None or reply.get("event") != "pong":
        raise OSError(f"no pong from {host}:{port} (got {reply!r})")
    return reply
