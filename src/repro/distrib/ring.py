"""Consistent-hash ring: deterministic key -> worker placement.

The routed serving tier shards requests over N worker processes by
*session key prefix* — ``(zoo_version, target)`` — so every fine-tuning
session a request can touch lands on the same worker and PR 5's warm
:class:`~repro.sched.pool.SessionPool` reuse survives sharding.  Three
properties matter, and all three are tested by
``tests/property/test_property_ring.py``:

* **Determinism across processes** — placement is a pure function of the
  key and the node set, hashed with SHA-256 (never Python's ``hash()``,
  which is salted per process via ``PYTHONHASHSEED``).  The router can be
  restarted, or re-derived inside a test, and every key maps to the same
  worker.
* **Minimal movement** — adding or removing one of N nodes remaps only
  the keys owned by that node (~K/N of them); every other key keeps its
  worker, so a scale-out event invalidates the fewest warm sessions.
* **Co-location** — equal keys always map to the same node, which is the
  invariant that lets concurrent requests for the same target share
  partially-trained sessions.

Each node is placed at ``replicas`` pseudo-random points on a 64-bit
ring; a key is owned by the first node point at or after its hash
(wrapping at the top).  More replicas smooth the load split at the cost
of a larger (still tiny) sorted table.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.cache.keys import fingerprint_text
from repro.utils.exceptions import ConfigurationError

#: Field separator inside hashed payloads (cannot appear in names).
_SEP = "\x1f"


def _point(payload: str) -> int:
    """64-bit ring position of ``payload`` (process-independent)."""
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def route_key(version_key: str, target: str) -> str:
    """Routing key of one selection request: the session-key prefix.

    Every session key of a request shares ``(zoo_version, task)`` and
    differs only in the model fingerprint — and *all* of a request's
    candidate sessions must land on one worker anyway — so the model
    component is deliberately excluded.  Hashing the pair (rather than
    concatenating) keeps ``("v1", "ab")`` and ``("v1a", "b")`` distinct.
    """
    return fingerprint_text("route", version_key, target)


class HashRing:
    """Consistent-hash ring over a set of named nodes.

    >>> ring = HashRing(["w0", "w1", "w2"])
    >>> ring.lookup("some-key") in ("w0", "w1", "w2")
    True
    >>> ring.lookup("some-key") == ring.lookup("some-key")
    True
    """

    def __init__(self, nodes: Iterable[str] = (), *, replicas: int = 64) -> None:
        if replicas < 1:
            raise ConfigurationError("replicas must be >= 1")
        self.replicas = int(replicas)
        self._points: List[Tuple[int, str]] = []
        self._nodes: Dict[str, List[int]] = {}
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------------ #
    @property
    def nodes(self) -> List[str]:
        """Current node names, sorted for deterministic iteration."""
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    # ------------------------------------------------------------------ #
    def add(self, node: str) -> None:
        """Place ``node`` on the ring (idempotent for present nodes)."""
        if not node:
            raise ConfigurationError("node name must be a non-empty string")
        if node in self._nodes:
            return
        points = []
        for replica in range(self.replicas):
            point = _point(f"{node}{_SEP}{replica}")
            points.append(point)
            bisect.insort(self._points, (point, node))
        self._nodes[node] = points

    def remove(self, node: str) -> None:
        """Remove ``node``; its keys redistribute to their successors."""
        points = self._nodes.pop(node, None)
        if points is None:
            return
        self._points = [entry for entry in self._points if entry[1] != node]

    # ------------------------------------------------------------------ #
    def lookup(self, key: str) -> str:
        """Owning node of ``key``: first node point at or after its hash."""
        if not self._points:
            raise ConfigurationError("lookup on an empty ring")
        point = _point(key)
        index = bisect.bisect_left(self._points, (point, ""))
        if index == len(self._points):
            index = 0  # wrap past the top of the ring
        return self._points[index][1]

    def assignments(self, keys: Sequence[str]) -> Dict[str, str]:
        """Key -> node for every key (one bulk lookup, used by tests)."""
        return {key: self.lookup(key) for key in keys}
