"""Consistent-hash router: one serve endpoint over N worker processes.

:class:`RouterFrontEnd` speaks the exact JSON-lines serve protocol of
:class:`repro.serving.ServeFrontEnd` — same ops, same event shapes, same
structured error objects — so clients cannot tell ``--workers 8`` from a
single process.  Behind the protocol it:

* **routes** every ``select`` by consistent-hashing the request's
  session-key prefix (:func:`repro.distrib.ring.route_key`) onto one
  worker, so equal targets co-locate and PR 5's warm-session reuse
  survives sharding;
* **relays** the owning worker's asynchronous event stream back to the
  submitting client, rewriting only the correlation ids (each client
  keeps its own id namespace, exactly as with a single process);
* **admits** requests through a multi-tenant admission controller
  (global in-flight bound, per-tenant fair share, token-bucket rate
  limit, cumulative epoch quota) that fails fast with the structured
  ``queue_full``/``rate_limited``/``budget_exhausted`` errors clients
  already handle — graceful brownout, never latency collapse;
* **heals** worker death: when a relay hits EOF, the supervisor restarts
  the worker (same name, same journal slice) and the router resubmits
  the dead worker's in-flight requests verbatim; journal replay inside
  the replacement restores every charged step, so the client sees its
  original request complete under its original id;
* **refreshes** the zoo with zero downtime: a ``refresh`` op is applied
  worker by worker (requests in flight drain on their admitted version)
  and new admissions route under the new version key once the fleet
  converges.

Topology, tuning and failure semantics are documented in
``docs/distributed.md``.
"""

from __future__ import annotations

import json
import socketserver
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, TextIO, Tuple

from repro.distrib.ring import HashRing, route_key
from repro.distrib.supervisor import WorkerSupervisor
from repro.distrib.wire import JsonLinesConnection
from repro.serving import SocketLineWriter, error_payload
from repro.utils.exceptions import (
    BudgetExhaustedError,
    QueueFullError,
    RateLimitError,
    ReproError,
    WorkerLostError,
)

#: Seconds between sweeps while draining a session's in-flight requests.
_DRAIN_POLL = 0.05

#: Seconds a drain waits per outstanding request before abandoning it
#: (mirrors the single-process emitter's per-handle drain timeout).
_DRAIN_TIMEOUT = 60.0


# --------------------------------------------------------------------------- #
# multi-tenant admission
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class TenantPolicy:
    """Admission policy of the routed tier.

    ``max_inflight`` bounds requests in flight through the router across
    all tenants; each tenant's own share is ``max_inflight`` divided by
    the number of currently-active tenants (never below one), computed
    dynamically so a sole tenant may use the whole allowance while
    contending tenants are squeezed toward fairness.  ``tenant_rate`` is
    a token-bucket admission rate (requests/second, burst
    ``tenant_burst``); ``tenant_quota`` caps a tenant's *cumulative*
    charged fine-tuning epochs.  ``None`` disables a knob.
    """

    max_inflight: int = 32
    tenant_rate: Optional[float] = None
    tenant_burst: int = 4
    tenant_quota: Optional[float] = None


class _TenantState:
    __slots__ = ("inflight", "charged", "tokens", "refilled_at")

    def __init__(self, burst: int) -> None:
        self.inflight = 0
        self.charged = 0.0
        self.tokens = float(burst)
        self.refilled_at = time.monotonic()


class AdmissionController:
    """Fail-fast multi-tenant admission: admit or raise, never queue.

    Rejections are instant and structured — under overload the router
    browns out (every excess request gets a ``queue_full`` /
    ``rate_limited`` / ``budget_exhausted`` error in microseconds) while
    admitted requests keep their ordinary latency.
    """

    def __init__(self, policy: TenantPolicy) -> None:
        self.policy = policy
        self._lock = threading.Lock()
        self._tenants: Dict[str, _TenantState] = {}
        self._admitted = 0
        self._rejected: Dict[str, int] = {}

    def _state(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            state = self._tenants[tenant] = _TenantState(self.policy.tenant_burst)
        return state

    def _reject(self, code: str, error: ReproError) -> ReproError:
        self._rejected[code] = self._rejected.get(code, 0) + 1
        return error

    def admit(self, tenant: str) -> None:
        """Admit one request for ``tenant`` or raise a structured error."""
        policy = self.policy
        with self._lock:
            state = self._state(tenant)
            total = sum(entry.inflight for entry in self._tenants.values())
            if total >= policy.max_inflight:
                raise self._reject("queue_full", QueueFullError(
                    f"router at max_inflight={policy.max_inflight}; retry later"
                ))
            active = sum(
                1 for entry in self._tenants.values() if entry.inflight > 0
            )
            if state.inflight == 0:
                active += 1  # this admission would activate the tenant
            share = max(1, policy.max_inflight // active)
            if state.inflight >= share:
                raise self._reject("queue_full", QueueFullError(
                    f"tenant {tenant!r} at fair share {share} "
                    f"of {policy.max_inflight} in-flight slots"
                ))
            if policy.tenant_quota is not None and (
                state.charged >= policy.tenant_quota
            ):
                raise self._reject("budget_exhausted", BudgetExhaustedError(
                    f"tenant {tenant!r} exhausted its epoch quota "
                    f"({state.charged:.1f}/{policy.tenant_quota:.1f})"
                ))
            if policy.tenant_rate is not None:
                now = time.monotonic()
                state.tokens = min(
                    float(policy.tenant_burst),
                    state.tokens + (now - state.refilled_at) * policy.tenant_rate,
                )
                state.refilled_at = now
                if state.tokens < 1.0:
                    raise self._reject("rate_limited", RateLimitError(
                        f"tenant {tenant!r} above {policy.tenant_rate:g} "
                        "requests/second; retry later"
                    ))
                state.tokens -= 1.0
            state.inflight += 1
            self._admitted += 1

    def release(self, tenant: str, *, epochs: float = 0.0) -> None:
        """Return an in-flight slot; charge ``epochs`` against the quota."""
        with self._lock:
            state = self._state(tenant)
            state.inflight = max(0, state.inflight - 1)
            state.charged += float(epochs)

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "max_inflight": self.policy.max_inflight,
                "admitted": self._admitted,
                "rejected": dict(self._rejected),
                "inflight": sum(s.inflight for s in self._tenants.values()),
                "tenants": {
                    name: {"inflight": s.inflight, "charged": s.charged}
                    for name, s in sorted(self._tenants.items())
                },
            }


# --------------------------------------------------------------------------- #
# routing state
# --------------------------------------------------------------------------- #
class _Route:
    """One client request in flight on one worker."""

    __slots__ = (
        "worker", "wire_id", "client_id", "session", "message", "tenant",
        "target", "accepted", "suppress_accepted", "buffer",
    )

    def __init__(self, worker, wire_id, client_id, session, message,
                 tenant, target) -> None:
        self.worker = worker
        self.wire_id = wire_id
        self.client_id = client_id
        self.session = session
        self.message = message      # forwarded select, for resubmission
        self.tenant = tenant
        self.target = target
        self.accepted = False
        self.suppress_accepted = False
        self.buffer: List[Dict[str, object]] = []  # parked events


class _WorkerLink:
    """One persistent connection to a worker plus its relay thread."""

    def __init__(self, name: str, generation: int,
                 conn: JsonLinesConnection) -> None:
        self.name = name
        self.generation = generation
        self.conn = conn
        self.dead = False
        self.thread: Optional[threading.Thread] = None

    def send(self, payload: Dict[str, object]) -> None:
        self.conn.send(payload)


class _Collector:
    """Merge one broadcast op's per-worker replies; fire once complete."""

    def __init__(self, workers: List[str], callback) -> None:
        self._expected = set(workers)
        self._replies: Dict[str, Optional[Dict[str, object]]] = {}
        self._lock = threading.Lock()
        self._callback = callback
        self._done = False

    def add(self, worker: str, payload: Optional[Dict[str, object]]) -> None:
        with self._lock:
            if self._done or worker not in self._expected:
                return
            self._replies[worker] = payload
            if set(self._replies) != self._expected:
                return
            self._done = True
            replies = dict(self._replies)
        self._callback(replies)

    def fail(self, worker: str) -> None:
        self.add(worker, None)


class _RouterSession:
    """One connected client stream: its writer and id namespace."""

    def __init__(self, index: int, out) -> None:
        self.index = index
        self._out = out
        self._write_lock = threading.Lock()
        #: client id -> (worker, wire id) of live requests (pruned on
        #: terminal events, mirroring the single-process emitter).
        self.by_client: Dict[object, Tuple[str, str]] = {}
        #: (worker, wire id) -> client id, retained until the session
        #: closes so late worker replies can still be rewritten.
        self.wire_to_client: Dict[Tuple[str, str], object] = {}
        self.shutdown_requested = False
        self.closed = False

    def emit(self, payload: Dict[str, object]) -> None:
        try:
            with self._write_lock:
                self._out.write(json.dumps(payload) + "\n")
                self._out.flush()
        except (OSError, ValueError):
            self.closed = True  # client gone; later events are dropped


# --------------------------------------------------------------------------- #
# the router front end
# --------------------------------------------------------------------------- #
class RouterFrontEnd:
    """Protocol-transparent consistent-hash router over a worker fleet."""

    def __init__(
        self,
        supervisor: WorkerSupervisor,
        *,
        policy: Optional[TenantPolicy] = None,
        replicas: int = 64,
        resubmit_timeout: float = 120.0,
    ) -> None:
        self._supervisor = supervisor
        self._admission = AdmissionController(policy or TenantPolicy())
        self._ring = HashRing(supervisor.names, replicas=replicas)
        self._resubmit_timeout = float(resubmit_timeout)
        self._lock = threading.RLock()
        self._links: Dict[str, _WorkerLink] = {}
        self._link_locks: Dict[str, threading.Lock] = {}
        self._routes: Dict[Tuple[str, str], _Route] = {}
        self._parked: List[_Route] = []
        self._collectors: Dict[Tuple[str, str], _Collector] = {}
        self._sessions: Dict[int, _RouterSession] = {}
        self._session_seq = 0
        self._wire_seq = 0
        self._refresh_lock = threading.Lock()
        self._stopped = False

        handles = supervisor.workers()
        versions = {
            str(handle.banner.get("zoo_version")) for handle in handles
        }
        if len(versions) != 1:
            raise ReproError(
                f"workers disagree on zoo version at startup: {sorted(versions)}"
            )
        self._version_key = versions.pop()
        self.recovered_count = sum(
            int(handle.banner.get("recovered", 0)) for handle in handles
        )
        self.num_models = int(handles[0].banner.get("num_models", 0))
        # Eager links: a worker's startup-recovered requests are adopted
        # by its first connection — which must be the router's relay, so
        # their event streams park here until the first client attaches.
        for name in supervisor.names:
            self._link(name)

    # ------------------------------------------------------------------ #
    # link + relay management
    # ------------------------------------------------------------------ #
    def _link(self, name: str) -> _WorkerLink:
        with self._lock:
            link = self._links.get(name)
            if link is not None and not link.dead:
                return link
            creating = self._link_locks.setdefault(name, threading.Lock())
        with creating:
            with self._lock:
                link = self._links.get(name)
                if link is not None and not link.dead:
                    return link
            handle = self._supervisor.ensure_alive(
                name, timeout=self._resubmit_timeout
            )
            if handle is None:
                raise WorkerLostError(f"worker {name!r} is not available")
            conn = JsonLinesConnection("127.0.0.1", handle.port, timeout=30.0)
            link = _WorkerLink(name, handle.generation, conn)
            with self._lock:
                self._links[name] = link
            link.thread = threading.Thread(
                target=self._relay, args=(link,),
                name=f"repro-relay-{name}", daemon=True,
            )
            link.thread.start()
            return link

    def _relay(self, link: _WorkerLink) -> None:
        while True:
            payload = link.conn.recv()
            if payload is None:
                break
            try:
                self._dispatch(link, payload)
            except Exception:  # noqa: BLE001 — a relay must never die
                pass
        link.dead = True
        self._on_link_down(link)

    def _dispatch(self, link: _WorkerLink, payload: Dict[str, object]) -> None:
        wire_id = payload.get("id")
        key = (link.name, wire_id)
        with self._lock:
            collector = self._collectors.get(key)
        if collector is not None:
            collector.add(link.name, payload)
            return
        with self._lock:
            route = self._routes.get(key)
        if route is None and isinstance(wire_id, str) and (
            wire_id.startswith("recovered-")
        ):
            # A worker's own startup recovery streaming unprompted: adopt.
            route = self._register_recovered(link.name, wire_id, None)
        if route is not None:
            self._route_event(route, payload)
            return
        self._fallback_deliver(link.name, wire_id, payload)

    def _fallback_deliver(self, worker, wire_id, payload) -> None:
        """Deliver a reply whose route already closed (e.g. a poll racing
        its request's completion) straight to the owning session."""
        if not isinstance(wire_id, str) or not wire_id.startswith("c"):
            return
        index_text = wire_id[1:].split("-", 1)[0]
        if not index_text.isdigit():
            return
        with self._lock:
            session = self._sessions.get(int(index_text))
            if session is None:
                return
            client_id = session.wire_to_client.get((worker, wire_id))
        if client_id is None:
            return
        payload = dict(payload)
        payload["id"] = client_id
        if payload.get("event") == "error" and "unknown request id" in str(
            payload.get("message", "")
        ):
            payload["message"] = f"unknown request id {client_id!r}"
        session.emit(payload)

    def _route_event(self, route: _Route, payload: Dict[str, object]) -> None:
        event = payload.get("event")
        if event == "accepted":
            if route.suppress_accepted:
                # Resubmission echo after a worker restart — the client
                # already saw this request accepted once.
                route.suppress_accepted = False
                return
            route.accepted = True
        payload = dict(payload)
        payload["id"] = route.client_id
        if event in ("result", "failed"):
            with self._lock:
                self._routes.pop((route.worker, route.wire_id), None)
                if route.session is not None:
                    route.session.by_client.pop(route.client_id, None)
            if route.tenant is not None:
                epochs = payload.get("runtime_epochs") or 0.0
                try:
                    epochs = float(epochs)
                except (TypeError, ValueError):
                    epochs = 0.0
                self._admission.release(route.tenant, epochs=epochs)
        self._deliver(route, payload)

    def _deliver(self, route: _Route, payload: Dict[str, object]) -> None:
        with self._lock:
            session = route.session
            if session is None:
                route.buffer.append(payload)
                return
        session.emit(payload)

    def _on_link_down(self, link: _WorkerLink) -> None:
        """A worker connection hit EOF: heal it.

        Fail in-flight broadcast ops, wait for the supervisor to produce
        the replacement worker, reconnect, and resubmit every routed
        request verbatim — the replacement replays their journals, so the
        resubmissions charge nothing already paid for and complete under
        their original client ids.
        """
        with self._lock:
            if self._stopped:
                return
            if self._links.get(link.name) is link:
                self._links.pop(link.name, None)
            affected = [
                route for (worker, _), route in list(self._routes.items())
                if worker == link.name
            ]
            collectors = [
                collector for (worker, _), collector in self._collectors.items()
                if worker == link.name
            ]
        for collector in collectors:
            collector.fail(link.name)
        if not affected:
            return
        replacement = self._supervisor.await_replacement(
            link.name, link.generation, timeout=self._resubmit_timeout
        )
        lost = WorkerLostError(
            f"worker {link.name!r} died and no replacement came up"
        )
        if replacement is None:
            for route in affected:
                self._fail_route(route, lost)
            return
        try:
            new_link = self._link(link.name)
        except ReproError:
            for route in affected:
                self._fail_route(route, lost)
            return
        for route in affected:
            if route.message is None:
                # A recovered adoptee has no original message to replay;
                # losing its worker twice is terminal.
                self._fail_route(route, WorkerLostError(
                    f"worker {link.name!r} died again while recovering "
                    f"request {route.client_id!r}"
                ))
                continue
            route.suppress_accepted = route.accepted
            try:
                new_link.send(route.message)
            except OSError:
                self._fail_route(route, lost)

    def _fail_route(self, route: _Route, error: ReproError) -> None:
        with self._lock:
            existing = self._routes.pop((route.worker, route.wire_id), None)
            if existing is not route:
                return  # already terminal
            if route.session is not None:
                route.session.by_client.pop(route.client_id, None)
        if route.tenant is not None:
            self._admission.release(route.tenant)
        payload: Dict[str, object] = {
            "event": "failed", "id": route.client_id, **error_payload(error)
        }
        if route.target is not None:
            payload["target"] = route.target
        self._deliver(route, payload)

    # ------------------------------------------------------------------ #
    # recovered-request adoption
    # ------------------------------------------------------------------ #
    def _register_recovered(
        self, worker: str, worker_rid: str, session: Optional[_RouterSession]
    ) -> _Route:
        """Route table entry for a worker-recovered request.

        Worker-local recovered ids (``recovered-<n>``) are rewritten to
        ``recovered-<worker>-<n>`` so ids stay unique across the fleet
        (clients only rely on the ``recovered-`` prefix).  Without a
        session the route parks and buffers its events until the first
        client attaches.
        """
        suffix = worker_rid[len("recovered-"):]
        client_id = f"recovered-{worker}-{suffix}"
        with self._lock:
            key = (worker, worker_rid)
            route = self._routes.get(key)
            if route is None:
                if session is None:
                    session = self._earliest_session()
                route = _Route(worker, worker_rid, client_id, session,
                               None, None, None)
                self._routes[key] = route
                if session is None:
                    self._parked.append(route)
            elif session is not None and route.session is None:
                self._attach_route(route, session)
            if route.session is not None:
                route.session.by_client[route.client_id] = key
                route.session.wire_to_client[key] = route.client_id
                buffered, route.buffer = route.buffer, []
            else:
                buffered = []  # still parked: keep buffering
        for payload in buffered:
            route.session.emit(payload)
        return route

    def _earliest_session(self) -> Optional[_RouterSession]:
        sessions = [
            session for session in self._sessions.values() if not session.closed
        ]
        return min(sessions, key=lambda s: s.index) if sessions else None

    def _attach_route(self, route: _Route, session: _RouterSession) -> None:
        # caller holds the lock
        route.session = session
        session.by_client[route.client_id] = (route.worker, route.wire_id)
        session.wire_to_client[(route.worker, route.wire_id)] = route.client_id

    def _adopt_parked(self, session: _RouterSession) -> None:
        """Hand parked (startup-recovered) event streams to ``session``."""
        with self._lock:
            parked, self._parked = self._parked, []
            flushes = []
            for route in parked:
                self._attach_route(route, session)
                buffered, route.buffer = route.buffer, []
                flushes.append(buffered)
        for buffered in flushes:
            for payload in buffered:
                session.emit(payload)

    # ------------------------------------------------------------------ #
    # protocol dispatch (mirrors ServeFrontEnd.handle_line)
    # ------------------------------------------------------------------ #
    def handle_line(
        self, line: str, session: _RouterSession
    ) -> Optional[Dict[str, object]]:
        try:
            message = json.loads(line)
        except json.JSONDecodeError as error:
            return {"event": "error", "message": f"malformed JSON: {error}"}
        if not isinstance(message, dict):
            return {"event": "error", "message": "expected a JSON object"}
        op = message.get("op")
        request_id = message.get("id")
        try:
            if op == "select":
                return self._handle_select(message, session)
            if op == "poll":
                return self._handle_poll(message, session)
            if op == "resume":
                return self._handle_resume(message, session)
            if op == "stats":
                return self._handle_stats(message, session)
            if op == "refresh":
                return self._handle_refresh(message, session)
            if op == "ping":
                payload = {
                    "event": "pong",
                    "workers": len(self._supervisor.workers()),
                    "sessions": len(self._sessions),
                }
                if request_id is not None:
                    payload["id"] = request_id
                return payload
            if op == "shutdown":
                session.shutdown_requested = True
                payload = {"event": "shutting_down"}
                if request_id is not None:
                    payload["id"] = request_id
                return payload
            return {"event": "error", "id": request_id,
                    "message": f"unknown op {op!r}"}
        except ReproError as error:
            payload = {"event": "failed", **error_payload(error)}
            if request_id is not None:
                payload["id"] = request_id
            return payload

    def _next_wire_id(self, session: _RouterSession, *, prefix: str = "") -> str:
        with self._lock:
            self._wire_seq += 1
            return f"c{session.index}-{prefix}{self._wire_seq}"

    def _handle_select(self, message, session) -> Optional[Dict[str, object]]:
        target = message.get("target")
        if not isinstance(target, str) or not target:
            return {"event": "error", "id": message.get("id"),
                    "message": "select needs a 'target' string"}
        tenant = message.get("tenant")
        tenant = tenant if isinstance(tenant, str) and tenant else "default"
        self._admission.admit(tenant)  # raises -> structured failed event
        wire_id = self._next_wire_id(session)
        client_id = message.get("id")
        if client_id is None:
            client_id = f"req-{wire_id}"
        worker = self._ring.lookup(route_key(self._version_key, target))
        forwarded = dict(message)
        forwarded["id"] = wire_id
        forwarded.pop("tenant", None)
        route = _Route(worker, wire_id, client_id, session, forwarded,
                       tenant, target)
        with self._lock:
            self._routes[(worker, wire_id)] = route
            session.by_client[client_id] = (worker, wire_id)
            session.wire_to_client[(worker, wire_id)] = client_id
        try:
            link = self._link(worker)
        except ReproError as error:
            self._fail_route(route, error)
            return None
        try:
            link.send(forwarded)
        except OSError:
            pass  # the relay's EOF recovery owns resubmission
        return None  # the worker's accepted event answers asynchronously

    def _handle_poll(self, message, session) -> Optional[Dict[str, object]]:
        request_id = message.get("id")
        with self._lock:
            entry = session.by_client.get(request_id)
        if entry is None:
            return {"event": "error", "id": request_id,
                    "message": f"unknown request id {request_id!r}"}
        worker, wire_id = entry
        try:
            link = self._link(worker)
            link.send({"op": "poll", "id": wire_id,
                       "best": bool(message.get("best"))})
        except (ReproError, OSError):
            return {"event": "error", "id": request_id,
                    "message": f"unknown request id {request_id!r}"}
        return None

    def _broadcast(self, payload: Dict[str, object], callback) -> None:
        """Send ``payload`` to every worker; ``callback(replies)`` merges.

        A worker that is unreachable (or dies before answering — the
        relay's EOF handler fails its pending collectors) contributes
        ``None`` to ``replies``.
        """
        workers = list(self._supervisor.names)
        with self._lock:
            self._wire_seq += 1
            wire_id = f"b{self._wire_seq}"

        def done(replies: Dict[str, Optional[Dict[str, object]]]) -> None:
            with self._lock:
                for name in workers:
                    self._collectors.pop((name, wire_id), None)
            callback(replies)

        collector = _Collector(workers, done)
        with self._lock:
            for name in workers:
                self._collectors[(name, wire_id)] = collector
        for name in workers:
            try:
                link = self._link(name)
                link.send({**payload, "id": wire_id})
            except (ReproError, OSError):
                collector.fail(name)

    def _handle_resume(self, message, session) -> None:
        self._adopt_parked(session)  # startup recoveries join this stream
        request_id = message.get("id")

        def merged(replies) -> None:
            count = 0
            requests: List[Dict[str, object]] = []
            for worker, reply in sorted(replies.items()):
                if not reply:
                    continue
                count += int(reply.get("count", 0))
                for entry in reply.get("requests", []):
                    worker_rid = str(entry.get("id"))
                    route = self._register_recovered(worker, worker_rid, session)
                    requests.append({**entry, "id": route.client_id})
            payload: Dict[str, object] = {
                "event": "recovered", "count": count, "requests": requests,
            }
            if request_id is not None:
                payload["id"] = request_id
            session.emit(payload)

        self._broadcast({"op": "resume"}, merged)
        return None

    def _handle_stats(self, message, session) -> None:
        request_id = message.get("id")

        def merged(replies) -> None:
            with self._lock:
                pending_by_worker: Dict[str, int] = {}
                for (worker, _), _route in self._routes.items():
                    pending_by_worker[worker] = (
                        pending_by_worker.get(worker, 0) + 1
                    )
            stats = {
                "router": {
                    "workers": len(self._supervisor.names),
                    "zoo_version": self._version_key,
                    "recovered": self.recovered_count,
                    "pending_by_worker": pending_by_worker,
                    "admission": self._admission.stats(),
                    "supervisor": self._supervisor.stats(),
                },
                "workers": {
                    worker: (reply or {}).get("stats")
                    for worker, reply in sorted(replies.items())
                },
            }
            payload: Dict[str, object] = {"event": "stats", "stats": stats}
            if request_id is not None:
                payload["id"] = request_id
            session.emit(payload)

        self._broadcast({"op": "stats"}, merged)
        return None

    def _handle_refresh(self, message, session) -> Optional[Dict[str, object]]:
        """Zero-downtime zoo refresh: apply worker by worker, then cut
        routing over to the new version for subsequent admissions."""
        added = message.get("added") or []
        removed = message.get("removed") or []
        request_id = message.get("id")
        if not added and not removed:
            return {"event": "error", "id": request_id,
                    "message": "refresh needs 'added' and/or 'removed' model names"}
        with self._refresh_lock:
            replies: Dict[str, Dict[str, object]] = {}
            for handle in self._supervisor.workers():
                # A dedicated control connection per worker: the refresh
                # reply must not interleave with the relay's event stream
                # bookkeeping, and refreshes are rare enough that the
                # extra connection is free.
                with JsonLinesConnection(
                    "127.0.0.1", handle.port, timeout=600.0
                ) as conn:
                    conn.send({"op": "refresh", "added": added,
                               "removed": removed, "id": "refresh"})
                    while True:
                        reply = conn.recv()
                        if reply is None:
                            raise WorkerLostError(
                                f"worker {handle.name!r} died mid-refresh"
                            )
                        if reply.get("event") in ("refreshed", "failed", "error"):
                            break
                if reply.get("event") != "refreshed":
                    # Propagate the first worker's failure verbatim; the
                    # fleet has not diverged (failures roll no one forward).
                    reply = dict(reply)
                    if request_id is not None:
                        reply["id"] = request_id
                    else:
                        reply.pop("id", None)
                    return reply
                replies[handle.name] = reply
            versions = {str(reply["zoo_version"]) for reply in replies.values()}
            if len(versions) != 1:
                return {"event": "error", "id": request_id,
                        "message": f"workers diverged on refresh: {sorted(versions)}"}
            old_version, self._version_key = self._version_key, versions.pop()
        first = next(iter(replies.values()))
        payload: Dict[str, object] = {
            "event": "refreshed",
            "zoo_version": self._version_key,
            "old_version": old_version,
            "added": first.get("added"),
            "removed": first.get("removed"),
            "reclustered": first.get("reclustered"),
            "workers": len(replies),
        }
        if request_id is not None:
            payload["id"] = request_id
        return payload

    # ------------------------------------------------------------------ #
    # session lifecycle
    # ------------------------------------------------------------------ #
    def _attach_session(self, out) -> _RouterSession:
        with self._lock:
            index = self._session_seq
            self._session_seq += 1
            session = _RouterSession(index, out)
            self._sessions[index] = session
        # The first stream adopts whatever startup recovery parked, the
        # same way the single-process front end hands recovered handles
        # to its first connection.
        self._adopt_parked(session)
        return session

    def _drain_session(self, session: _RouterSession) -> None:
        """Wait out the session's in-flight requests, then abandon
        stragglers with the same ShutdownTimeout failure a single
        process emits."""
        deadline = time.monotonic() + _DRAIN_TIMEOUT
        while time.monotonic() < deadline:
            with self._lock:
                if not session.by_client:
                    return
            time.sleep(_DRAIN_POLL)
        with self._lock:
            leftovers = [
                self._routes.get(key)
                for key in list(session.by_client.values())
            ]
        for route in leftovers:
            if route is None:
                continue
            with self._lock:
                existing = self._routes.pop((route.worker, route.wire_id), None)
                if existing is not route:
                    continue  # completed while we were collecting
                if route.session is not None:
                    route.session.by_client.pop(route.client_id, None)
            if route.tenant is not None:
                self._admission.release(route.tenant)
            payload: Dict[str, object] = {
                "event": "failed", "id": route.client_id,
                "error": {"code": "timeout", "type": "ShutdownTimeout",
                          "message": "request still running at shutdown"},
            }
            if route.target is not None:
                payload["target"] = route.target
            self._deliver(route, payload)

    def _detach_session(self, session: _RouterSession) -> None:
        with self._lock:
            session.closed = True
            self._sessions.pop(session.index, None)
            stale = [
                self._routes.get(key) for key in list(session.by_client.values())
            ]
            session.by_client.clear()
        for route in stale:
            if route is None:
                continue
            with self._lock:
                self._routes.pop((route.worker, route.wire_id), None)
            if route.tenant is not None:
                self._admission.release(route.tenant)

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    def serve_stream(self, lines, out: TextIO) -> int:
        """Serve line-delimited JSON requests until EOF/shutdown."""
        session = self._attach_session(out)
        try:
            for line in lines:
                line = line.strip()
                if not line:
                    continue
                response = self.handle_line(line, session)
                if response is not None:
                    session.emit(response)
                if session.shutdown_requested:
                    break
            self._drain_session(session)
        finally:
            self._detach_session(session)
        return 0

    def serve_tcp(self, host: str, port: int):
        """Threading TCP server speaking the same line protocol.

        Same contract as :meth:`ServeFrontEnd.serve_tcp`: the caller owns
        the returned server's lifecycle and reads the bound port off
        ``server.server_address``.
        """
        front = self

        class Handler(socketserver.StreamRequestHandler):
            def handle(self) -> None:
                out = SocketLineWriter(self.wfile)
                session = front._attach_session(out)
                try:
                    for raw in self.rfile:
                        line = raw.decode("utf-8").strip()
                        if not line:
                            continue
                        response = front.handle_line(line, session)
                        if response is not None:
                            session.emit(response)
                        if session.shutdown_requested:
                            break
                    front._drain_session(session)
                finally:
                    front._detach_session(session)

        class Server(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        return Server((host, port), Handler)

    def close(self) -> None:
        """Stop relaying (the owner stops the supervisor itself)."""
        with self._lock:
            self._stopped = True
            links = list(self._links.values())
            self._links.clear()
        for link in links:
            link.conn.close()

    # ------------------------------------------------------------------ #
    @property
    def version_key(self) -> str:
        """Zoo version new admissions route under (moves on refresh)."""
        return self._version_key

    def worker_summaries(self) -> List[Dict[str, object]]:
        """Banner-friendly list of the live workers (name, pid, port)."""
        return [
            {"name": handle.name, "pid": handle.pid, "port": handle.port,
             "generation": handle.generation}
            for handle in self._supervisor.workers()
        ]
