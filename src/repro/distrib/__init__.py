"""Multi-replica serving tier: a consistent-hash router over N workers.

``python -m repro serve --workers N`` boots this package instead of a
single :class:`~repro.serving.ServeFrontEnd`:

* :mod:`repro.distrib.ring` — deterministic SHA-256 consistent hashing
  of ``(zoo_version, target)`` routing keys onto worker names, so equal
  targets co-locate and warm sessions survive sharding;
* :mod:`repro.distrib.worker` — the serve argv and per-worker plan-store
  slice of one worker process, plus the reparenting watchdog that keeps
  killed deployments from leaking workers;
* :mod:`repro.distrib.supervisor` — spawns the fleet, heartbeats it
  (process polls + TCP pings), and restarts dead workers with journal
  recovery suppressed (the router resubmits in-flight work itself);
* :mod:`repro.distrib.router` — the protocol-transparent front end:
  relays the JSON-lines serve protocol between clients and workers,
  heals worker death by resubmitting over replayed journals, applies
  zero-downtime zoo refreshes, and enforces multi-tenant admission with
  structured brownout errors;
* :mod:`repro.distrib.wire` — the shared JSON-lines TCP primitives
  (retry-until-ready connects, locked line sends, one-shot pings).

See ``docs/distributed.md`` for topology, failure semantics and tuning.
"""

from repro.distrib.ring import HashRing, route_key
from repro.distrib.router import (
    AdmissionController,
    RouterFrontEnd,
    TenantPolicy,
)
from repro.distrib.supervisor import WorkerHandle, WorkerSupervisor
from repro.distrib.wire import JsonLinesConnection, connect_with_retry, ping
from repro.distrib.worker import (
    PARENT_PID_ENV,
    arm_parent_watchdog_from_env,
    worker_argv,
    worker_store_dir,
)

__all__ = [
    "AdmissionController",
    "HashRing",
    "JsonLinesConnection",
    "PARENT_PID_ENV",
    "RouterFrontEnd",
    "TenantPolicy",
    "WorkerHandle",
    "WorkerSupervisor",
    "arm_parent_watchdog_from_env",
    "connect_with_retry",
    "ping",
    "route_key",
    "worker_argv",
    "worker_store_dir",
]
