"""Worker lifecycle for the routed serving tier: spawn, watch, restart.

The supervisor owns N worker processes (each a plain ``python -m repro
serve --port 0``, see :mod:`repro.distrib.worker`) and keeps the set
alive:

* **Spawn** — workers start concurrently; each one's readiness signal is
  its serving banner line (printed only after its TCP port is bound), so
  there are no fixed sleeps anywhere in the path.
* **Heartbeats** — a monitor thread polls process liveness every
  ``heartbeat_interval`` seconds and, every few beats, sends a real
  ``ping`` over TCP so a *hung* worker (alive but not serving) is caught
  too.  Two consecutive failed pings count as death.
* **SIGKILL detection + restart** — a dead worker is respawned under the
  same name and store slice, with its **generation** bumped; the router's
  relay threads block in :meth:`await_replacement` and resubmit the dead
  worker's in-flight requests against the replacement, whose journal
  replay restores every charged step without retraining.
* **Failpoint propagation** — when the deployment itself was armed with
  the ``REPRO_CRASH_SITE`` environment failpoint (the fault-injection
  harness's crash model), a worker dying with the failpoint's exit code
  means *the deployment* was told to die at that durability boundary: the
  supervisor propagates the exit instead of restarting, so a routed
  serve process looks exactly like a single-process one to the crash
  tests.  Restarted workers always get the failpoint stripped from their
  environment — a crash site fires at most once per worker name, never a
  crash loop.
"""

from __future__ import annotations

import os
import select
import subprocess
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.distrib.wire import ping
from repro.distrib.worker import PARENT_PID_ENV
from repro.utils.exceptions import ConfigurationError

#: Exit code of the environment failpoint (mirrors the harness constant).
_FAILPOINT_EXIT_CODE = 137

#: Environment variables of the crash failpoint, stripped from restarts.
_FAILPOINT_ENV = ("REPRO_CRASH_SITE", "REPRO_CRASH_AT")


class WorkerHandle:
    """One live worker process: its Popen, bound port and banner."""

    def __init__(self, name: str, proc, port: int, banner: Dict[str, object],
                 generation: int) -> None:
        self.name = name
        self.proc = proc
        self.port = port
        self.banner = banner
        self.generation = generation

    @property
    def pid(self) -> int:
        return self.proc.pid

    def alive(self) -> bool:
        return self.proc.poll() is None


class _WorkerState:
    """Supervisor-internal bookkeeping of one worker name."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.handle: Optional[WorkerHandle] = None
        self.generation = 0
        self.restarts = 0
        self.failed = False
        self.ping_strikes = 0


class WorkerSupervisor:
    """Spawn and babysit the worker fleet of one routed deployment.

    Parameters
    ----------
    names:
        Worker names, e.g. ``["w0", "w1"]``.  Names are identity: the
        replacement of a dead ``w1`` is spawned as ``w1`` on ``w1``'s
        plan-store slice, which is what makes journal recovery line up
        with deterministic routing.
    argv_for:
        ``argv_for(name, restart=...)`` builds a worker's command line
        (see :func:`repro.distrib.worker.worker_argv`); ``restart=True``
        must suppress the worker's own startup recovery.
    log_dir:
        Directory for per-worker stderr logs (``<name>.log``, appended
        across generations).  ``None`` discards stderr.
    """

    def __init__(
        self,
        names: List[str],
        argv_for: Callable[..., List[str]],
        *,
        log_dir: Optional[str] = None,
        heartbeat_interval: float = 0.5,
        ping_every: int = 4,
        ping_timeout: float = 5.0,
        startup_timeout: float = 120.0,
        max_restarts: int = 8,
    ) -> None:
        if not names:
            raise ConfigurationError("supervisor needs at least one worker name")
        if len(set(names)) != len(names):
            raise ConfigurationError("worker names must be unique")
        self._argv_for = argv_for
        self._log_dir = Path(log_dir) if log_dir is not None else None
        self.heartbeat_interval = float(heartbeat_interval)
        self._ping_every = max(1, int(ping_every))
        self._ping_timeout = float(ping_timeout)
        self._startup_timeout = float(startup_timeout)
        self._max_restarts = int(max_restarts)
        self._lock = threading.RLock()
        self._changed = threading.Condition(self._lock)
        self._states: Dict[str, _WorkerState] = {
            name: _WorkerState(name) for name in names
        }
        self._stopped = False
        self._monitor: Optional[threading.Thread] = None
        self._beats = 0
        #: Deployment-level failpoint arming, captured at construction: a
        #: worker dying with the failpoint exit code under an armed
        #: environment is a *deployment* crash to propagate, not a fault
        #: to heal.
        self._armed_failpoint = bool(os.environ.get("REPRO_CRASH_SITE"))

    # ------------------------------------------------------------------ #
    # spawning
    # ------------------------------------------------------------------ #
    def _worker_env(self, *, restart: bool) -> Dict[str, str]:
        env = dict(os.environ)
        env[PARENT_PID_ENV] = str(os.getpid())
        if restart:
            for key in _FAILPOINT_ENV:
                env.pop(key, None)
        return env

    def _open_log(self, name: str):
        if self._log_dir is None:
            return subprocess.DEVNULL
        self._log_dir.mkdir(parents=True, exist_ok=True)
        return open(self._log_dir / f"{name}.log", "a", encoding="utf-8")

    def _read_banner(self, proc, name: str) -> Dict[str, object]:
        import json

        deadline = time.monotonic() + self._startup_timeout
        while time.monotonic() < deadline:
            remaining = max(0.0, deadline - time.monotonic())
            ready, _, _ = select.select([proc.stdout], [], [], min(remaining, 1.0))
            if not ready:
                if proc.poll() is not None:
                    break
                continue
            line = proc.stdout.readline()
            if not line:
                break
            return json.loads(line)
        raise RuntimeError(
            f"worker {name!r} died or hung before its banner "
            f"(exit={proc.poll()!r})"
        )

    def _spawn(self, name: str, generation: int, *, restart: bool) -> WorkerHandle:
        argv = self._argv_for(name, restart=restart)
        log = self._open_log(name)
        proc = subprocess.Popen(
            argv,
            stdout=subprocess.PIPE,
            stderr=log,
            env=self._worker_env(restart=restart),
            text=True,
        )
        if log is not subprocess.DEVNULL:
            log.close()  # the child holds its own descriptor now
        try:
            banner = self._read_banner(proc, name)
        except Exception:
            proc.kill()
            proc.wait(timeout=10)
            raise
        return WorkerHandle(name, proc, int(banner["port"]), banner, generation)

    def start(self) -> None:
        """Spawn every worker concurrently; then start the monitor thread."""
        errors: Dict[str, BaseException] = {}

        def _boot(state: _WorkerState) -> None:
            try:
                handle = self._spawn(state.name, 0, restart=False)
            except BaseException as error:  # noqa: BLE001 — reported below
                errors[state.name] = error
                return
            with self._lock:
                state.handle = handle

        threads = [
            threading.Thread(target=_boot, args=(state,), daemon=True)
            for state in self._states.values()
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=self._startup_timeout + 10)
        if errors:
            self.stop()
            name, error = next(iter(errors.items()))
            raise RuntimeError(f"worker {name!r} failed to start: {error}")
        self._monitor = threading.Thread(
            target=self._watch, name="repro-supervisor", daemon=True
        )
        self._monitor.start()

    # ------------------------------------------------------------------ #
    # monitoring + restart
    # ------------------------------------------------------------------ #
    def _watch(self) -> None:
        while True:
            with self._lock:
                if self._stopped:
                    return
                states = list(self._states.values())
            self._beats += 1
            ping_beat = self._beats % self._ping_every == 0
            for state in states:
                self._check(state, ping_beat)
            time.sleep(self.heartbeat_interval)

    def _check(self, state: _WorkerState, ping_beat: bool) -> None:
        with self._lock:
            handle = state.handle
            if self._stopped or state.failed or handle is None:
                return
        code = handle.proc.poll()
        if code is not None:
            if code == _FAILPOINT_EXIT_CODE and self._armed_failpoint:
                # The deployment was armed to die at a durability
                # boundary and one of its workers just did: propagate, so
                # the routed tier honours the same crash contract as a
                # single process (skipping every finally/atexit, exactly
                # like the worker itself).
                os._exit(_FAILPOINT_EXIT_CODE)
            self._restart(state)
            return
        if ping_beat:
            try:
                ping("127.0.0.1", handle.port, timeout=self._ping_timeout)
            except (OSError, TimeoutError):
                with self._lock:
                    state.ping_strikes += 1
                    strikes = state.ping_strikes
                if strikes >= 2:
                    # Alive but not serving: treat as dead.
                    handle.proc.kill()
                    handle.proc.wait(timeout=10)
                    self._restart(state)
            else:
                with self._lock:
                    state.ping_strikes = 0

    def _restart(self, state: _WorkerState) -> None:
        with self._lock:
            if self._stopped or state.failed:
                return
            if state.restarts >= self._max_restarts:
                state.failed = True
                state.handle = None
                self._changed.notify_all()
                return
            state.restarts += 1
            state.generation += 1
            state.ping_strikes = 0
            generation = state.generation
        try:
            handle = self._spawn(state.name, generation, restart=True)
        except Exception:
            with self._lock:
                state.failed = True
                state.handle = None
                self._changed.notify_all()
            return
        with self._lock:
            if self._stopped:
                handle.proc.kill()
                return
            state.handle = handle
            self._changed.notify_all()

    # ------------------------------------------------------------------ #
    # router-facing API
    # ------------------------------------------------------------------ #
    @property
    def names(self) -> List[str]:
        return sorted(self._states)

    def worker(self, name: str) -> Optional[WorkerHandle]:
        """Current handle of ``name`` (``None`` while dead or failed)."""
        with self._lock:
            state = self._states[name]
            return state.handle

    def workers(self) -> List[WorkerHandle]:
        """Live handles, in name order."""
        with self._lock:
            return [
                state.handle
                for _, state in sorted(self._states.items())
                if state.handle is not None
            ]

    def ensure_alive(self, name: str, *, timeout: float = 60.0) -> Optional[WorkerHandle]:
        """Handle of ``name``, waiting out an in-progress restart."""
        deadline = time.monotonic() + timeout
        with self._lock:
            state = self._states[name]
            while True:
                if state.failed or self._stopped:
                    return None
                handle = state.handle
                if handle is not None and handle.alive():
                    return handle
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                self._changed.wait(timeout=remaining)

    def await_replacement(
        self, name: str, seen_generation: int, *, timeout: float = 120.0
    ) -> Optional[WorkerHandle]:
        """Block until ``name`` runs at a generation past ``seen_generation``.

        The router's relay calls this after a link EOF: the monitor will
        have noticed the death within one heartbeat and respawned the
        worker; the returned handle is the replacement to resubmit
        against.  Returns ``None`` when the worker is permanently failed,
        the supervisor stopped, or ``timeout`` passed.
        """
        deadline = time.monotonic() + timeout
        with self._lock:
            state = self._states[name]
            while True:
                if state.failed or self._stopped:
                    return None
                handle = state.handle
                if handle is not None and handle.generation > seen_generation:
                    return handle
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                self._changed.wait(timeout=remaining)

    def stop(self) -> None:
        """Kill every worker and stop monitoring (idempotent)."""
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
            handles = [
                state.handle for state in self._states.values()
                if state.handle is not None
            ]
            self._changed.notify_all()
        for handle in handles:
            try:
                handle.proc.kill()
            except OSError:
                pass
        for handle in handles:
            try:
                handle.proc.wait(timeout=10)
            except Exception:  # noqa: BLE001 — best-effort teardown
                pass
        monitor = self._monitor
        if monitor is not None and monitor is not threading.current_thread():
            monitor.join(timeout=5.0)

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, object]:
        """Per-worker liveness: pid, port, generation, restart count."""
        with self._lock:
            report = {}
            for name, state in sorted(self._states.items()):
                handle = state.handle
                report[name] = {
                    "alive": handle is not None and handle.alive(),
                    "pid": handle.pid if handle is not None else None,
                    "port": handle.port if handle is not None else None,
                    "generation": state.generation,
                    "restarts": state.restarts,
                    "failed": state.failed,
                }
            return report
