"""Worker-side plumbing of the routed serving tier.

A *worker* is simply ``python -m repro serve --port 0`` — the exact
single-process front-end clients already speak — plus two pieces of
routed-tier glue that live here:

* :func:`worker_argv` builds the serve command line for one named worker:
  the shared modality/scale/seed/scheduler flags, a free TCP port, and a
  per-worker plan-store slice (``<root>/workers/<name>``) so journals
  written by worker ``w3`` are found by the *next* ``w3`` — routing is
  deterministic, so the replacement worker of the same name receives the
  same targets and can replay its predecessor's journals.
* :func:`arm_parent_watchdog_from_env` keeps SIGKILLed deployments from
  leaking processes: the router exports ``REPRO_PARENT_PID`` into each
  worker, and a daemon thread inside the worker hard-exits the moment it
  finds itself reparented (its supervisor died without cleanup, so nobody
  will ever route to it again).
"""

from __future__ import annotations

import os
import sys
import threading
from pathlib import Path
from typing import List, Optional

#: Environment variable carrying the supervising router's PID.
PARENT_PID_ENV = "REPRO_PARENT_PID"

#: Seconds between reparenting checks of the watchdog thread.  Kept short:
#: after a router SIGKILL this bounds how long an orphaned worker may keep
#: appending to its journal slice before the replacement deployment reads it.
_WATCHDOG_INTERVAL = 0.5


def worker_store_dir(store_root: Optional[str], name: str) -> Optional[str]:
    """Plan-store slice of worker ``name`` under the deployment's root."""
    if store_root is None:
        return None
    return str(Path(store_root) / "workers" / name)


def worker_argv(
    name: str,
    *,
    modality: str,
    scale: str,
    seed: int,
    num_models: Optional[int] = None,
    max_concurrent: int = 4,
    epoch_budget: int = 8,
    max_queue: int = 64,
    policy: str = "fair_share",
    timeout: Optional[float] = None,
    store_root: Optional[str] = None,
    recover: bool = True,
) -> List[str]:
    """Serve command line of one worker process.

    ``recover=False`` (used for supervisor *restarts*) suppresses the
    worker's own startup recovery: the router resubmits the dead worker's
    in-flight requests itself, and journal replay inside the scheduler
    restores their charged steps — a second, unsolicited recovery would
    duplicate every event stream.
    """
    argv = [
        sys.executable, "-m", "repro", "serve",
        "--modality", modality,
        "--scale", scale,
        "--seed", str(seed),
        "--max-concurrent", str(max_concurrent),
        "--epoch-budget", str(epoch_budget),
        "--max-queue", str(max_queue),
        "--policy", policy,
        "--port", "0",
    ]
    if num_models is not None:
        argv += ["--num-models", str(num_models)]
    if timeout is not None:
        argv += ["--timeout", str(timeout)]
    store_dir = worker_store_dir(store_root, name)
    if store_dir is not None:
        argv += ["--store-dir", store_dir]
        if not recover:
            argv += ["--no-recover"]
    return argv


def arm_parent_watchdog_from_env() -> Optional[threading.Thread]:
    """Start the reparenting watchdog when ``REPRO_PARENT_PID`` is set.

    Called from ``python -m repro serve`` startup (like the crash-site
    failpoint): a daemon thread polls ``os.getppid()`` and hard-exits via
    ``os._exit`` once the process no longer belongs to the supervising
    router — ``finally`` blocks must not run, because nothing about the
    worker's on-disk state should change after its router died.  Returns
    the thread, or ``None`` when not armed.
    """
    raw = os.environ.get(PARENT_PID_ENV)
    if not raw:
        return None
    try:
        parent_pid = int(raw)
    except ValueError:
        return None

    def _watch() -> None:
        import time

        while True:
            if os.getppid() != parent_pid:
                os._exit(0)
            time.sleep(_WATCHDOG_INTERVAL)

    thread = threading.Thread(
        target=_watch, name="repro-parent-watchdog", daemon=True
    )
    thread.start()
    return thread
