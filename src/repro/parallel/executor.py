"""Executor backends: serial, thread pool and fork-based process pool.

All executors implement one contract — :meth:`Executor.map` applies a
callable to every item and returns the results **in input order**, whatever
the completion order of the workers.  Combined with the library's
order-independent randomness (per-``(model, task)`` named streams, see
:mod:`repro.utils.rng`), this makes every parallel hot path bitwise
reproducible: the serial, thread and process backends return identical
:class:`~repro.core.results.SelectionResult` records.

Executors are deliberately **stateless** (configuration only): each
:meth:`map` call builds and tears down its own pool.  That keeps every
executor picklable and fork-safe — a forked worker process never inherits a
half-alive thread or process pool — at the cost of a small per-call pool
start-up, which is negligible next to the fine-tuning work being dispatched.

:class:`ProcessExecutor` ships work to forked children through a module-level
snapshot: the callable and items are published under a lock, the pool forks
(children inherit the snapshot copy-on-write), and only integer indices and
results cross the pipe.  This lets arbitrary closures over large offline
artifacts be dispatched without pickling the artifacts themselves; only the
per-item **results** must be picklable.
"""

from __future__ import annotations

import multiprocessing
import threading
from typing import Any, Callable, Iterable, List, Optional, Sequence, TypeVar, Union

from repro.parallel.config import ParallelConfig
from repro.utils.exceptions import ConfigurationError

T = TypeVar("T")
R = TypeVar("R")

#: Snapshot handed to forked workers: ``(callable, items)``.
_FORK_PAYLOAD: Optional[tuple] = None
#: Guards the publish-payload → fork-pool window (and its cleanup).
_FORK_LOCK = threading.Lock()


def _invoke_payload(index: int):
    """Run one item of the forked snapshot (executes in the child process)."""
    fn, items = _FORK_PAYLOAD
    return fn(items[index])


def _in_worker_process() -> bool:
    """Whether we are already inside a daemonic pool worker (no nesting)."""
    return multiprocessing.current_process().daemon


#: Name prefix identifying threads spawned by :class:`ThreadExecutor`.
_THREAD_NAME_PREFIX = "repro-parallel"


def _in_worker_thread() -> bool:
    """Whether we are already inside a ThreadExecutor worker (no nesting)."""
    return threading.current_thread().name.startswith(_THREAD_NAME_PREFIX)


class Executor:
    """Common interface: ordered, deterministic fan-out of pure-ish work."""

    backend = "base"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError("max_workers must be >= 1 when given")
        self.max_workers = max_workers

    def resolved_workers(self) -> int:
        """Concrete worker count this executor fans out to."""
        if self.max_workers is not None:
            return self.max_workers
        return ParallelConfig(backend="thread").resolved_workers()

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        """Apply ``fn`` to every item, returning results in input order."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(max_workers={self.max_workers})"


class SerialExecutor(Executor):
    """Run everything in the calling thread (the reference backend)."""

    backend = "serial"

    def resolved_workers(self) -> int:
        return 1

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        return [fn(item) for item in items]


class ThreadExecutor(Executor):
    """Thread-pool backend.

    Effective when the dispatched work spends its time inside NumPy's C
    kernels (matrix products, batched training steps), which release the
    GIL.  A fresh ``concurrent.futures.ThreadPoolExecutor`` is built per
    :meth:`map` call so the executor object itself stays stateless.

    Nested maps degrade to serial: when :meth:`map` is called from inside
    another ThreadExecutor worker (e.g. a thread-parallel batch fan-out
    whose per-task engines are also thread-configured), the inner call runs
    in place instead of oversubscribing the host with workers-squared
    threads — mirroring the process backend's daemon guard.
    """

    backend = "thread"

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        from concurrent.futures import ThreadPoolExecutor

        work = list(items)
        if not work:
            return []
        workers = min(self.resolved_workers(), len(work))
        if workers <= 1 or _in_worker_thread():
            return [fn(item) for item in work]
        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix=_THREAD_NAME_PREFIX
        ) as pool:
            return list(pool.map(fn, work))


class ProcessExecutor(Executor):
    """Fork-based process-pool backend.

    Each :meth:`map` publishes ``(fn, items)`` as a module-level snapshot,
    forks a fresh pool (children inherit the snapshot copy-on-write) and
    sends only item **indices** through the task queue — so closures over
    unpicklable or very large state (model hubs, offline artifacts) can be
    dispatched directly.  Results are pickled back to the parent and
    returned in input order.

    Two guard rails:

    * requires the ``fork`` start method (available on Linux/macOS;
      construction fails with :class:`ConfigurationError` elsewhere);
    * inside an existing daemonic pool worker (nested parallelism) it
      degrades to serial execution instead of crashing — so a
      process-parallel batch fan-out can wrap engines that are themselves
      configured for process parallelism.
    """

    backend = "process"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        super().__init__(max_workers)
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ConfigurationError(
                "the process backend requires the 'fork' start method; "
                "use backend='thread' on this platform"
            )

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        global _FORK_PAYLOAD
        work = list(items)
        if not work:
            return []
        workers = min(self.resolved_workers(), len(work))
        if workers <= 1 or _in_worker_process():
            return [fn(item) for item in work]
        context = multiprocessing.get_context("fork")
        with _FORK_LOCK:
            _FORK_PAYLOAD = (fn, work)
            # Workers fork inside the constructor, snapshotting the payload.
            pool = context.Pool(processes=workers)
        try:
            return pool.map(_invoke_payload, range(len(work)))
        finally:
            pool.close()
            pool.join()
            with _FORK_LOCK:
                _FORK_PAYLOAD = None


_EXECUTORS = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}

ExecutorLike = Union[Executor, ParallelConfig, str, None]


def get_executor(parallel: ExecutorLike = None) -> Executor:
    """Resolve an executor from a config, spec string or executor instance.

    ``None`` yields the serial executor; strings are parsed as
    ``"backend[:workers]"`` specs (see :meth:`ParallelConfig.from_spec`);
    existing executors pass through unchanged.
    """
    if isinstance(parallel, Executor):
        return parallel
    if parallel is None:
        return SerialExecutor()
    if isinstance(parallel, str):
        parallel = ParallelConfig.from_spec(parallel)
    if not isinstance(parallel, ParallelConfig):
        raise ConfigurationError(
            f"cannot build an executor from {parallel!r}; expected an Executor, "
            "ParallelConfig, spec string or None"
        )
    factory = _EXECUTORS[parallel.backend]
    return factory(max_workers=parallel.max_workers)
