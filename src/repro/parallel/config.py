"""Parallel-execution configuration.

:class:`ParallelConfig` is the single knob every parallel hot path reads:
the coarse-recall proxy loop, the per-candidate stage training of the
selection algorithms, and the per-task fan-out of
:class:`~repro.core.batch.BatchedSelectionRunner`.  It names a backend
(``serial``, ``thread`` or ``process``) and a worker count, and parses the
compact ``"backend[:workers]"`` spec used by the CLI and the
``REPRO_PARALLEL`` environment variable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.utils.exceptions import ConfigurationError

#: Backends understood by :func:`repro.parallel.executor.get_executor`.
BACKENDS = ("serial", "thread", "process")

#: Environment variable providing the process-wide default spec.
PARALLEL_ENV_VAR = "REPRO_PARALLEL"


@dataclass(frozen=True)
class ParallelConfig:
    """How the online phases spread work over workers.

    Attributes
    ----------
    backend:
        ``"serial"`` (default — no concurrency), ``"thread"`` (a thread
        pool; NumPy releases the GIL in its C kernels) or ``"process"``
        (fork-based worker processes; the strongest isolation and speedup).
    max_workers:
        Worker count; ``None`` resolves to ``os.cpu_count()`` capped at
        :attr:`DEFAULT_WORKER_CAP` workers.  Ignored by the serial backend.

    >>> ParallelConfig.from_spec("process:4")
    ParallelConfig(backend='process', max_workers=4)
    >>> ParallelConfig().is_parallel
    False
    """

    backend: str = "serial"
    max_workers: Optional[int] = None

    #: Upper bound applied when ``max_workers`` is left unset.
    DEFAULT_WORKER_CAP = 8

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown parallel backend {self.backend!r}; expected one of {BACKENDS}"
            )
        if self.max_workers is not None and self.max_workers < 1:
            raise ConfigurationError("max_workers must be >= 1 when given")

    # ------------------------------------------------------------------ #
    @property
    def is_parallel(self) -> bool:
        """Whether this configuration uses more than one worker."""
        return self.backend != "serial" and self.resolved_workers() > 1

    def resolved_workers(self) -> int:
        """Concrete worker count (1 for the serial backend)."""
        if self.backend == "serial":
            return 1
        if self.max_workers is not None:
            return int(self.max_workers)
        return max(1, min(os.cpu_count() or 1, self.DEFAULT_WORKER_CAP))

    # ------------------------------------------------------------------ #
    @classmethod
    def from_spec(cls, spec: Optional[str]) -> "ParallelConfig":
        """Parse a ``"backend[:workers]"`` spec (e.g. ``"thread:4"``).

        ``None`` and ``""`` mean serial execution; worker counts are
        optional (``"process"`` alone uses the resolved CPU default).
        """
        if spec is None or spec == "":
            return cls()
        text = spec.strip().lower()
        backend, separator, workers = text.partition(":")
        if backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown parallel backend {backend!r} in spec {spec!r}; "
                f"expected one of {BACKENDS}"
            )
        if not separator:
            return cls(backend=backend)
        if not workers.isdigit():
            raise ConfigurationError(
                f"invalid worker count {workers!r} in spec {spec!r}"
            )
        try:
            count = int(workers)
        except ValueError:
            raise ConfigurationError(
                f"invalid worker count {workers!r} in spec {spec!r}"
            ) from None
        return cls(backend=backend, max_workers=count)

    @classmethod
    def from_env(cls, default: Optional[str] = None) -> "ParallelConfig":
        """Build the config from ``REPRO_PARALLEL`` (or ``default`` if unset)."""
        return cls.from_spec(os.environ.get(PARALLEL_ENV_VAR, default))

    def spec(self) -> str:
        """Compact ``backend[:workers]`` representation (inverse of ``from_spec``)."""
        if self.backend == "serial":
            return "serial"
        if self.max_workers is None:
            return self.backend
        return f"{self.backend}:{self.max_workers}"
