"""Parallel execution subsystem: one config, three interchangeable backends.

The online phases of the two-phase pipeline are embarrassingly parallel at
three granularities — per-representative proxy scoring in coarse recall,
per-candidate stage training in fine-selection, and per-target fan-out in
batched selection.  This package supplies the executor abstraction those hot
paths share:

* :class:`~repro.parallel.config.ParallelConfig` — backend + worker count,
  parsed from ``"backend[:workers]"`` specs (CLI ``--parallel``,
  ``REPRO_PARALLEL`` environment variable).
* :class:`~repro.parallel.executor.SerialExecutor`,
  :class:`~repro.parallel.executor.ThreadExecutor`,
  :class:`~repro.parallel.executor.ProcessExecutor` — all exposing an
  order-preserving :meth:`~repro.parallel.executor.Executor.map`, so the
  parallel and serial paths return **identical** results.
* :func:`~repro.parallel.executor.get_executor` — the resolver used by
  :func:`repro.core.batch.build_phase_engines` and friends.

See ``docs/parallelism.md`` for backend guidance and tuning.
"""

from repro.parallel.config import BACKENDS, PARALLEL_ENV_VAR, ParallelConfig
from repro.parallel.executor import (
    Executor,
    ExecutorLike,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    get_executor,
)

__all__ = [
    "BACKENDS",
    "PARALLEL_ENV_VAR",
    "ParallelConfig",
    "Executor",
    "ExecutorLike",
    "ProcessExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "get_executor",
]
