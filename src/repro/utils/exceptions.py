"""Exception hierarchy for the ``repro`` package.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class at an application boundary.
"""


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """Raised when a configuration object or parameter is invalid."""


class DataError(ReproError):
    """Raised when a dataset, matrix or array has an invalid shape/content."""


class SelectionError(ReproError):
    """Raised when a model-selection run cannot proceed.

    Typical causes: an empty candidate pool, a performance matrix that does
    not cover the requested models, or inconsistent convergence records.
    """


class HubError(ReproError):
    """Raised when a model hub lookup fails (unknown model or dataset)."""


class SchedulerError(ReproError):
    """Base class for epoch-scheduler failures (see :mod:`repro.sched`)."""


class QueueFullError(SchedulerError):
    """Raised when the scheduler's bounded admission queue rejects a request.

    This is the scheduler's backpressure signal: callers should retry
    later, shed load, or raise ``max_queue``.
    """


class BudgetExhaustedError(SchedulerError):
    """Raised when a request exceeds its per-request epoch quota."""


class RequestTimeoutError(SchedulerError):
    """Raised when a request misses its deadline before completing."""


class RateLimitError(SchedulerError):
    """Raised when a tenant exceeds its admission rate limit.

    The router's multi-tenant admission controller emits this as the
    structured ``rate_limited`` error; like :class:`QueueFullError` it is
    a fail-fast backpressure signal, not a fatal condition.
    """


class WorkerLostError(SchedulerError):
    """Raised when a routed request's worker died and could not be replaced.

    Requests normally survive worker death transparently (the supervisor
    restarts the worker and the router resubmits against the replayed
    journal); this error is the terminal fallback when the replacement
    itself cannot be reached.
    """
