"""Small argument-validation helpers used across the library.

Each helper raises :class:`repro.utils.exceptions.DataError` or
:class:`repro.utils.exceptions.ConfigurationError` with a message naming
the offending argument, so call sites stay one-liners.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.utils.exceptions import ConfigurationError, DataError


def check_positive(name: str, value: float, *, strict: bool = True) -> float:
    """Ensure ``value`` is positive (strictly by default)."""
    if strict and value <= 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    if not strict and value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return value


def check_fraction(name: str, value: float, *, inclusive: bool = True) -> float:
    """Ensure ``value`` lies in ``[0, 1]`` (or ``(0, 1)`` if not inclusive)."""
    if inclusive:
        if not 0.0 <= value <= 1.0:
            raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")
    else:
        if not 0.0 < value < 1.0:
            raise ConfigurationError(f"{name} must be in (0, 1), got {value!r}")
    return value


def check_same_length(name_a: str, a: Sequence, name_b: str, b: Sequence) -> None:
    """Ensure two sequences have the same length."""
    if len(a) != len(b):
        raise DataError(
            f"{name_a} and {name_b} must have the same length "
            f"({len(a)} != {len(b)})"
        )


def check_probability_matrix(name: str, matrix: np.ndarray, *, atol: float = 1e-5) -> np.ndarray:
    """Ensure ``matrix`` rows are valid probability distributions."""
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2:
        raise DataError(f"{name} must be 2-dimensional, got shape {arr.shape}")
    if np.any(arr < -atol):
        raise DataError(f"{name} contains negative probabilities")
    row_sums = arr.sum(axis=1)
    if not np.allclose(row_sums, 1.0, atol=atol):
        raise DataError(f"{name} rows must sum to 1 (max deviation {np.abs(row_sums - 1).max():.3g})")
    return arr


def check_labels(name: str, labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Ensure ``labels`` is a 1-D integer array in ``[0, num_classes)``."""
    arr = np.asarray(labels)
    if arr.ndim != 1:
        raise DataError(f"{name} must be 1-dimensional, got shape {arr.shape}")
    if arr.size and (arr.min() < 0 or arr.max() >= num_classes):
        raise DataError(
            f"{name} must contain labels in [0, {num_classes}), "
            f"got range [{arr.min()}, {arr.max()}]"
        )
    return arr.astype(int)
