"""Simple wall-clock timing helpers for examples and the experiment harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List
from contextlib import contextmanager


@dataclass
class Stopwatch:
    """Accumulates named wall-clock timings.

    The experiment harness mostly reports cost in *fine-tuning epochs*
    (matching the paper), but examples also print wall-clock time, which
    this class collects.
    """

    timings: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        """Context manager adding the elapsed time under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.timings[name] = self.timings.get(name, 0.0) + elapsed
            self.counts[name] = self.counts.get(name, 0) + 1

    def total(self) -> float:
        """Total seconds across all named sections."""
        return float(sum(self.timings.values()))

    def report_lines(self) -> List[str]:
        """Human-readable per-section summary lines."""
        lines = []
        for name in sorted(self.timings):
            lines.append(
                f"{name}: {self.timings[name]:.3f}s over {self.counts[name]} call(s)"
            )
        return lines
