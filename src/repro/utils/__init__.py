"""Shared utilities: RNG management, validation, timing and serialization.

These helpers are intentionally small and dependency-free so that every
other subpackage (``repro.nn``, ``repro.zoo``, ``repro.core`` ...) can use
them without import cycles.
"""

from repro.utils.exceptions import (
    ConfigurationError,
    DataError,
    ReproError,
    SelectionError,
)
from repro.utils.rng import RngFactory, as_generator, spawn_rng
from repro.utils.timing import Stopwatch
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_probability_matrix,
    check_same_length,
)

__all__ = [
    "ConfigurationError",
    "DataError",
    "ReproError",
    "SelectionError",
    "RngFactory",
    "as_generator",
    "spawn_rng",
    "Stopwatch",
    "check_fraction",
    "check_positive",
    "check_probability_matrix",
    "check_same_length",
]
