"""Deterministic random-number management.

Every stochastic component of the library accepts either an integer seed or
a :class:`numpy.random.Generator`.  The helpers here normalise both into a
generator and support spawning independent child streams so that, for
example, every model in the hub fine-tunes with its own reproducible
stream regardless of evaluation order.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` creates a non-deterministic generator, an ``int`` seeds a new
    PCG64 generator and an existing generator is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, *labels: object) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    The child stream is keyed by the hash of ``labels`` so that the same
    parent seed and labels always produce the same child stream, no matter
    how many other streams were drawn in between.
    """
    key = abs(hash(tuple(str(label) for label in labels))) % (2**32)
    base = int(rng.integers(0, 2**31 - 1)) if not labels else 0
    seed_seq = np.random.SeedSequence(entropy=key + base)
    return np.random.default_rng(seed_seq)


class RngFactory:
    """Factory producing named, reproducible random streams.

    A factory is constructed from a single root seed; asking twice for the
    same ``name`` returns generators with identical streams.  This is used
    by the model hub so that e.g. fine-tuning ``bert-base`` on ``mnli`` is
    reproducible independently of all other (model, dataset) pairs.
    """

    def __init__(self, root_seed: int = 0) -> None:
        self._root_seed = int(root_seed)

    @property
    def root_seed(self) -> int:
        """Root seed the factory was created with."""
        return self._root_seed

    def named(self, *labels: object) -> np.random.Generator:
        """Return a generator keyed by ``labels`` (and the root seed)."""
        key = "/".join(str(label) for label in labels)
        entropy = (self._root_seed, _stable_hash(key))
        return np.random.default_rng(np.random.SeedSequence(entropy=entropy))

    def seed_for(self, *labels: object) -> int:
        """Return a stable integer seed keyed by ``labels``."""
        key = "/".join(str(label) for label in labels)
        return (_stable_hash(key) ^ self._root_seed) % (2**31 - 1)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"RngFactory(root_seed={self._root_seed})"


def _stable_hash(text: str) -> int:
    """Hash ``text`` into a non-negative integer, stable across processes."""
    value = 2166136261
    for char in text.encode("utf-8"):
        value ^= char
        value = (value * 16777619) % (2**32)
    return value


def stable_hash(text: str) -> int:
    """Public alias of the FNV-1a hash used to key random streams."""
    return _stable_hash(text)


def optional_seed(seed: SeedLike, fallback: Optional[int] = None) -> SeedLike:
    """Return ``seed`` if given, otherwise ``fallback``."""
    return fallback if seed is None else seed
