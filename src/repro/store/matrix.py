"""Memory-mapped matrix store: the disk tier of the out-of-core offline phase.

A :class:`MatrixStore` is a directory of ``.npy`` files, one per matrix,
addressed by the **same content-hash cache keys** the in-memory
:mod:`repro.cache` uses (``sim:performance:k=5:<fingerprint>`` and friends).
Because keys are content fingerprints, the store inherits the cache's
invalidation story: a changed input produces a fresh key, and stale files
are purged explicitly by fingerprint fragment (:meth:`MatrixStore.evict_matching`,
the same hook the zoo-refresh path calls on the in-memory tiers).

Matrices are written through a :class:`MatrixWriter` — a writable
:class:`numpy.memmap` over a writer-unique temporary file, published with an
atomic :func:`os.replace` on :meth:`~MatrixWriter.commit` — and read back as
read-only memmaps (:meth:`MatrixStore.open`).  Row *tiles* of an open matrix
are served on demand (:func:`iter_row_blocks`): a slice of a memmap touches
only the pages it covers, so a reader holding an ``(n, n)`` similarity
matrix open costs RAM proportional to the rows it actually visits, not to
``n^2``.

Concurrent tile writers are safe by construction: every worker writes a
disjoint row range of one shared mapping.  Thread workers share the parent's
memmap object; forked process workers inherit the ``MAP_SHARED`` mapping, so
their writes land in the same page cache the parent flushes on commit.
"""

from __future__ import annotations

import os
import re
import tempfile
import threading
from pathlib import Path
from typing import Iterator, Optional, Tuple, Union

import numpy as np

from repro.utils.exceptions import ConfigurationError, DataError

#: Characters allowed in on-disk file names derived from cache keys —
#: identical to the sanitisation of :class:`repro.cache.store.DiskCache`,
#: so one key maps to the same file stem in both disk tiers.
_UNSAFE_FILENAME = re.compile(r"[^A-Za-z0-9_.=-]")

#: Default rows per on-demand tile when iterating a stored matrix.
DEFAULT_TILE_ROWS = 256


def iter_row_blocks(
    num_rows: int, block_rows: int
) -> Iterator[Tuple[int, int]]:
    """Yield ``(start, stop)`` row ranges covering ``num_rows``.

    >>> list(iter_row_blocks(5, 2))
    [(0, 2), (2, 4), (4, 5)]
    """
    if block_rows < 1:
        raise ConfigurationError("block_rows must be >= 1")
    for start in range(0, num_rows, block_rows):
        yield start, min(start + block_rows, num_rows)


class MatrixWriter:
    """One in-progress matrix: a writable memmap published atomically.

    Obtained from :meth:`MatrixStore.create`.  ``array`` is the writable
    ``(rows, cols)`` memmap; fill it (concurrently, in disjoint row ranges)
    and call :meth:`commit` to flush and atomically publish the file under
    its final name, or :meth:`abort` to discard it.
    """

    def __init__(self, tmp_path: Path, final_path: Path, shape, dtype) -> None:
        self.tmp_path = tmp_path
        self.final_path = final_path
        self.array = np.lib.format.open_memmap(
            tmp_path, mode="w+", dtype=np.dtype(dtype), shape=tuple(shape)
        )

    def commit(self) -> np.ndarray:
        """Flush, publish under the final name and return a read-only map."""
        self.array.flush()
        # Drop the writable mapping before the rename so no stale handle
        # keeps writing into the published file.
        del self.array
        os.replace(self.tmp_path, self.final_path)
        return np.load(self.final_path, mmap_mode="r")

    def abort(self) -> None:
        """Discard the in-progress file."""
        if hasattr(self, "array"):
            del self.array
        self.tmp_path.unlink(missing_ok=True)


class MatrixStore:
    """Directory of memory-mapped matrices keyed by cache keys.

    Parameters
    ----------
    root:
        Directory holding the ``.npy`` files (created on demand).

    >>> import numpy as np, tempfile
    >>> store = MatrixStore(tempfile.mkdtemp())
    >>> writer = store.create("sim:performance:k=5:demo", (2, 2))
    >>> writer.array[:] = np.eye(2)
    >>> published = writer.commit()
    >>> bool(np.array_equal(store.open("sim:performance:k=5:demo"), np.eye(2)))
    True
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ #
    def path_for(self, key: str) -> Path:
        """On-disk path of ``key`` (sanitised exactly like the disk cache)."""
        return self.root / (_UNSAFE_FILENAME.sub("_", key) + ".npy")

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def open(self, key: str) -> Optional[np.ndarray]:
        """Read-only memmap of the matrix stored under ``key`` (or ``None``).

        A corrupt or half-written file behaves like a miss, mirroring the
        disk cache: the entry is recomputed and overwritten on the next
        :meth:`create` + commit.
        """
        path = self.path_for(key)
        if not path.exists():
            return None
        try:
            return np.load(path, mmap_mode="r", allow_pickle=False)
        except (OSError, ValueError):
            return None

    def create(self, key: str, shape, dtype=float) -> MatrixWriter:
        """Start writing a matrix under ``key``; commit publishes atomically."""
        final = self.path_for(key)
        writer_id = f"{os.getpid()}-{threading.get_ident()}"
        tmp = final.with_name(f"{final.name}.tmp-{writer_id}")
        return MatrixWriter(tmp, final, shape, dtype)

    def scratch(self, shape, dtype=float, *, prefix: str = "scratch") -> "ScratchMatrix":
        """Anonymous writable memmap for transient working matrices.

        Used by the out-of-core clustering path for its mutable linkage
        working copy; the backing file is deleted on :meth:`ScratchMatrix.close`.
        """
        handle, path = tempfile.mkstemp(prefix=f"{prefix}-", suffix=".npy", dir=self.root)
        os.close(handle)
        return ScratchMatrix(Path(path), shape, dtype)

    # ------------------------------------------------------------------ #
    def evict(self, key: str) -> bool:
        """Delete the matrix stored under ``key``; returns whether it existed.

        POSIX semantics apply: a reader already holding the memmap keeps a
        valid mapping (the inode lives until the last map closes); only new
        :meth:`open` calls miss.
        """
        path = self.path_for(key)
        if path.exists():
            path.unlink(missing_ok=True)
            return True
        return False

    def evict_matching(self, fragment: str) -> int:
        """Delete every stored matrix whose file name contains ``fragment``.

        The zoo-refresh invalidation hook: fragments are sanitised exactly
        like keys, so a performance-matrix content fingerprint matches the
        artifacts derived from it.
        """
        sanitised = _UNSAFE_FILENAME.sub("_", fragment)
        count = 0
        for path in self.root.glob("*.npy"):
            if sanitised in path.name:
                path.unlink(missing_ok=True)
                count += 1
        return count

    def clear(self) -> None:
        """Delete every stored matrix (tmp files of dead writers included)."""
        for path in self.root.glob("*.npy*"):
            path.unlink(missing_ok=True)

    def bytes_stored(self) -> int:
        """Total size of the published matrices in the store."""
        return sum(path.stat().st_size for path in self.root.glob("*.npy"))


class ScratchMatrix:
    """Transient writable memmap whose backing file dies with it."""

    def __init__(self, path: Path, shape, dtype) -> None:
        self.path = path
        self.array = np.lib.format.open_memmap(
            path, mode="w+", dtype=np.dtype(dtype), shape=tuple(shape)
        )

    def close(self) -> None:
        """Drop the mapping and delete the backing file."""
        if hasattr(self, "array"):
            del self.array
        self.path.unlink(missing_ok=True)

    def __enter__(self) -> np.ndarray:
        return self.array

    def __exit__(self, *exc_info) -> None:
        self.close()


# --------------------------------------------------------------------------- #
# Process-default store (mirrors repro.cache's default-cache plumbing).
# --------------------------------------------------------------------------- #
_default_store: Optional[MatrixStore] = None
_default_lock = threading.Lock()


def get_store() -> MatrixStore:
    """Process-wide default store (lazily built).

    ``REPRO_STORE_DIR`` names a persistent directory; without it the store
    lives in a per-process temporary directory — spilled artifacts then
    survive for the process lifetime (enough to serve requests off them)
    but not across runs: the directory is removed at interpreter exit.
    """
    import atexit
    import shutil

    global _default_store
    with _default_lock:
        if _default_store is None:
            root = os.environ.get("REPRO_STORE_DIR")
            if root is None:
                root = tempfile.mkdtemp(prefix="repro-store-")
                atexit.register(shutil.rmtree, root, ignore_errors=True)
            _default_store = MatrixStore(root)
        return _default_store


def configure_store(root: Union[str, Path]) -> MatrixStore:
    """Point the process-default store at ``root`` (replacing the old one)."""
    global _default_store
    with _default_lock:
        _default_store = MatrixStore(root)
        return _default_store


def peek_store() -> Optional[MatrixStore]:
    """The default store if one was ever built — never builds one.

    Invalidation paths use this so evicting from a store that was never
    used does not create a temporary directory as a side effect.
    """
    with _default_lock:
        return _default_store


StoreLike = Union[MatrixStore, str, Path, None]


def resolve_store(store: StoreLike = None) -> MatrixStore:
    """Normalise a user-facing ``store`` argument into a :class:`MatrixStore`.

    ``None`` selects the process default; a path builds a store rooted
    there; a :class:`MatrixStore` passes through unchanged.
    """
    if store is None:
        return get_store()
    if isinstance(store, MatrixStore):
        return store
    if isinstance(store, (str, Path)):
        return MatrixStore(store)
    raise DataError(f"store must be a MatrixStore, path or None, got {store!r}")
