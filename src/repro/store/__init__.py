"""Out-of-core matrix store: memory-mapped offline artifacts.

The offline phase of the paper materialises dense ``(n, n)`` matrices —
Eq. 1 similarity and its distance conversion — that stop fitting in RAM
once a model zoo reaches checkpoint-hub scale.  This package provides the
disk tier those matrices spill to: a :class:`MatrixStore` of ``.npy`` files
addressed by the *same* content-hash cache keys as :mod:`repro.cache`,
written through atomically-published :class:`MatrixWriter` memmaps and read
back as read-only :class:`numpy.memmap` row tiles on demand.

Spilling is decided by :class:`repro.core.config.SimilarityConfig`
(``spill_threshold_bytes``) and performed by
:func:`repro.core.similarity.performance_similarity_matrix_ooc`; the
clustering layer then works directly on the memmapped artifacts without
densifying them.  ``docs/scaling.md`` documents the memory model and the
operational guidance for large zoos.

Environment variables
---------------------
``REPRO_STORE_DIR``
    Persistent root directory of the default store.  Unset, the store
    lives in a per-process temporary directory.
"""

from repro.store.matrix import (
    DEFAULT_TILE_ROWS,
    MatrixStore,
    MatrixWriter,
    ScratchMatrix,
    StoreLike,
    configure_store,
    get_store,
    iter_row_blocks,
    peek_store,
    resolve_store,
)

__all__ = [
    "DEFAULT_TILE_ROWS",
    "MatrixStore",
    "MatrixWriter",
    "ScratchMatrix",
    "StoreLike",
    "configure_store",
    "get_store",
    "iter_row_blocks",
    "peek_store",
    "resolve_store",
]
