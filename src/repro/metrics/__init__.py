"""Lightweight transferability (proxy) scores.

The coarse-recall phase needs a cheap estimate of how well a frozen
checkpoint will transfer to a target dataset without fine-tuning it.  The
paper uses LEEP; this subpackage also provides NCE, LogME, the H-score and a
kNN proxy so the choice of proxy score can be ablated (see the paper's
"future work" on combining multiple light-weight tasks).

All scorers share the same call contract (see
:class:`~repro.metrics.base.ProxyScorer`): given a pre-trained model and a
target dataset split, return a scalar where *higher means better expected
transfer*.  :func:`~repro.metrics.registry.get_scorer` resolves scorers by
name, and :func:`~repro.metrics.normalization.min_max_normalize` maps raw
scores of a candidate pool into ``[0, 1]`` as required by Eq. 2 of the paper.
"""

from repro.metrics.base import ProxyScorer
from repro.metrics.hscore import HScoreScorer, h_score
from repro.metrics.knn import KnnScorer, knn_transfer_accuracy
from repro.metrics.leep import LeepScorer, leep_score
from repro.metrics.logme import LogMeScorer, log_maximum_evidence
from repro.metrics.nce import NceScorer, nce_score
from repro.metrics.normalization import min_max_normalize, rank_normalize
from repro.metrics.registry import available_scorers, get_scorer, register_scorer

__all__ = [
    "ProxyScorer",
    "HScoreScorer",
    "h_score",
    "KnnScorer",
    "knn_transfer_accuracy",
    "LeepScorer",
    "leep_score",
    "LogMeScorer",
    "log_maximum_evidence",
    "NceScorer",
    "nce_score",
    "min_max_normalize",
    "rank_normalize",
    "available_scorers",
    "get_scorer",
    "register_scorer",
]
