"""H-score transferability estimate (Bao et al., ICIP 2019).

One of the proxy-score choices for the paper's coarse-recall phase
(Eq. 2/3); the LEEP default can be swapped for it via
``RecallConfig(proxy_score="hscore")`` (exercised by the proxy-score
ablation experiment).

The H-score measures how much of the representation's variance is explained
by the class-conditional means:

``H(f) = tr( cov(f)^-1 * cov_between(f) )``

where ``cov`` is the (regularised) feature covariance and ``cov_between`` the
covariance of the per-class mean features.  Higher is better: features whose
class means are well separated relative to their overall spread transfer
better to the target task.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.base import ProxyScorer
from repro.utils.exceptions import DataError


def h_score(features: np.ndarray, labels: np.ndarray, *, ridge: float = 1e-3) -> float:
    """H-score of ``features`` w.r.t. ``labels``."""
    features = np.asarray(features, dtype=float)
    labels = np.asarray(labels, dtype=int)
    if features.ndim != 2:
        raise DataError(f"features must be 2-d, got shape {features.shape}")
    if labels.ndim != 1 or labels.shape[0] != features.shape[0]:
        raise DataError("labels must be 1-d and aligned with features")
    if features.shape[0] < 2:
        raise DataError("H-score requires at least two samples")
    classes = np.unique(labels)
    if classes.size < 2:
        raise DataError("H-score requires at least two classes present")

    centred = features - features.mean(axis=0, keepdims=True)
    cov = (centred.T @ centred) / features.shape[0]
    cov += ridge * np.eye(cov.shape[0])

    class_mean_features = np.zeros_like(features)
    for cls in classes:
        mask = labels == cls
        class_mean_features[mask] = centred[mask].mean(axis=0)
    cov_between = (class_mean_features.T @ class_mean_features) / features.shape[0]

    return float(np.trace(np.linalg.solve(cov, cov_between)))


class HScoreScorer(ProxyScorer):
    """Proxy scorer wrapping :func:`h_score`."""

    name = "hscore"
    uses_source_posterior = False

    def score_arrays(
        self, inputs: np.ndarray, labels: np.ndarray, *, num_classes: int
    ) -> float:
        return h_score(inputs, labels)
