"""Score normalisation helpers.

Eq. 2 of the paper multiplies the (normalised) proxy score with the model's
prior average accuracy, so raw proxy scores — which live on different scales
for LEEP (negative log-likelihood), LogME (evidence) and kNN (accuracy) —
must first be mapped into ``[0, 1]`` across the candidate pool.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.utils.exceptions import DataError


def min_max_normalize(scores: Sequence[float]) -> np.ndarray:
    """Map ``scores`` linearly into ``[0, 1]``.

    A constant score vector maps to all ones (every candidate is equally
    matched, so the prior-accuracy term decides alone).
    """
    arr = np.asarray(list(scores), dtype=float)
    if arr.size == 0:
        raise DataError("cannot normalise an empty score list")
    if np.any(~np.isfinite(arr)):
        raise DataError("scores must be finite")
    low, high = float(arr.min()), float(arr.max())
    if high - low < 1e-12:
        return np.ones_like(arr)
    return (arr - low) / (high - low)


def rank_normalize(scores: Sequence[float]) -> np.ndarray:
    """Map ``scores`` to their normalised ranks in ``[0, 1]`` (ties averaged)."""
    arr = np.asarray(list(scores), dtype=float)
    if arr.size == 0:
        raise DataError("cannot normalise an empty score list")
    if arr.size == 1:
        return np.ones(1)
    order = np.argsort(arr, kind="stable")
    ranks = np.empty(arr.size, dtype=float)
    ranks[order] = np.arange(arr.size, dtype=float)
    # Average ranks of tied values.
    for value in np.unique(arr):
        mask = arr == value
        if mask.sum() > 1:
            ranks[mask] = ranks[mask].mean()
    return ranks / (arr.size - 1)


def normalize_score_dict(scores: Dict[str, float], *, method: str = "minmax") -> Dict[str, float]:
    """Normalise a name->score mapping, preserving keys."""
    keys = list(scores.keys())
    values = [scores[key] for key in keys]
    if method == "minmax":
        normalised = min_max_normalize(values)
    elif method == "rank":
        normalised = rank_normalize(values)
    else:
        raise DataError(f"unknown normalisation method {method!r}")
    return {key: float(value) for key, value in zip(keys, normalised)}
