"""LogME: Log of Maximum Evidence (You et al., ICML 2021).

One of the proxy-score choices for the paper's coarse-recall phase
(Eq. 2/3), selectable via ``RecallConfig(proxy_score="logme")`` and
compared against LEEP in the proxy-score ablation experiment.

LogME estimates transferability from the frozen *representation* (not the
source posterior): for each target class it fits a Bayesian linear model on
the encoder features with a one-vs-rest target and computes the log marginal
evidence, optimising the prior/noise precisions ``alpha``/``beta`` with the
standard fixed-point iteration.  The per-class evidences are averaged; higher
values mean the representation linearly explains the target labels better.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.base import ProxyScorer
from repro.utils.exceptions import DataError


def _evidence_for_target(
    features: np.ndarray,
    target: np.ndarray,
    singular_values_sq: np.ndarray,
    projected: np.ndarray,
    max_iter: int = 50,
    tol: float = 1e-4,
) -> float:
    """Log evidence of a Bayesian ridge fit of ``target`` on ``features``."""
    n, d = features.shape
    alpha, beta = 1.0, 1.0
    target_norm_sq = float(target @ target)
    evidence = -np.inf
    for _ in range(max_iter):
        gamma_terms = beta * singular_values_sq / (alpha + beta * singular_values_sq)
        gamma = float(np.sum(gamma_terms))
        # Posterior mean in the singular basis.
        mean_coeffs = beta * projected / (alpha + beta * singular_values_sq)
        mean_norm_sq = float(np.sum(mean_coeffs**2))
        residual = target_norm_sq - 2.0 * float(mean_coeffs @ projected) + float(
            np.sum(mean_coeffs**2 * singular_values_sq)
        )
        residual = max(residual, 1e-12)
        new_alpha = gamma / max(mean_norm_sq, 1e-12)
        new_beta = (n - gamma) / residual
        new_alpha = float(np.clip(new_alpha, 1e-8, 1e8))
        new_beta = float(np.clip(new_beta, 1e-8, 1e8))
        new_evidence = 0.5 * (
            n * np.log(new_beta)
            + d * np.log(new_alpha)
            - np.sum(np.log(new_alpha + new_beta * singular_values_sq))
            - new_beta * residual
            - new_alpha * mean_norm_sq
            - n * np.log(2.0 * np.pi)
        )
        if abs(new_alpha - alpha) < tol and abs(new_beta - beta) < tol:
            alpha, beta, evidence = new_alpha, new_beta, new_evidence
            break
        alpha, beta, evidence = new_alpha, new_beta, new_evidence
    return float(evidence) / n


def log_maximum_evidence(features: np.ndarray, labels: np.ndarray) -> float:
    """Average per-class LogME of ``features`` against one-vs-rest targets."""
    features = np.asarray(features, dtype=float)
    labels = np.asarray(labels, dtype=int)
    if features.ndim != 2:
        raise DataError(f"features must be 2-d, got shape {features.shape}")
    if labels.ndim != 1 or labels.shape[0] != features.shape[0]:
        raise DataError("labels must be 1-d and aligned with features")
    if features.shape[0] < 2:
        raise DataError("LogME requires at least two samples")
    classes = np.unique(labels)
    if classes.size < 2:
        raise DataError("LogME requires at least two classes present")

    # Shared SVD of the (centred) feature matrix.
    centred = features - features.mean(axis=0, keepdims=True)
    u, s, _ = np.linalg.svd(centred, full_matrices=False)
    singular_values_sq = s**2

    evidences = []
    for cls in classes:
        target = (labels == cls).astype(float)
        target = target - target.mean()
        projected = s * (u.T @ target)
        evidences.append(
            _evidence_for_target(centred, target, singular_values_sq, projected)
        )
    return float(np.mean(evidences))


class LogMeScorer(ProxyScorer):
    """Proxy scorer wrapping :func:`log_maximum_evidence`."""

    name = "logme"
    uses_source_posterior = False

    def score_arrays(
        self, inputs: np.ndarray, labels: np.ndarray, *, num_classes: int
    ) -> float:
        return log_maximum_evidence(inputs, labels)
