"""Registry resolving proxy scorers by name.

The coarse-recall configuration refers to its proxy score by a string
(``"leep"`` in the paper); the registry turns that string into a scorer
instance and lets downstream users plug in custom scorers without touching
the core pipeline.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.metrics.base import ProxyScorer
from repro.metrics.hscore import HScoreScorer
from repro.metrics.knn import KnnScorer
from repro.metrics.leep import LeepScorer
from repro.metrics.logme import LogMeScorer
from repro.metrics.nce import NceScorer
from repro.utils.exceptions import ConfigurationError

_FACTORIES: Dict[str, Callable[[], ProxyScorer]] = {
    "leep": LeepScorer,
    "nce": NceScorer,
    "logme": LogMeScorer,
    "hscore": HScoreScorer,
    "knn": KnnScorer,
}


def register_scorer(name: str, factory: Callable[[], ProxyScorer], *, overwrite: bool = False) -> None:
    """Register a custom proxy-scorer factory under ``name``."""
    if name in _FACTORIES and not overwrite:
        raise ConfigurationError(f"scorer {name!r} is already registered")
    _FACTORIES[name] = factory


def available_scorers() -> List[str]:
    """Names of every registered scorer."""
    return sorted(_FACTORIES)


def get_scorer(name: str) -> ProxyScorer:
    """Instantiate the scorer registered under ``name``."""
    if name not in _FACTORIES:
        raise ConfigurationError(
            f"unknown proxy scorer {name!r}; available: {available_scorers()}"
        )
    return _FACTORIES[name]()
