"""Registry resolving proxy scorers by name.

The coarse-recall configuration refers to its proxy score by a string
(``"leep"`` in the paper); the registry turns that string into a scorer
instance and lets downstream users plug in custom scorers without touching
the core pipeline.

:class:`CachedScorer` wraps any scorer with artifact-cache memoisation so
repeated scoring of the same (scorer, model, target data) triple — e.g.
across figures that share a target task, or across repeated experiment
runs with a disk cache — is served without re-running model inference.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.cache import (
    CacheLike,
    fingerprint_model,
    fingerprint_task,
    proxy_score_key,
    resolve_cache,
)
from repro.metrics.base import ProxyScorer
from repro.metrics.hscore import HScoreScorer
from repro.metrics.knn import KnnScorer
from repro.metrics.leep import LeepScorer
from repro.metrics.logme import LogMeScorer
from repro.metrics.nce import NceScorer
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import stable_hash

_FACTORIES: Dict[str, Callable[[], ProxyScorer]] = {
    "leep": LeepScorer,
    "nce": NceScorer,
    "logme": LogMeScorer,
    "hscore": HScoreScorer,
    "knn": KnnScorer,
}


def register_scorer(name: str, factory: Callable[[], ProxyScorer], *, overwrite: bool = False) -> None:
    """Register a custom proxy-scorer factory under ``name``."""
    if name in _FACTORIES and not overwrite:
        raise ConfigurationError(f"scorer {name!r} is already registered")
    _FACTORIES[name] = factory


def available_scorers() -> List[str]:
    """Names of every registered scorer."""
    return sorted(_FACTORIES)


class CachedScorer(ProxyScorer):
    """Artifact-cache memoisation wrapper around another proxy scorer.

    Scores are keyed by scorer name, model *weight* fingerprint, target-task
    data fingerprint, split and sample cap — two checkpoints sharing a name
    but not weights (e.g. hubs built with different seeds) never collide.
    To keep cached and freshly computed scores interchangeable, any
    subsampling inside the wrapped scorer uses a generator seeded
    deterministically from the cache key — the ``rng`` argument passed by
    callers is ignored and the caller's random stream is never consumed,
    whether or not a cache is currently enabled.

    >>> scorer = CachedScorer(LeepScorer())
    >>> scorer.name
    'leep'
    """

    def __init__(self, inner: ProxyScorer, *, cache: CacheLike = None) -> None:
        self.inner = inner
        self.name = inner.name
        self.uses_source_posterior = inner.uses_source_posterior
        self._cache = cache

    def score(
        self,
        model,
        task,
        *,
        split: str = "train",
        max_samples: Optional[int] = None,
        rng=None,
    ) -> float:
        """Memoised proxy score of ``model`` on ``task``.

        The key (and the deterministic subsampling seed derived from it) is
        computed even when caching is disabled, so results never depend on
        whether the cache happens to be on.
        """
        store = resolve_cache(self._cache)
        key = proxy_score_key(
            self.inner.name,
            fingerprint_model(model),
            fingerprint_task(task, split=split),
            split=split,
            max_samples=max_samples,
        )
        if store is not None:
            cached = store.get(key)
            if cached is not None:
                return float(cached)
        value = float(
            self.inner.score(
                model,
                task,
                split=split,
                max_samples=max_samples,
                rng=np.random.default_rng(stable_hash(key)),
            )
        )
        if store is not None:
            store.put(key, value)
        return value

    def score_arrays(self, inputs, labels, *, num_classes: int) -> float:
        """Delegate raw-array scoring to the wrapped scorer (uncached)."""
        return self.inner.score_arrays(inputs, labels, num_classes=num_classes)


def get_scorer(
    name: str,
    *,
    cached: bool = False,
    cache: CacheLike = None,
    deterministic: bool = False,
) -> ProxyScorer:
    """Instantiate the scorer registered under ``name``.

    With ``cached=True`` the scorer is wrapped in :class:`CachedScorer`,
    memoising scores in ``cache`` (the process default when ``None``).
    With ``deterministic=True`` (and ``cached=False``) the scorer is wrapped
    in a non-caching :class:`CachedScorer`, which still derives any
    subsampling seed from the content key instead of the caller's RNG —
    making scores independent of evaluation *order*, which is what lets the
    coarse-recall phase fan proxy scoring out over threads or processes and
    stay bitwise identical to the serial path.
    """
    if name not in _FACTORIES:
        raise ConfigurationError(
            f"unknown proxy scorer {name!r}; available: {available_scorers()}"
        )
    scorer = _FACTORIES[name]()
    if cached:
        return CachedScorer(scorer, cache=cache)
    if deterministic:
        return CachedScorer(scorer, cache=False)
    return scorer
