"""LEEP: Log Expected Empirical Prediction (Nguyen et al., ICML 2020).

LEEP measures transferability from a source model to a target classification
task without any training.  Given the source model's posterior ``theta(x)``
over its own source labels ``z`` for every target sample, it builds the
empirical joint ``P(y, z)`` between target labels and source labels, forms
the conditional ``P(y | z)``, and evaluates the average log-likelihood of the
"expected empirical predictor" ``sum_z P(y | z) * theta(x)_z``:

``LEEP = mean_i log( sum_z P(y_i | z) * theta(x_i)_z )``

The score is a negative log-likelihood-style quantity (always <= 0); larger
(closer to zero) values indicate better expected transfer.  This is the
proxy score the paper uses in its coarse-recall phase.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.base import ProxyScorer
from repro.utils.exceptions import DataError
from repro.utils.validation import check_labels, check_probability_matrix


def leep_score(source_posterior: np.ndarray, target_labels: np.ndarray) -> float:
    """Compute the LEEP score.

    Parameters
    ----------
    source_posterior:
        ``(n, z)`` matrix; row ``i`` is the source model's probability
        distribution over its source label space for target sample ``i``.
    target_labels:
        ``(n,)`` integer target labels.
    """
    theta = check_probability_matrix("source_posterior", source_posterior)
    labels = np.asarray(target_labels, dtype=int)
    if labels.ndim != 1 or labels.shape[0] != theta.shape[0]:
        raise DataError("target_labels must be 1-d and aligned with source_posterior")
    if labels.shape[0] == 0:
        raise DataError("LEEP requires at least one target sample")
    num_target = int(labels.max()) + 1
    labels = check_labels("target_labels", labels, num_target)

    n = theta.shape[0]
    # Empirical joint P(y, z): average source posterior mass per target label.
    joint = np.zeros((num_target, theta.shape[1]))
    for y in range(num_target):
        mask = labels == y
        if np.any(mask):
            joint[y] = theta[mask].sum(axis=0)
    joint /= n
    marginal_z = joint.sum(axis=0)
    # Conditional P(y | z); columns with zero marginal get a uniform fallback.
    conditional = np.zeros_like(joint)
    nonzero = marginal_z > 0
    conditional[:, nonzero] = joint[:, nonzero] / marginal_z[None, nonzero]
    if np.any(~nonzero):
        conditional[:, ~nonzero] = 1.0 / num_target

    expected = theta @ conditional.T  # (n, num_target)
    likelihood = expected[np.arange(n), labels]
    return float(np.mean(np.log(np.clip(likelihood, 1e-12, None))))


class LeepScorer(ProxyScorer):
    """Proxy scorer wrapping :func:`leep_score` (the paper's choice)."""

    name = "leep"
    uses_source_posterior = True

    def score_arrays(
        self, inputs: np.ndarray, labels: np.ndarray, *, num_classes: int
    ) -> float:
        return leep_score(inputs, labels)
