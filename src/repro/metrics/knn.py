"""kNN proxy: leave-one-out nearest-neighbour accuracy on frozen features.

Renggli et al. (CVPR 2022) approximate post-fine-tuning accuracy by running a
k-nearest-neighbour classifier on the frozen representation of the target
training data.  It is heavier than LEEP (distance matrix) but requires no
source head; the paper cites it as the main alternative proxy task.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.base import ProxyScorer
from repro.utils.exceptions import ConfigurationError, DataError


def knn_transfer_accuracy(
    features: np.ndarray, labels: np.ndarray, *, k: int = 5
) -> float:
    """Leave-one-out kNN accuracy of ``labels`` from ``features``."""
    features = np.asarray(features, dtype=float)
    labels = np.asarray(labels, dtype=int)
    if features.ndim != 2:
        raise DataError(f"features must be 2-d, got shape {features.shape}")
    if labels.ndim != 1 or labels.shape[0] != features.shape[0]:
        raise DataError("labels must be 1-d and aligned with features")
    n = features.shape[0]
    if n < 3:
        raise DataError("kNN proxy requires at least three samples")
    if k <= 0:
        raise ConfigurationError("k must be positive")
    k = min(k, n - 1)

    # Squared Euclidean distances with the diagonal excluded.
    squared_norms = np.sum(features**2, axis=1)
    distances = squared_norms[:, None] + squared_norms[None, :] - 2.0 * features @ features.T
    np.fill_diagonal(distances, np.inf)

    neighbour_idx = np.argpartition(distances, kth=k - 1, axis=1)[:, :k]
    neighbour_labels = labels[neighbour_idx]
    num_classes = int(labels.max()) + 1
    correct = 0
    for i in range(n):
        votes = np.bincount(neighbour_labels[i], minlength=num_classes)
        if np.argmax(votes) == labels[i]:
            correct += 1
    return correct / n


class KnnScorer(ProxyScorer):
    """Proxy scorer wrapping :func:`knn_transfer_accuracy`."""

    name = "knn"
    uses_source_posterior = False

    def __init__(self, k: int = 5) -> None:
        if k <= 0:
            raise ConfigurationError("k must be positive")
        self.k = int(k)

    def score_arrays(
        self, inputs: np.ndarray, labels: np.ndarray, *, num_classes: int
    ) -> float:
        return knn_transfer_accuracy(inputs, labels, k=self.k)
