"""Common interface of proxy (transferability) scorers.

Proxy scores are the lightweight signal of the paper's coarse-recall phase
(Section III): each cluster representative is scored on the target dataset
without any fine-tuning, entering the Eq. 2/3 recall score and charged at
half an epoch-equivalent per inference in the Table V/VI cost accounting.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.data.splits import DataSplit
from repro.data.tasks import ClassificationTask
from repro.utils.exceptions import DataError
from repro.zoo.models import PretrainedModel


class ProxyScorer:
    """Base class of all proxy scorers.

    Subclasses implement :meth:`score_arrays` on raw arrays; the public
    :meth:`score` method handles extracting the right split and the model's
    representation/posterior, so call sites only pass a model and a task.
    Higher scores always mean better expected transfer.
    """

    #: Short identifier used by the registry and by experiment configs.
    name: str = "base"
    #: Whether the scorer consumes the source-head posterior (``True``) or
    #: the encoder representation (``False``).
    uses_source_posterior: bool = False

    def score(
        self,
        model: PretrainedModel,
        task: ClassificationTask,
        *,
        split: str = "train",
        max_samples: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Proxy score of ``model`` on ``task``.

        Parameters
        ----------
        model, task:
            Checkpoint and target dataset.
        split:
            Which split of the target dataset to use (``train`` by default —
            proxy scores are computed on labelled target training data).
        max_samples:
            Optional cap on the number of target samples (the paper notes
            proxy scores need only a few hundred items).
        rng:
            Generator used only when subsampling.
        """
        data = self._get_split(task, split)
        features, labels = data.features, data.labels
        if max_samples is not None and max_samples < len(data):
            generator = rng if rng is not None else np.random.default_rng(0)
            idx = generator.choice(len(data), size=max_samples, replace=False)
            features, labels = features[idx], labels[idx]
        if self.uses_source_posterior:
            inputs = model.source_posterior(features)
        else:
            inputs = model.encode(features)
        return float(self.score_arrays(inputs, labels, num_classes=task.num_classes))

    def score_arrays(
        self, inputs: np.ndarray, labels: np.ndarray, *, num_classes: int
    ) -> float:
        """Score from raw arrays; implemented by subclasses."""
        raise NotImplementedError

    @staticmethod
    def _get_split(task: ClassificationTask, split: str) -> DataSplit:
        try:
            return {"train": task.train, "val": task.val, "test": task.test}[split]
        except KeyError:
            raise DataError(f"unknown split {split!r}; expected train/val/test") from None
