"""Negative Conditional Entropy (NCE) transferability estimate.

NCE (Tran et al., 2019) measures transferability as the negative conditional
entropy of the target label given the source model's *hard* prediction on
each target sample: ``NCE = -H(Y | Z)``.  Like LEEP it requires no training;
higher (closer to zero) values mean the source predictions already carry
most of the information needed to separate the target classes.

One of the proxy-score choices for the paper's coarse-recall phase
(Eq. 2/3), selectable via ``RecallConfig(proxy_score="nce")`` and compared
against LEEP in the proxy-score ablation experiment.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.base import ProxyScorer
from repro.utils.exceptions import DataError
from repro.utils.validation import check_probability_matrix


def nce_score(source_posterior: np.ndarray, target_labels: np.ndarray) -> float:
    """Negative conditional entropy ``-H(Y | Z)`` in nats."""
    theta = check_probability_matrix("source_posterior", source_posterior)
    labels = np.asarray(target_labels, dtype=int)
    if labels.ndim != 1 or labels.shape[0] != theta.shape[0]:
        raise DataError("target_labels must be 1-d and aligned with source_posterior")
    if labels.shape[0] == 0:
        raise DataError("NCE requires at least one target sample")
    source_pred = np.argmax(theta, axis=1)
    n = labels.shape[0]
    num_source = theta.shape[1]
    num_target = int(labels.max()) + 1

    joint = np.zeros((num_source, num_target))
    for z, y in zip(source_pred, labels):
        joint[z, y] += 1.0
    joint /= n
    marginal_z = joint.sum(axis=1)

    conditional_entropy = 0.0
    for z in range(num_source):
        if marginal_z[z] <= 0:
            continue
        conditional = joint[z] / marginal_z[z]
        nonzero = conditional > 0
        conditional_entropy -= marginal_z[z] * float(
            np.sum(conditional[nonzero] * np.log(conditional[nonzero]))
        )
    return -conditional_entropy


class NceScorer(ProxyScorer):
    """Proxy scorer wrapping :func:`nce_score`."""

    name = "nce"
    uses_source_posterior = True

    def score_arrays(
        self, inputs: np.ndarray, labels: np.ndarray, *, num_classes: int
    ) -> float:
        return nce_score(inputs, labels)
