"""Approximate nearest-neighbor search over model performance vectors.

A checkpoint-hub-scale zoo makes two online paths linear in the repository
size: Eq. 4 score propagation sums over *every* representative, and
incremental placement compares an added model against *every* cluster.
This package provides a small, numpy-only IVF (inverted-file) index over
model performance vectors so both paths can shortlist candidates instead
of scanning full rows — opt-in via
:attr:`repro.core.config.RecallConfig.ann_shortlist` and
:attr:`repro.core.config.ClusteringConfig.ann_placement`; the ``None``
defaults keep the exact full scans bitwise-unchanged.

Guarantees (enforced by ``tests/ann/``):

* candidate distances are always **exact** — the index only prunes which
  vectors are compared, never approximates the comparison itself;
* ``nprobe >= nlist`` (or an index with one list) returns results
  identical to :func:`exact_search`;
* when pruning leaves fewer than ``k`` candidates, :meth:`IVFIndex.search`
  transparently falls back to the exact full scan, so a query can never
  receive fewer neighbors than exact search would return;
* :func:`recall_at_k` measures the achieved recall against
  :func:`exact_search` so callers can size ``nprobe`` empirically
  (``benchmarks/bench_cluster_scaling.py`` gates a floor in CI).
"""

from repro.ann.ivf import IVFIndex, exact_search, recall_at_k

__all__ = ["IVFIndex", "exact_search", "recall_at_k"]
