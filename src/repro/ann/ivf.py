"""Numpy IVF index: k-means coarse quantizer + exact in-list distances.

The index partitions the database vectors into ``nlist`` Voronoi cells of a
k-means coarse quantizer (:class:`repro.cluster.kmeans.KMeans`, the same
from-scratch implementation the clustering layer uses).  A query visits the
``nprobe`` cells whose centroids are nearest, computes **exact** Euclidean
distances to every vector in those cells, and returns the ``k`` best
ordered by ``(distance, index)`` — the same total order
:func:`exact_search` uses, so results are directly comparable.

Design choices, sized for the model-zoo workload (``n`` up to a few tens
of thousands, ``d`` tens of benchmarks):

* distances are exact (no product quantization): at these dimensions the
  win is pruning the candidate set, not compressing it;
* ``nlist`` defaults to ``round(sqrt(n))`` — the standard IVF balance
  between quantizer cost (``O(nlist)`` per query) and list length
  (``O(n / nlist)`` per probed cell);
* queries that end up with fewer than ``k`` candidates fall back to the
  exact full scan rather than returning a short result.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.kmeans import KMeans
from repro.utils.exceptions import ConfigurationError, DataError

__all__ = ["IVFIndex", "exact_search", "recall_at_k"]


def _as_matrix(vectors: np.ndarray) -> np.ndarray:
    matrix = np.asarray(vectors, dtype=float)
    if matrix.ndim != 2:
        raise DataError(f"vectors must be 2-d (n, d), got shape {matrix.shape}")
    if matrix.shape[0] == 0:
        raise DataError("cannot index zero vectors")
    if not np.all(np.isfinite(matrix)):
        raise DataError("vectors must be finite")
    return matrix


def _top_k(distances: np.ndarray, ids: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Best ``k`` of ``(distances, ids)`` ordered by ``(distance, id)``."""
    order = np.lexsort((ids, distances))[: min(k, ids.size)]
    return ids[order], distances[order]


def exact_search(
    vectors: np.ndarray, query: np.ndarray, k: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Brute-force ``k`` nearest rows of ``vectors`` to ``query``.

    Returns ``(ids, distances)`` sorted ascending by ``(distance, id)`` —
    the reference ordering every :class:`IVFIndex` result is measured
    against.
    """
    matrix = _as_matrix(vectors)
    query = np.asarray(query, dtype=float).reshape(-1)
    if query.shape[0] != matrix.shape[1]:
        raise DataError(
            f"query dimension {query.shape[0]} does not match index dimension "
            f"{matrix.shape[1]}"
        )
    deltas = matrix - query
    distances = np.sqrt(np.einsum("ij,ij->i", deltas, deltas))
    return _top_k(distances, np.arange(matrix.shape[0]), k)


class IVFIndex:
    """Inverted-file ANN index with exact candidate distances.

    Parameters
    ----------
    vectors:
        Database of shape ``(n, d)`` — one row per item (for the model
        zoo: one performance vector per model).
    nlist:
        Number of coarse cells; default ``round(sqrt(n))`` (at least 1,
        at most ``n``).
    nprobe:
        Default number of cells visited per query (overridable per
        search); default ``max(1, nlist // 4)``.
    seed:
        Seed of the k-means quantizer — indexes built from the same
        vectors and seed are identical.
    """

    def __init__(
        self,
        vectors: np.ndarray,
        *,
        nlist: Optional[int] = None,
        nprobe: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        self._vectors = _as_matrix(vectors).copy()
        n = self._vectors.shape[0]
        if nlist is None:
            nlist = max(1, int(round(np.sqrt(n))))
        if not 1 <= nlist <= n:
            raise ConfigurationError(f"nlist must be in [1, {n}], got {nlist}")
        self.nlist = int(nlist)
        if nprobe is None:
            nprobe = max(1, self.nlist // 4)
        if nprobe < 1:
            raise ConfigurationError("nprobe must be >= 1")
        self.nprobe = int(nprobe)

        if self.nlist == 1:
            self.centroids = self._vectors.mean(axis=0, keepdims=True)
            assignments = np.zeros(n, dtype=int)
        else:
            quantizer = KMeans(self.nlist, rng=np.random.default_rng(seed))
            assignments = quantizer.fit_predict(self._vectors)
            self.centroids = quantizer.centers_
        self._lists: List[List[int]] = [[] for _ in range(self.nlist)]
        for index, cell in enumerate(assignments.tolist()):
            self._lists[cell].append(index)

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._vectors.shape[0]

    @property
    def dimension(self) -> int:
        """Vector dimensionality ``d``."""
        return self._vectors.shape[1]

    def add(self, vector: np.ndarray) -> int:
        """Append one vector to its nearest cell; returns its new id.

        This is the incremental-placement hook: an added zoo model is
        indexed in ``O(nlist + d)`` without rebuilding the quantizer.
        """
        vector = np.asarray(vector, dtype=float).reshape(-1)
        if vector.shape[0] != self.dimension:
            raise DataError(
                f"vector dimension {vector.shape[0]} does not match index "
                f"dimension {self.dimension}"
            )
        if not np.all(np.isfinite(vector)):
            raise DataError("vector must be finite")
        cell = int(
            np.argmin(np.linalg.norm(self.centroids - vector, axis=1))
        )
        new_id = self._vectors.shape[0]
        self._vectors = np.vstack([self._vectors, vector[None, :]])
        self._lists[cell].append(new_id)
        return new_id

    def search(
        self, query: np.ndarray, k: int, *, nprobe: Optional[int] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``k`` approximate nearest neighbors of ``query``.

        Returns ``(ids, distances)`` sorted by ``(distance, id)``.
        Distances to every candidate are exact; only the candidate set is
        approximate.  With ``nprobe >= nlist`` every vector is a
        candidate and the result equals :func:`exact_search`; with fewer
        probes, a candidate set smaller than ``k`` triggers the exact
        full-scan fallback so the result is never shorter than exact
        search's.
        """
        if k < 1:
            raise ConfigurationError("k must be >= 1")
        query = np.asarray(query, dtype=float).reshape(-1)
        if query.shape[0] != self.dimension:
            raise DataError(
                f"query dimension {query.shape[0]} does not match index "
                f"dimension {self.dimension}"
            )
        probes = self.nprobe if nprobe is None else int(nprobe)
        if probes < 1:
            raise ConfigurationError("nprobe must be >= 1")
        probes = min(probes, self.nlist)

        centroid_distance = np.linalg.norm(self.centroids - query, axis=1)
        cells = np.lexsort((np.arange(self.nlist), centroid_distance))[:probes]
        candidates = [i for cell in cells.tolist() for i in self._lists[cell]]
        if len(candidates) < k:
            # Lossless fallback: pruning left too few candidates.
            return exact_search(self._vectors, query, k)
        ids = np.asarray(candidates, dtype=int)
        deltas = self._vectors[ids] - query
        distances = np.sqrt(np.einsum("ij,ij->i", deltas, deltas))
        return _top_k(distances, ids, k)


def recall_at_k(
    index: IVFIndex,
    queries: Sequence[np.ndarray],
    k: int,
    *,
    nprobe: Optional[int] = None,
) -> float:
    """Mean fraction of the exact top-``k`` retrieved by ``index.search``.

    The exact reference is :func:`exact_search` over the index's own
    database, so a freshly built index can be validated without keeping a
    second copy of the vectors.
    """
    queries = np.asarray(queries, dtype=float)
    if queries.ndim == 1:
        queries = queries[None, :]
    if queries.shape[0] == 0:
        raise DataError("recall_at_k requires at least one query")
    total = 0.0
    for query in queries:
        exact_ids, _ = exact_search(index._vectors, query, k)
        found_ids, _ = index.search(query, k, nprobe=nprobe)
        total += len(set(exact_ids.tolist()) & set(found_ids.tolist())) / exact_ids.size
    return total / queries.shape[0]
