"""Artifact cache: content-hash-keyed memoisation of expensive matrices.

The offline phase of the paper (Eq. 1 similarity → distance conversion →
clustering) and the proxy-metric scores of the coarse-recall phase are pure
functions of their inputs, so the library memoises them behind one
process-wide :class:`~repro.cache.store.ArtifactCache`:

* similarity matrices — keyed by the performance matrix's content
  fingerprint plus the similarity method and ``top_k``;
* distance matrices — keyed by the similarity key they derive from;
* proxy scores — keyed by scorer name, model *weight* fingerprint (so
  same-named checkpoints from differently seeded hubs never collide) and
  target-task data fingerprint (opt-in, see
  ``RecallConfig.cache_proxy_scores``).

Because keys are content hashes, invalidation is automatic: change any
input and the old entry is simply never hit again.  See ``docs/caching.md``
for the full key catalogue and configuration story.

Environment variables
---------------------
``REPRO_CACHE``
    ``"off"``/``"0"``/``"false"`` disables the default cache entirely.
``REPRO_CACHE_DIR``
    Enables the persistent on-disk tier under the given directory.
``REPRO_CACHE_MAX_ENTRIES``
    Bound of the in-memory LRU tier (default 64 artifacts).

Typical use::

    from repro import cache

    cache.configure(max_entries=128)          # resize the default cache
    stats = cache.cache_stats()["memory"]     # {'hits': ..., 'misses': ...}
    cache.clear_cache()                       # drop all cached artifacts
"""

from __future__ import annotations

import os
import threading
from typing import Optional, Union

from repro.cache.keys import (
    distance_key,
    fingerprint_array,
    fingerprint_bytes,
    fingerprint_matrix,
    fingerprint_model,
    fingerprint_task,
    fingerprint_text,
    plan_key,
    proxy_score_key,
    session_key,
    similarity_key,
    text_similarity_key,
)
from repro.cache.store import (
    ArtifactCache,
    CacheStats,
    DiskCache,
    LRUCache,
    sweep_stale_temp_files,
)

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "DiskCache",
    "LRUCache",
    "cache_stats",
    "clear_cache",
    "configure",
    "distance_key",
    "fingerprint_array",
    "fingerprint_bytes",
    "fingerprint_matrix",
    "fingerprint_model",
    "fingerprint_task",
    "fingerprint_text",
    "get_cache",
    "plan_key",
    "proxy_score_key",
    "resolve_cache",
    "session_key",
    "similarity_key",
    "sweep_stale_temp_files",
    "text_similarity_key",
]

#: Truthy spellings of "disable the cache" accepted by ``REPRO_CACHE``.
_OFF_VALUES = ("off", "0", "false", "no", "disabled")

_default_cache: Optional[ArtifactCache] = None
_default_lock = threading.Lock()


def _cache_from_env() -> ArtifactCache:
    enabled = os.environ.get("REPRO_CACHE", "on").lower() not in _OFF_VALUES
    disk_dir = os.environ.get("REPRO_CACHE_DIR") or None
    try:
        # Clamp to >= 1: LRUCache rejects smaller bounds, and failing lazily
        # deep inside the first cached computation would hide the bad env
        # var (REPRO_CACHE=off is the switch for "no caching").
        max_entries = max(1, int(os.environ.get("REPRO_CACHE_MAX_ENTRIES", "64")))
    except ValueError:
        max_entries = 64
    return ArtifactCache(max_entries=max_entries, disk_dir=disk_dir, enabled=enabled)


def get_cache() -> ArtifactCache:
    """Return the process-wide default :class:`ArtifactCache` (lazily built)."""
    global _default_cache
    with _default_lock:
        if _default_cache is None:
            _default_cache = _cache_from_env()
        return _default_cache


def configure(
    *,
    enabled: Optional[bool] = None,
    max_entries: Optional[int] = None,
    disk_dir: Optional[str] = None,
) -> ArtifactCache:
    """Replace the default cache with one built from the given settings.

    Unspecified settings fall back to the current defaults (environment
    variables included); existing cached entries are dropped.
    """
    global _default_cache
    with _default_lock:
        base = _default_cache if _default_cache is not None else _cache_from_env()
        new_enabled = base.enabled if enabled is None else bool(enabled)
        new_max = base.memory.max_entries if max_entries is None else int(max_entries)
        new_disk = (
            (str(base.disk.directory) if base.disk is not None else None)
            if disk_dir is None
            else disk_dir
        )
        _default_cache = ArtifactCache(
            max_entries=new_max, disk_dir=new_disk, enabled=new_enabled
        )
        return _default_cache


def clear_cache() -> None:
    """Drop every entry of the default cache (no-op if never built)."""
    with _default_lock:
        if _default_cache is not None:
            _default_cache.clear()


def cache_stats() -> dict:
    """Per-tier statistics of the default cache."""
    return get_cache().stats_report()


CacheLike = Union[ArtifactCache, bool, None]


def resolve_cache(cache: CacheLike = None) -> Optional[ArtifactCache]:
    """Normalise a user-facing ``cache`` argument into a usable cache.

    ``None`` or ``True`` select the process default, ``False`` opts out of
    caching for this call, and an :class:`ArtifactCache` instance is used
    as-is.  A resolved-but-disabled cache behaves exactly like ``False``.
    """
    if cache is False:
        return None
    if cache is None or cache is True:
        resolved = get_cache()
    elif isinstance(cache, ArtifactCache):
        resolved = cache
    else:
        raise TypeError(f"cache must be an ArtifactCache, bool or None, got {cache!r}")
    return resolved if resolved.enabled else None
