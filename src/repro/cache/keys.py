"""Content-hash fingerprints and cache-key construction.

Every cached artifact is keyed by a *content fingerprint* of its inputs,
never by object identity: two :class:`~repro.core.performance.PerformanceMatrix`
instances with identical names and values map to the same key, and any
change to the underlying data (a new checkpoint, a re-run offline phase)
automatically produces a fresh key.  Invalidation is therefore implicit —
stale entries are simply never looked up again and age out of the LRU tier.

Keys are short printable strings of the form ``"<kind>:<param>=...:<hash>"``
so they can double as on-disk file names (see
:class:`~repro.cache.store.DiskCache`).
"""

from __future__ import annotations

import hashlib
import weakref
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from repro.utils.exceptions import DataError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.performance import PerformanceMatrix
    from repro.data.tasks import ClassificationTask
    from repro.zoo.models import PretrainedModel

#: Number of hex digits kept from the SHA-256 digest.  64 bits of digest
#: make accidental collisions vanishingly unlikely at any realistic cache
#: size while keeping keys short enough for file names and log lines.
_DIGEST_CHARS = 16

#: Field separator inside hashed payloads — a control character that cannot
#: appear in model/dataset names, so ``["ab", "c"]`` and ``["a", "bc"]``
#: hash differently.
_SEP = "\x1f"


def fingerprint_bytes(payload: bytes) -> str:
    """Short SHA-256 hex digest of ``payload``.

    >>> fingerprint_bytes(b"hello")
    '2cf24dba5fb0a30e'
    """
    return hashlib.sha256(payload).hexdigest()[:_DIGEST_CHARS]


def fingerprint_text(*parts: str) -> str:
    """Fingerprint of a sequence of strings (order-sensitive)."""
    joined = _SEP.join(parts)
    return fingerprint_bytes(joined.encode("utf-8"))


def fingerprint_array(array: np.ndarray) -> str:
    """Fingerprint of a numpy array's dtype, shape and contents.

    >>> import numpy as np
    >>> a = np.arange(6.0).reshape(2, 3)
    >>> fingerprint_array(a) == fingerprint_array(a.copy())
    True
    >>> fingerprint_array(a) == fingerprint_array(a.T)
    False
    """
    arr = np.ascontiguousarray(array)
    header = f"{arr.dtype.str}{_SEP}{arr.shape}{_SEP}".encode("utf-8")
    return fingerprint_bytes(header + arr.tobytes())


def fingerprint_matrix(matrix: "PerformanceMatrix") -> str:
    """Content fingerprint of a :class:`PerformanceMatrix`.

    Covers the dataset names, model names and the accuracy values — the
    exact inputs of the Eq. 1 similarity.  Learning curves are deliberately
    excluded: they do not influence similarity/distance matrices, so two
    matrices differing only in curves share cached artifacts.
    """
    names = fingerprint_text(*matrix.dataset_names, _SEP, *matrix.model_names)
    return fingerprint_text(names, fingerprint_array(matrix.values))


#: Per-task fingerprint memo (task object -> split -> fingerprint).  Scoring
#: one task against many models re-fingerprints the same split repeatedly;
#: task data is immutable once built, so hashing it once per object is safe.
_TASK_FINGERPRINTS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def fingerprint_task(task: "ClassificationTask", *, split: str = "train") -> str:
    """Content fingerprint of a classification task's identity and data.

    Hashes the task name, modality, class count and the features/labels of
    ``split`` — everything a proxy scorer consumes.  The split must match
    the one the consumer reads (proxy scores default to ``"train"``) so a
    re-split task with identical training data but different validation
    data fingerprints differently for ``split="val"``.  Fingerprints are
    memoised per task object (tasks are immutable once built), so scoring
    one task against a whole repository hashes its data only once.
    """
    memo: Dict[str, str] = _TASK_FINGERPRINTS.setdefault(task, {})
    if split in memo:
        return memo[split]
    spec = task.spec
    try:
        data = {"train": task.train, "val": task.val, "test": task.test}[split]
    except KeyError:
        raise DataError(f"unknown split {split!r}; expected train/val/test") from None
    fingerprint = fingerprint_text(
        spec.name,
        spec.modality,
        str(spec.num_classes),
        split,
        fingerprint_array(data.features),
        fingerprint_array(data.labels),
    )
    memo[split] = fingerprint
    return fingerprint


def fingerprint_model(model: "PretrainedModel") -> str:
    """Content fingerprint of a simulated checkpoint's behaviour.

    Covers the name plus everything that determines the encoder's output —
    the concept gains, the projection weights and the per-input noise key —
    so two hubs built with different seeds never share proxy-score cache
    entries even though their checkpoints carry the same names.
    """
    return fingerprint_text(
        model.name,
        model.modality,
        str(model._noise_key),
        fingerprint_array(model.concept_gains),
        fingerprint_array(model.projection),
    )


# --------------------------------------------------------------------------- #
# Key constructors — one per cached artifact kind.
# --------------------------------------------------------------------------- #
def similarity_key(
    matrix: "PerformanceMatrix", *, method: str = "performance", top_k: int = 5
) -> str:
    """Cache key of a model-similarity matrix."""
    return f"sim:{method}:k={top_k}:{fingerprint_matrix(matrix)}"


def text_similarity_key(model_cards: dict) -> str:
    """Cache key of a text-baseline similarity matrix (model-card content)."""
    parts = [part for name in model_cards for part in (name, model_cards[name])]
    return f"sim:text-cards:{fingerprint_text(*parts)}"


def distance_key(similarity_cache_key: str) -> str:
    """Cache key of the distance matrix derived from a cached similarity."""
    return f"dist:{similarity_cache_key}"


def session_key(
    zoo_version: str,
    model_fingerprint: str,
    task_fingerprint: str,
    *,
    epochs: Optional[int] = None,
) -> str:
    """Key of one fine-tuning session lineage (or checkpoint) in a pool.

    :class:`repro.sched.pool.SessionPool` memoises partially-trained
    fine-tuning sessions under the epoch-free form of this key — a session
    advances in place, so the entry always holds the *latest* checkpoint
    of the ``(zoo_version, model, task)`` lineage.  With ``epochs`` the key
    names one specific checkpoint (``zoo_version, model, task-fingerprint,
    epochs_trained``), which is how pool entries are reported in stats and
    logs.  ``zoo_version`` is part of the identity so a zoo refresh
    implicitly invalidates every session of the superseded version.
    """
    base = f"session:zoo={zoo_version}:{model_fingerprint}:{task_fingerprint}"
    if epochs is None:
        return base
    return f"{base}:e={epochs}"


def plan_key(
    zoo_version: str,
    task_fingerprint: str,
    *,
    method: str,
    tuner_fingerprint: str,
    top_k: Optional[int] = None,
) -> str:
    """Key of one selection request's persisted plan journal.

    Identifies the request by everything that determines its answer: the
    zoo version (candidate set and offline artifacts), the target task's
    data fingerprint, the selection method and the ``top_k`` recall width,
    plus a fingerprint of the fine-tuner configuration (two deployments
    with different learning rates must never share journals).  The stage
    *schedule* is deliberately excluded: raising a finished request's
    epoch budget must reopen the same journal so the longer run continues
    from the journaled rungs instead of restarting.
    """
    return (
        f"plan:zoo={zoo_version}:{method}:k={top_k}:"
        f"{tuner_fingerprint}:{task_fingerprint}"
    )


def proxy_score_key(
    scorer_name: str,
    model_fingerprint: str,
    task_fingerprint: str,
    *,
    split: str = "train",
    max_samples: Optional[int] = None,
) -> str:
    """Cache key of one proxy (transferability) score.

    ``model_fingerprint`` should come from :func:`fingerprint_model` so the
    key tracks the checkpoint's weights, not just its name.
    """
    return (
        f"proxy:{scorer_name}:{split}:n={max_samples}:"
        f"{model_fingerprint}:{task_fingerprint}"
    )
