"""Cache stores: in-memory LRU, optional on-disk tier, and the facade.

Three layers, composed by :class:`ArtifactCache`:

* :class:`LRUCache` — thread-safe, bounded, in-memory; the hot tier every
  lookup hits first.
* :class:`DiskCache` — optional persistent tier storing numpy arrays as
  ``.npy`` files and scalars as ``.json``; survives process restarts so
  repeated experiment runs reuse the offline work.
* :class:`ArtifactCache` — the facade the library talks to; promotes disk
  hits into memory and tracks :class:`CacheStats`.

Stored arrays are defensively copied and frozen (``writeable=False``) on
``put`` and copied again on ``get``, so no caller can corrupt a cached
artifact for later consumers.
"""

from __future__ import annotations

import json
import os
import re
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Union

import numpy as np

from repro.utils.exceptions import ConfigurationError

#: Characters allowed in on-disk file names derived from cache keys.
_UNSAFE_FILENAME = re.compile(r"[^A-Za-z0-9_.=-]")

#: Writer-unique temp suffix appended before an atomic publish:
#: ``<name>.tmp-<pid>-<thread>``.
_TMP_PATTERN = re.compile(r"\.tmp-(\d+)-\d+$")


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (conservatively true on EPERM)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def sweep_stale_temp_files(directory: Union[str, Path]) -> int:
    """Remove orphaned ``*.tmp-<pid>-<tid>`` files of dead writers.

    A writer killed between creating its temp file and the atomic
    :func:`os.replace` publish leaves the temp file behind forever; this
    sweep reclaims them.  Temp files of still-running processes are left
    alone — a concurrent writer sharing the directory may be mid-publish,
    and its eventual replace is atomic.  Returns the number removed.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return 0
    removed = 0
    for path in directory.iterdir():
        match = _TMP_PATTERN.search(path.name)
        if match is None:
            continue
        if _pid_alive(int(match.group(1))):
            continue
        try:
            path.unlink()
            removed += 1
        except OSError:
            pass  # racing sweeper/writer; the file is gone or owned
    return removed


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one cache instance.

    >>> stats = CacheStats()
    >>> stats.hits, stats.misses
    (0, 0)
    >>> stats.record_miss(); stats.record_hit()
    >>> stats.hit_rate
    0.5
    """

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0

    def record_hit(self) -> None:
        """Count one successful lookup."""
        self.hits += 1

    def record_miss(self) -> None:
        """Count one failed lookup."""
        self.misses += 1

    def record_put(self) -> None:
        """Count one store."""
        self.puts += 1

    def record_eviction(self, count: int = 1) -> None:
        """Count ``count`` LRU evictions."""
        self.evictions += count

    @property
    def lookups(self) -> int:
        """Total lookups (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never queried)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def reset(self) -> None:
        """Zero every counter."""
        self.hits = self.misses = self.puts = self.evictions = 0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict snapshot for logging/reporting."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


def _freeze(value: Any) -> Any:
    """Copy-and-freeze arrays so cached payloads are immutable."""
    if isinstance(value, np.ndarray):
        frozen = value.copy()
        frozen.setflags(write=False)
        return frozen
    return value


def _thaw(value: Any) -> Any:
    """Return a caller-owned (writable) view of a cached payload."""
    if isinstance(value, np.ndarray):
        return value.copy()
    return value


class LRUCache:
    """Bounded, thread-safe, least-recently-used in-memory cache.

    Parameters
    ----------
    max_entries:
        Maximum number of artifacts kept; the least recently *used* entry
        is evicted first once the bound is reached.

    >>> cache = LRUCache(max_entries=2)
    >>> cache.put("a", 1.0); cache.put("b", 2.0)
    >>> cache.get("a")
    1.0
    >>> cache.put("c", 3.0)   # evicts "b", the least recently used
    >>> cache.get("b") is None
    True
    >>> sorted(cache.keys())
    ['a', 'c']
    """

    def __init__(self, max_entries: int = 64) -> None:
        if max_entries < 1:
            raise ConfigurationError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def get(self, key: str) -> Optional[Any]:
        """Return the cached value for ``key`` (or ``None``) and mark it hot."""
        with self._lock:
            if key not in self._entries:
                self.stats.record_miss()
                return None
            self._entries.move_to_end(key)
            self.stats.record_hit()
            return _thaw(self._entries[key])

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key``, evicting the coldest entry if full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = _freeze(value)
            self.stats.record_put()
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.record_eviction()

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self):
        """Snapshot of the cached keys (coldest first)."""
        with self._lock:
            return list(self._entries)

    def evict(self, key: str) -> bool:
        """Drop ``key`` if present; returns whether an entry was removed."""
        with self._lock:
            if key not in self._entries:
                return False
            del self._entries[key]
            self.stats.record_eviction()
            return True

    def evict_matching(self, fragment: str) -> int:
        """Drop every entry whose key contains ``fragment``; returns the count.

        Used by the zoo-refresh path to purge artifacts of a superseded
        repository version by their content-fingerprint component.
        """
        with self._lock:
            stale = [key for key in self._entries if fragment in key]
            for key in stale:
                del self._entries[key]
            self.stats.record_eviction(len(stale))
            return len(stale)

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        with self._lock:
            self._entries.clear()


class DiskCache:
    """Persistent cache tier storing artifacts under a directory.

    Arrays are written as ``<key>.npy`` and scalars/JSON-serialisable
    payloads as ``<key>.json``.  Keys are sanitised into safe file names;
    the content-hash component keeps sanitised names collision-free.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()
        #: Temp files of writers killed mid-publish, reclaimed at startup.
        self.swept_temp_files = sweep_stale_temp_files(self.directory)

    # ------------------------------------------------------------------ #
    def _path_stem(self, key: str) -> Path:
        return self.directory / _UNSAFE_FILENAME.sub("_", key)

    def get(self, key: str, *, mmap_mode: Optional[str] = None) -> Optional[Any]:
        """Load the artifact stored under ``key`` (or ``None``).

        ``mmap_mode`` (e.g. ``"r"``) opens array payloads as a
        :class:`numpy.memmap` instead of reading them into RAM — pages load
        on demand, and POSIX unlink semantics mean a reader holding the map
        survives a concurrent :meth:`evict` of the entry.
        """
        stem = self._path_stem(key)
        npy, meta = stem.with_suffix(stem.suffix + ".npy"), stem.with_suffix(stem.suffix + ".json")
        try:
            if npy.exists():
                value = np.load(npy, mmap_mode=mmap_mode, allow_pickle=False)
                self.stats.record_hit()
                return value
            if meta.exists():
                value = json.loads(meta.read_text())
                self.stats.record_hit()
                return value
        except (OSError, ValueError, json.JSONDecodeError):
            # A corrupt or half-written file behaves like a miss; the entry
            # is recomputed and overwritten on the next put.
            pass
        self.stats.record_miss()
        return None

    def put(self, key: str, value: Any) -> None:
        """Persist ``value`` under ``key`` (arrays as .npy, scalars as .json).

        Writes go to a writer-unique temporary file first (keyed by pid and
        thread id) and are published with an atomic :func:`os.replace`, so
        concurrent writers — thread pools within one process as well as
        forked process workers sharing one cache directory — can never
        leave a half-written artifact for a reader to load.
        """
        stem = self._path_stem(key)
        writer_id = f"{os.getpid()}-{threading.get_ident()}"
        if isinstance(value, np.ndarray):
            final = stem.with_suffix(stem.suffix + ".npy")
            tmp = final.with_name(f"{final.name}.tmp-{writer_id}")
            with open(tmp, "wb") as handle:
                np.save(handle, value, allow_pickle=False)
        else:
            final = stem.with_suffix(stem.suffix + ".json")
            tmp = final.with_name(f"{final.name}.tmp-{writer_id}")
            tmp.write_text(json.dumps(value))
        os.replace(tmp, final)
        self.stats.record_put()

    def evict(self, key: str) -> bool:
        """Delete the files stored under ``key``; returns whether any existed."""
        stem = self._path_stem(key)
        removed = False
        for suffix in (".npy", ".json"):
            path = stem.with_suffix(stem.suffix + suffix)
            if path.exists():
                path.unlink(missing_ok=True)
                removed = True
        if removed:
            self.stats.record_eviction()
        return removed

    def evict_matching(self, fragment: str) -> int:
        """Delete every cached file whose name contains ``fragment``.

        The fragment is sanitised exactly like keys are when they become
        file names, so fingerprint components match their on-disk form.
        """
        sanitised = _UNSAFE_FILENAME.sub("_", fragment)
        count = 0
        for path in self.directory.glob("*"):
            if path.suffix in (".npy", ".json") and sanitised in path.name:
                path.unlink(missing_ok=True)
                count += 1
        self.stats.record_eviction(count)
        return count

    def clear(self) -> None:
        """Delete every cached file in the directory."""
        for path in self.directory.glob("*"):
            if path.suffix in (".npy", ".json") or path.suffix.startswith(".tmp-"):
                path.unlink(missing_ok=True)


class ArtifactCache:
    """Two-tier artifact cache used throughout the library.

    Parameters
    ----------
    max_entries:
        Bound of the in-memory LRU tier.
    disk_dir:
        Optional directory enabling the persistent tier.
    enabled:
        A disabled cache turns every ``get`` into a miss and every ``put``
        into a no-op, letting callers keep one unconditional code path.

    >>> cache = ArtifactCache(max_entries=8)
    >>> cache.get_or_compute("answer", lambda: 42.0)
    42.0
    >>> cache.get_or_compute("answer", lambda: 0.0)   # served from cache
    42.0
    >>> (cache.stats.hits, cache.stats.misses)
    (1, 1)
    """

    def __init__(
        self,
        *,
        max_entries: int = 64,
        disk_dir: Optional[Union[str, Path]] = None,
        enabled: bool = True,
    ) -> None:
        self.memory = LRUCache(max_entries=max_entries)
        self.disk = DiskCache(disk_dir) if disk_dir is not None else None
        self.enabled = bool(enabled)

    # ------------------------------------------------------------------ #
    @property
    def stats(self) -> CacheStats:
        """Statistics of the in-memory tier (the tier every lookup hits)."""
        return self.memory.stats

    def get(self, key: str) -> Optional[Any]:
        """Lookup ``key`` in memory, then on disk (promoting disk hits)."""
        if not self.enabled:
            return None
        value = self.memory.get(key)
        if value is not None:
            return value
        if self.disk is not None:
            value = self.disk.get(key)
            if value is not None:
                self.memory.put(key, value)
                return _thaw(value)
        return None

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` in every enabled tier."""
        if not self.enabled:
            return
        self.memory.put(key, value)
        if self.disk is not None:
            self.disk.put(key, value)

    def get_or_compute(self, key: str, compute: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, computing and storing on miss."""
        value = self.get(key)
        if value is not None:
            return value
        value = compute()
        self.put(key, value)
        return value

    def evict(self, key: str) -> bool:
        """Drop ``key`` from every tier; returns whether any tier held it."""
        removed = self.memory.evict(key)
        if self.disk is not None:
            removed = self.disk.evict(key) or removed
        return removed

    def evict_matching(self, fragment: str) -> int:
        """Drop every entry (all tiers) whose key contains ``fragment``.

        This is the explicit-invalidation path of the incremental zoo
        refresh: artifacts of a superseded repository version are purged by
        their content-fingerprint component instead of lingering until LRU
        pressure ages them out.  Returns the number of memory-tier entries
        removed.
        """
        count = self.memory.evict_matching(fragment)
        if self.disk is not None:
            self.disk.evict_matching(fragment)
        return count

    def clear(self) -> None:
        """Drop every entry from every tier (statistics are kept)."""
        self.memory.clear()
        if self.disk is not None:
            self.disk.clear()

    def stats_report(self) -> Dict[str, Dict[str, float]]:
        """Per-tier statistics snapshot."""
        report = {"memory": self.memory.stats.as_dict()}
        if self.disk is not None:
            report["disk"] = self.disk.stats.as_dict()
        return report
