"""Synthetic classification tasks standing in for the paper's datasets.

The paper evaluates on GLUE/SuperGLUE-style NLP datasets and ImageNet-style
CV datasets pulled from HuggingFace.  This substrate generates classification
tasks positioned in a latent *domain space*: each task owns a domain vector
describing which latent concepts carry its class signal.  Transferability of
a pre-trained model to a task then depends on how well the model's encoder
covers those concepts, which is exactly the structure the selection
framework exploits.

Public API:

* :class:`~repro.data.domain.DomainSpace` — latent concept geometry.
* :class:`~repro.data.tasks.TaskSpec` / :class:`~repro.data.tasks.ClassificationTask`
  — task description and materialised train/val/test splits.
* :class:`~repro.data.workloads.WorkloadSuite` — the paper's benchmark and
  target dataset suites for NLP and CV.
"""

from repro.data.domain import DomainSpace
from repro.data.splits import DataSplit
from repro.data.tasks import ClassificationTask, TaskSpec, generate_task
from repro.data.workloads import (
    DataScale,
    WorkloadSuite,
    cv_suite,
    nlp_suite,
    suite_for_modality,
)

__all__ = [
    "DomainSpace",
    "DataSplit",
    "ClassificationTask",
    "TaskSpec",
    "generate_task",
    "DataScale",
    "WorkloadSuite",
    "cv_suite",
    "nlp_suite",
    "suite_for_modality",
]
