"""Synthetic classification task specification and generation.

Each task draws per-class prototypes inside the subspace spanned by the
concepts its domain vector weights, and adds isotropic noise plus a
class-independent nuisance component.  Difficulty is controlled by the
noise level and the prototype separation, so tasks naturally range from
"easy, every decent model converges fast" to "hard, only well-matched
models reach a high plateau" — mirroring the spread the paper's Fig. 1
shows across the HuggingFace hub.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.data.domain import DomainSpace
from repro.data.splits import DataSplit
from repro.utils.exceptions import ConfigurationError, DataError
from repro.utils.rng import as_generator


@dataclass(frozen=True)
class TaskSpec:
    """Static description of a synthetic classification task.

    Attributes
    ----------
    name:
        Unique dataset name (mirrors the paper's dataset names, e.g.
        ``"mnli"`` or ``"cifar10"``).
    modality:
        ``"nlp"`` or ``"cv"``; a model can only be fine-tuned on tasks of
        its own modality.
    domain:
        Non-negative, unit-sum concept weights — which latent concepts
        carry this task's class signal.
    num_classes:
        Size of the label space.
    num_train / num_val / num_test:
        Split sizes.
    noise:
        Standard deviation of sample noise around the class prototypes;
        larger values make the task harder.
    separation:
        Scale of the class prototypes in concept space; larger values make
        the task easier.
    class_imbalance:
        0 gives balanced classes; values towards 1 skew the label
        distribution geometrically.
    role:
        ``"benchmark"`` or ``"target"`` — used by the workload suites.
    """

    name: str
    modality: str
    domain: np.ndarray
    num_classes: int
    num_train: int = 240
    num_val: int = 60
    num_test: int = 100
    noise: float = 1.0
    separation: float = 1.6
    class_imbalance: float = 0.0
    role: str = "benchmark"
    metadata: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise ConfigurationError(f"task {self.name!r}: num_classes must be >= 2")
        for attr in ("num_train", "num_val", "num_test"):
            if getattr(self, attr) < self.num_classes:
                raise ConfigurationError(
                    f"task {self.name!r}: {attr} must be >= num_classes"
                )
        if self.noise <= 0 or self.separation <= 0:
            raise ConfigurationError(
                f"task {self.name!r}: noise and separation must be positive"
            )
        if not 0.0 <= self.class_imbalance < 1.0:
            raise ConfigurationError(
                f"task {self.name!r}: class_imbalance must be in [0, 1)"
            )

    @property
    def difficulty(self) -> float:
        """Noise-to-separation ratio; a rough proxy for task hardness."""
        return float(self.noise / self.separation)


class ClassificationTask:
    """A materialised task: spec plus train/val/test splits."""

    def __init__(
        self,
        spec: TaskSpec,
        train: DataSplit,
        val: DataSplit,
        test: DataSplit,
    ) -> None:
        self.spec = spec
        self.train = train
        self.val = val
        self.test = test
        for split_name, split in (("train", train), ("val", val), ("test", test)):
            if split.labels.size and split.labels.max() >= spec.num_classes:
                raise DataError(
                    f"task {spec.name!r}: {split_name} labels exceed num_classes"
                )

    @property
    def name(self) -> str:
        """Dataset name."""
        return self.spec.name

    @property
    def num_classes(self) -> int:
        """Label-space size."""
        return self.spec.num_classes

    @property
    def modality(self) -> str:
        """Task modality (``nlp`` or ``cv``)."""
        return self.spec.modality

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ClassificationTask(name={self.name!r}, classes={self.num_classes}, "
            f"train={len(self.train)}, val={len(self.val)}, test={len(self.test)})"
        )


def _sample_labels(
    rng: np.random.Generator, size: int, num_classes: int, imbalance: float
) -> np.ndarray:
    """Draw labels; geometric skew controlled by ``imbalance``."""
    if imbalance == 0.0:
        # Balanced: round-robin assignment then shuffle so every class is
        # guaranteed to appear in every split.
        labels = np.arange(size) % num_classes
        rng.shuffle(labels)
        return labels
    weights = np.array([(1.0 - imbalance) ** c for c in range(num_classes)])
    weights = weights / weights.sum()
    labels = rng.choice(num_classes, size=size, p=weights)
    # Guarantee every class appears at least once.
    for cls in range(num_classes):
        if not np.any(labels == cls):
            labels[rng.integers(0, size)] = cls
    return labels


def generate_task(
    spec: TaskSpec,
    space: DomainSpace,
    rng=None,
    *,
    nuisance_scale: float = 0.6,
) -> ClassificationTask:
    """Materialise a :class:`ClassificationTask` from its spec.

    The generative model per sample of class ``c``:

    ``x = lift(separation * domain_mask * z_c) + nuisance + noise``

    where ``z_c`` is a per-class latent prototype, ``domain_mask`` scales
    each concept by the task's domain weight (so only the task's concepts
    carry signal), ``nuisance`` is a class-independent offset shared by the
    task, and ``noise`` is isotropic Gaussian.
    """
    if spec.modality != space.modality:
        raise ConfigurationError(
            f"task {spec.name!r} has modality {spec.modality!r} but the domain "
            f"space is for {space.modality!r}"
        )
    generator = as_generator(rng)
    domain = space.normalize_domain(spec.domain)
    # Concept weights: emphasise the task's concepts, scaled so that the
    # expected signal magnitude does not depend on how many concepts the
    # task spreads its mass over.
    concept_scale = np.sqrt(domain * space.num_concepts)
    prototypes = generator.normal(size=(spec.num_classes, space.num_concepts))
    prototypes *= spec.separation * concept_scale[None, :]
    nuisance_direction = generator.normal(size=space.feature_dim)
    nuisance_direction /= np.linalg.norm(nuisance_direction)

    def make_split(size: int) -> DataSplit:
        labels = _sample_labels(generator, size, spec.num_classes, spec.class_imbalance)
        concept_signal = prototypes[labels]
        features = space.lift(concept_signal)
        features += nuisance_scale * generator.normal(size=(size, 1)) * nuisance_direction
        features += spec.noise * generator.normal(size=(size, space.feature_dim))
        return DataSplit(features, labels)

    return ClassificationTask(
        spec,
        train=make_split(spec.num_train),
        val=make_split(spec.num_val),
        test=make_split(spec.num_test),
    )
