"""Latent domain space shared by tasks and pre-trained models.

A :class:`DomainSpace` owns an orthonormal *concept basis*: ``num_concepts``
directions in the ambient feature space.  Every task places its
class-discriminative signal inside the subspace spanned by the concepts it
weights; every pre-trained model amplifies the concepts it was (synthetically)
pre-trained on.  Transfer quality between a model and a task is therefore a
function of the overlap of their concept weights, which is the property the
paper's framework relies on (models with similar training histories behave
similarly on new tasks).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import as_generator


class DomainSpace:
    """Orthonormal concept basis for one modality (NLP or CV).

    Parameters
    ----------
    feature_dim:
        Dimensionality of raw input features (the "token/pixel embedding"
        stand-in).
    num_concepts:
        Number of latent concepts; must not exceed ``feature_dim``.
    modality:
        Free-form tag (``"nlp"`` or ``"cv"``) used for reproducible seeding
        and for sanity checks when pairing models with tasks.
    rng:
        Seed or generator for the basis construction.
    """

    def __init__(
        self,
        feature_dim: int = 32,
        num_concepts: int = 16,
        *,
        modality: str = "nlp",
        rng=None,
    ) -> None:
        if num_concepts > feature_dim:
            raise ConfigurationError(
                f"num_concepts ({num_concepts}) cannot exceed feature_dim ({feature_dim})"
            )
        if num_concepts < 2:
            raise ConfigurationError("num_concepts must be at least 2")
        self.feature_dim = int(feature_dim)
        self.num_concepts = int(num_concepts)
        self.modality = str(modality)
        generator = as_generator(rng)
        random_matrix = generator.normal(size=(feature_dim, feature_dim))
        q, _ = np.linalg.qr(random_matrix)
        # Rows are orthonormal concept directions in feature space.
        self.basis = q[:num_concepts, :]

    # ------------------------------------------------------------------ #
    def project(self, features: np.ndarray) -> np.ndarray:
        """Project raw features onto concept coordinates ``(n, num_concepts)``."""
        features = np.asarray(features, dtype=float)
        return features @ self.basis.T

    def lift(self, concept_coords: np.ndarray) -> np.ndarray:
        """Map concept coordinates back into feature space."""
        concept_coords = np.asarray(concept_coords, dtype=float)
        return concept_coords @ self.basis

    # ------------------------------------------------------------------ #
    def random_domain_vector(
        self,
        rng=None,
        *,
        concentration: float = 1.0,
        anchor: Optional[np.ndarray] = None,
        anchor_weight: float = 0.0,
    ) -> np.ndarray:
        """Draw a non-negative, unit-sum domain vector.

        ``anchor``/``anchor_weight`` let callers derive a new domain near an
        existing one — used to place a fine-tuned model's domain near the
        dataset it was fine-tuned on, or a target task near (but not equal
        to) a benchmark task.
        """
        generator = as_generator(rng)
        raw = generator.gamma(concentration, size=self.num_concepts)
        vector = raw / raw.sum()
        if anchor is not None and anchor_weight > 0.0:
            anchor = self.normalize_domain(anchor)
            vector = (1.0 - anchor_weight) * vector + anchor_weight * anchor
            vector = vector / vector.sum()
        return vector

    def normalize_domain(self, vector: np.ndarray) -> np.ndarray:
        """Clip to non-negative values and normalise to unit sum."""
        arr = np.asarray(vector, dtype=float).copy()
        if arr.shape != (self.num_concepts,):
            raise ConfigurationError(
                f"domain vector must have shape ({self.num_concepts},), got {arr.shape}"
            )
        arr = np.clip(arr, 0.0, None)
        total = arr.sum()
        if total <= 0:
            raise ConfigurationError("domain vector must have positive mass")
        return arr / total

    @staticmethod
    def domain_affinity(domain_a: np.ndarray, domain_b: np.ndarray) -> float:
        """Cosine similarity between two domain vectors (in ``[0, 1]``)."""
        a = np.asarray(domain_a, dtype=float)
        b = np.asarray(domain_b, dtype=float)
        denom = np.linalg.norm(a) * np.linalg.norm(b)
        if denom == 0:
            return 0.0
        return float(np.clip(np.dot(a, b) / denom, 0.0, 1.0))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"DomainSpace(modality={self.modality!r}, feature_dim={self.feature_dim}, "
            f"num_concepts={self.num_concepts})"
        )
