"""Train/validation/test split container."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.exceptions import DataError


@dataclass
class DataSplit:
    """One split (features + integer labels) of a classification task."""

    features: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        self.features = np.asarray(self.features, dtype=float)
        self.labels = np.asarray(self.labels, dtype=int)
        if self.features.ndim != 2:
            raise DataError(f"features must be 2-d, got shape {self.features.shape}")
        if self.labels.ndim != 1:
            raise DataError(f"labels must be 1-d, got shape {self.labels.shape}")
        if self.features.shape[0] != self.labels.shape[0]:
            raise DataError(
                "features and labels row counts differ "
                f"({self.features.shape[0]} vs {self.labels.shape[0]})"
            )

    def __len__(self) -> int:
        return int(self.features.shape[0])

    @property
    def num_features(self) -> int:
        """Feature dimensionality."""
        return int(self.features.shape[1])

    def class_counts(self, num_classes: int) -> np.ndarray:
        """Per-class sample counts (length ``num_classes``)."""
        return np.bincount(self.labels, minlength=num_classes)

    def subsample(self, fraction: float, rng: np.random.Generator) -> "DataSplit":
        """Return a random subset containing ``fraction`` of the rows.

        Used by the performance-matrix builder, which (as in the paper)
        may fine-tune on a subset of each benchmark dataset.
        """
        if not 0.0 < fraction <= 1.0:
            raise DataError(f"fraction must be in (0, 1], got {fraction}")
        size = max(1, int(round(fraction * len(self))))
        idx = rng.choice(len(self), size=size, replace=False)
        return DataSplit(self.features[idx], self.labels[idx])
