"""Benchmark and target dataset suites mirroring the paper's evaluation setup.

The paper builds its performance matrix from GLUE/SuperGLUE plus popular
domain-specific NLP datasets (24 benchmark datasets for 40 NLP models) and
from image-classification datasets (10 benchmark datasets for 30 CV models),
then evaluates on held-out *target* datasets (tweet_eval, MNLI, MultiRC,
BoolQ for NLP; chest-xray, MedMNIST, oxford-flowers, beans for CV).

This module recreates both suites as synthetic tasks.  Dataset names are kept
identical to the paper so the experiment harness can print the same rows.
Target-task domains are anchored near (but not equal to) related benchmark
domains, e.g. ``mnli`` near ``xnli``/``anli``/``sick``, reproducing the
"latent transferability between heterogeneous tasks" the paper studies.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.domain import DomainSpace
from repro.data.tasks import ClassificationTask, TaskSpec, generate_task
from repro.utils.exceptions import ConfigurationError, DataError
from repro.utils.rng import RngFactory


@dataclass(frozen=True)
class DataScale:
    """Split sizes used when materialising tasks.

    ``default()`` matches the experiment harness; ``small()`` keeps unit
    tests fast.
    """

    num_train: int = 192
    num_val: int = 64
    num_test: int = 96

    @classmethod
    def default(cls) -> "DataScale":
        return cls()

    @classmethod
    def small(cls) -> "DataScale":
        return cls(num_train=60, num_val=24, num_test=32)


# --------------------------------------------------------------------------- #
# Dataset catalogues.  Each entry: (name, num_classes, noise, separation,
# imbalance, related datasets used to anchor the domain).
# --------------------------------------------------------------------------- #

_NLP_BENCHMARKS: List[Tuple[str, int, float, float, float, Tuple[str, ...]]] = [
    ("cola", 2, 1.25, 1.5, 0.0, ()),
    ("mrpc", 2, 1.05, 1.6, 0.1, ()),
    ("qnli", 2, 1.0, 1.6, 0.0, ()),
    ("qqp", 2, 0.95, 1.7, 0.0, ()),
    ("rte", 2, 1.35, 1.4, 0.0, ()),
    ("sst2", 2, 0.85, 1.8, 0.0, ()),
    ("stsb", 3, 1.15, 1.5, 0.1, ()),
    ("wnli", 2, 1.45, 1.3, 0.0, ()),
    ("cb", 3, 1.3, 1.4, 0.2, ()),
    ("copa", 2, 1.35, 1.4, 0.0, ()),
    ("wic", 2, 1.2, 1.5, 0.0, ()),
    ("imdb", 2, 0.9, 1.8, 0.0, ("sst2",)),
    ("yelp_review_full", 5, 1.1, 1.6, 0.0, ("sst2", "imdb")),
    ("yahoo_answers_topics", 10, 1.2, 1.7, 0.0, ()),
    ("dbpedia_14", 14, 1.0, 1.9, 0.0, ("yahoo_answers_topics",)),
    ("xnli", 3, 1.1, 1.6, 0.0, ()),
    ("anli", 3, 1.4, 1.4, 0.1, ("xnli",)),
    ("app_reviews", 5, 1.2, 1.5, 0.3, ("sst2",)),
    ("trec", 6, 1.0, 1.7, 0.1, ()),
    ("sick", 3, 1.1, 1.6, 0.1, ("xnli",)),
    ("financial_phrasebank", 3, 1.15, 1.6, 0.3, ("sst2",)),
    ("paws", 2, 1.05, 1.6, 0.1, ("qqp", "mrpc")),
    ("snli", 3, 1.0, 1.7, 0.0, ("xnli", "anli")),
    ("stsb_multi_mt", 3, 1.2, 1.5, 0.1, ("stsb",)),
]

_NLP_TARGETS: List[Tuple[str, int, float, float, float, Tuple[str, ...]]] = [
    ("tweet_eval", 3, 1.2, 1.5, 0.2, ("sst2", "imdb")),
    ("mnli", 3, 1.05, 1.6, 0.0, ("xnli", "anli", "sick")),
    ("multirc", 2, 1.35, 1.35, 0.2, ("qnli", "copa")),
    ("boolq", 2, 1.25, 1.45, 0.2, ("qnli", "xnli")),
]

_CV_BENCHMARKS: List[Tuple[str, int, float, float, float, Tuple[str, ...]]] = [
    ("food101", 8, 1.0, 1.8, 0.0, ()),
    ("cc6204_hackaton_cub", 10, 1.3, 1.5, 0.1, ()),
    ("cats_vs_dogs", 2, 0.8, 2.0, 0.0, ()),
    ("cifar10", 10, 1.0, 1.8, 0.0, ()),
    ("mnist", 10, 0.7, 2.2, 0.0, ()),
    ("snacks", 6, 1.1, 1.6, 0.1, ("food101",)),
    ("fer2013", 7, 1.35, 1.4, 0.2, ()),
    ("fashion_mnist", 10, 0.9, 1.9, 0.0, ("mnist",)),
    ("svhn", 10, 1.1, 1.7, 0.0, ("mnist", "cifar10")),
    ("stl10", 10, 1.15, 1.6, 0.0, ("cifar10",)),
]

_CV_TARGETS: List[Tuple[str, int, float, float, float, Tuple[str, ...]]] = [
    ("chest_xray_classification", 2, 1.1, 1.6, 0.3, ("fer2013", "mnist")),
    ("medmnist_v2", 5, 1.3, 1.45, 0.2, ("mnist", "fer2013")),
    ("oxford_flowers", 10, 1.0, 1.7, 0.1, ("food101", "cc6204_hackaton_cub")),
    ("beans", 3, 0.95, 1.8, 0.0, ("cats_vs_dogs", "food101")),
]


class WorkloadSuite:
    """All benchmark and target tasks of one modality, built reproducibly.

    Tasks are materialised lazily and cached, so a suite can be shared
    across the hub construction, the coarse-recall phase and the experiment
    harness without regenerating data.
    """

    def __init__(
        self,
        modality: str,
        *,
        seed: int = 0,
        scale: Optional[DataScale] = None,
        feature_dim: int = 32,
        num_concepts: int = 16,
        benchmark_names: Optional[Sequence[str]] = None,
        target_names: Optional[Sequence[str]] = None,
    ) -> None:
        if modality not in ("nlp", "cv"):
            raise ConfigurationError(f"modality must be 'nlp' or 'cv', got {modality!r}")
        self.modality = modality
        self.scale = scale or DataScale.default()
        self._rng_factory = RngFactory(seed)
        self.space = DomainSpace(
            feature_dim=feature_dim,
            num_concepts=num_concepts,
            modality=modality,
            rng=self._rng_factory.named("domain-space", modality),
        )
        benchmark_catalogue = _NLP_BENCHMARKS if modality == "nlp" else _CV_BENCHMARKS
        target_catalogue = _NLP_TARGETS if modality == "nlp" else _CV_TARGETS
        self._specs: Dict[str, TaskSpec] = {}
        self.benchmark_names: List[str] = []
        self.target_names: List[str] = []
        for entry in benchmark_catalogue:
            spec = self._build_spec(entry, role="benchmark")
            self._specs[spec.name] = spec
            self.benchmark_names.append(spec.name)
        for entry in target_catalogue:
            spec = self._build_spec(entry, role="target")
            self._specs[spec.name] = spec
            self.target_names.append(spec.name)
        if benchmark_names is not None:
            self.benchmark_names = self._filter_names(benchmark_names, self.benchmark_names)
        if target_names is not None:
            self.target_names = self._filter_names(target_names, self.target_names)
        self._tasks: Dict[str, ClassificationTask] = {}

    # ------------------------------------------------------------------ #
    def _filter_names(self, requested: Sequence[str], available: List[str]) -> List[str]:
        unknown = [name for name in requested if name not in available]
        if unknown:
            raise ConfigurationError(f"unknown dataset name(s): {unknown}")
        return [name for name in available if name in set(requested)]

    def _build_spec(
        self,
        entry: Tuple[str, int, float, float, float, Tuple[str, ...]],
        *,
        role: str,
    ) -> TaskSpec:
        name, num_classes, noise, separation, imbalance, related = entry
        rng = self._rng_factory.named("task-domain", self.modality, name)
        anchor = None
        if related:
            anchors = [self._specs[rel].domain for rel in related if rel in self._specs]
            if anchors:
                anchor = np.mean(anchors, axis=0)
        domain = self.space.random_domain_vector(
            rng,
            concentration=0.55,
            anchor=anchor,
            anchor_weight=0.55 if anchor is not None else 0.0,
        )
        return TaskSpec(
            name=name,
            modality=self.modality,
            domain=domain,
            num_classes=num_classes,
            num_train=self.scale.num_train,
            num_val=self.scale.num_val,
            num_test=self.scale.num_test,
            noise=noise,
            separation=separation,
            class_imbalance=imbalance,
            role=role,
            metadata={"related": ",".join(related)} if related else {},
        )

    # ------------------------------------------------------------------ #
    @property
    def dataset_names(self) -> List[str]:
        """Benchmark names followed by target names."""
        return list(self.benchmark_names) + list(self.target_names)

    def spec(self, name: str) -> TaskSpec:
        """Return the spec of dataset ``name``."""
        if name not in self._specs:
            raise DataError(f"unknown dataset {name!r}")
        return self._specs[name]

    def task(self, name: str) -> ClassificationTask:
        """Materialise (and cache) dataset ``name``."""
        if name not in self._tasks:
            spec = self.spec(name)
            rng = self._rng_factory.named("task-data", self.modality, name)
            self._tasks[name] = generate_task(spec, self.space, rng)
        return self._tasks[name]

    def benchmarks(self) -> List[ClassificationTask]:
        """All benchmark tasks in catalogue order."""
        return [self.task(name) for name in self.benchmark_names]

    def targets(self) -> List[ClassificationTask]:
        """All target tasks in catalogue order."""
        return [self.task(name) for name in self.target_names]

    def iter_tasks(self) -> Iterable[ClassificationTask]:
        """Iterate over every task (benchmarks then targets)."""
        for name in self.dataset_names:
            yield self.task(name)

    def with_scale(self, scale: DataScale) -> "WorkloadSuite":
        """Return a new suite identical to this one but with other split sizes."""
        return WorkloadSuite(
            self.modality,
            seed=self._rng_factory.root_seed,
            scale=scale,
            feature_dim=self.space.feature_dim,
            num_concepts=self.space.num_concepts,
            benchmark_names=self.benchmark_names,
            target_names=self.target_names,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"WorkloadSuite(modality={self.modality!r}, "
            f"benchmarks={len(self.benchmark_names)}, targets={len(self.target_names)})"
        )


def nlp_suite(seed: int = 0, scale: Optional[DataScale] = None, **kwargs) -> WorkloadSuite:
    """Convenience constructor for the NLP workload suite."""
    return WorkloadSuite("nlp", seed=seed, scale=scale, **kwargs)


def cv_suite(seed: int = 0, scale: Optional[DataScale] = None, **kwargs) -> WorkloadSuite:
    """Convenience constructor for the CV workload suite."""
    return WorkloadSuite("cv", seed=seed, scale=scale, **kwargs)


def suite_for_modality(
    modality: str, seed: int = 0, scale: Optional[DataScale] = None, **kwargs
) -> WorkloadSuite:
    """Build the suite for ``modality`` (``"nlp"`` or ``"cv"``)."""
    return WorkloadSuite(modality, seed=seed, scale=scale, **kwargs)
