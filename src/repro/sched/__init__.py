"""Epoch-granular scheduling of concurrent online selection requests.

The subsystem behind a production deployment of the paper's online phase:
many in-flight selection requests share fine-tuning epochs, executor
workers and partially-trained sessions instead of each serially re-training
the same ``(model, task)`` stages.

* :class:`~repro.sched.scheduler.EpochScheduler` — multiplexes the
  :class:`~repro.core.plan.SelectionPlan` state machines of many requests
  over a shared per-round epoch budget, with fair-share or deadline
  ordering, admission control and per-request quotas/deadlines.
* :class:`~repro.sched.pool.SessionPool` — memoises fine-tuning sessions
  by ``(zoo_version, model, task)`` (:func:`repro.cache.session_key`), so
  concurrent and repeated requests reuse each other's partially-trained
  checkpoints.
* :class:`~repro.sched.config.SchedulerConfig` — the deployment knobs.

Scheduling never changes results — a request's outcome is bitwise-identical
to its serial run — only cost and latency.  See ``docs/serving.md``.
"""

from repro.sched.config import POLICIES, SchedulerConfig
from repro.sched.pool import PoolEntry, PooledSessionView, SessionPool
from repro.sched.scheduler import (
    EpochScheduler,
    SchedulerContext,
    SelectionRequest,
)

__all__ = [
    "POLICIES",
    "SchedulerConfig",
    "PoolEntry",
    "PooledSessionView",
    "SessionPool",
    "EpochScheduler",
    "SchedulerContext",
    "SelectionRequest",
]
