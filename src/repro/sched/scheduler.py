"""Epoch-granular cooperative scheduler for concurrent selection requests.

The online phase of one request is a :class:`~repro.core.plan.SelectionPlan`
— recall, then staged halving whose unit of work is a single
``(request, model, epoch-interval)`` training step.  :class:`EpochScheduler`
multiplexes many such plans over one shared training budget: each
*scheduling round* it picks up to ``epoch_budget`` epochs worth of runnable
steps across the active requests (fair-share or deadline order), deduplicates
steps that resolve to the same pooled session, executes the round through a
:mod:`repro.parallel` executor, and advances every plan whose stage
completed.  Admission control (bounded queue, ``max_concurrent``), per-request
epoch quotas and deadlines bound the work any request can consume.

Correctness does not depend on scheduling: every training step draws from
the per-``(model, task)`` named random stream of its session and every read
indexes the request's own epoch position, so a request's
:class:`~repro.core.results.TwoPhaseResult` is bitwise-identical whether it
ran alone through :class:`~repro.core.pipeline.TwoPhaseSelector`, batched,
or interleaved with arbitrary concurrent traffic (enforced by the property
suite in ``tests/property/test_property_scheduler.py``).  What scheduling
*does* change is cost: overlapping requests share partially-trained
checkpoints through the :class:`~repro.sched.pool.SessionPool`, so the
aggregate epochs actually trained can be far below the epochs charged.

The scheduler can be driven synchronously (:meth:`run_until_idle` — used by
:class:`~repro.core.batch.BatchedSelectionRunner`) or by its own background
thread (:meth:`start` — used by :meth:`repro.service.SelectionService.submit`).
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.plan import SelectionPlan, TrainStep
from repro.core.results import TwoPhaseResult
from repro.data.tasks import ClassificationTask
from repro.parallel.executor import Executor, ExecutorLike, get_executor
from repro.sched.config import SchedulerConfig
from repro.sched.pool import PooledSessionView, SessionPool
from repro.utils.exceptions import (
    BudgetExhaustedError,
    QueueFullError,
    RequestTimeoutError,
    SchedulerError,
)

#: Request lifecycle states (``SelectionRequest.state``).
QUEUED = "queued"
RECALL = "recall"
TRAINING = "training"
DONE = "done"
FAILED = "failed"


@dataclass
class SchedulerContext:
    """Artifact epoch a request is bound to at admission time.

    In-flight requests keep the context they were admitted under; a zoo
    refresh only changes what *later* requests see — mirroring the
    service's atomic artifact swap.
    """

    artifacts: object
    recall: object
    fine_selection: object
    version_key: str
    fine_tuner: object


class SelectionRequest:
    """Handle of one submitted request: state, progress and (later) result.

    Returned by :meth:`EpochScheduler.submit`; consumers poll it through
    :meth:`EpochScheduler.poll` or block on :meth:`EpochScheduler.result`.
    """

    def __init__(
        self,
        request_id: int,
        task: ClassificationTask,
        *,
        top_k: Optional[int],
        context: SchedulerContext,
        deadline: Optional[float],
        epoch_quota: Optional[int],
    ) -> None:
        self.id = request_id
        self.task = task
        self.top_k = top_k
        self.context = context
        self.deadline = deadline
        self.epoch_quota = epoch_quota
        self.state = QUEUED
        self.plan: Optional[SelectionPlan] = None
        self.result: Optional[TwoPhaseResult] = None
        self.error: Optional[Exception] = None
        self.epochs_charged = 0
        self.submitted_at = time.monotonic()
        self.finished_at: Optional[float] = None
        self._views: List[PooledSessionView] = []
        self._event = threading.Event()
        #: Set (under the scheduler lock) by the first finish/fail; later
        #: attempts — e.g. a cancelling close() racing the serving thread —
        #: are no-ops, so completion callbacks never fire twice.
        self._terminal = False

    @property
    def target_name(self) -> str:
        """Name of the request's target task."""
        return self.task.name

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the request finishes (or ``timeout`` elapses)."""
        return self._event.wait(timeout)

    def latency_seconds(self) -> Optional[float]:
        """Submit-to-finish wall time (``None`` while still in flight)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at


def _resolve_task(context: SchedulerContext, target) -> ClassificationTask:
    from repro.core.batch import resolve_target_task

    return resolve_target_task(context.artifacts.suite, target)


class EpochScheduler:
    """Interleave the epoch steps of many concurrent selection requests.

    Parameters
    ----------
    context_provider:
        Zero-argument callable returning the :class:`SchedulerContext` new
        requests bind to.  A static lambda for one-shot batch use; the
        service passes a closure over its current artifacts so requests
        admitted after a zoo refresh see the new epoch.
    config:
        :class:`~repro.sched.config.SchedulerConfig` (policy, budgets,
        queue bound).
    parallel:
        Executor (or spec) the per-round training ops fan out over.
    pool:
        Session pool shared with other schedulers, if any; a fresh one is
        created otherwise (from the context's fine-tuner).
    on_complete:
        Callback ``(request)`` fired when a request finishes or fails —
        the service uses it for accounting.
    """

    def __init__(
        self,
        context_provider: Callable[[], SchedulerContext],
        *,
        config: Optional[SchedulerConfig] = None,
        parallel: ExecutorLike = None,
        pool: Optional[SessionPool] = None,
        on_complete: Optional[Callable[[SelectionRequest], None]] = None,
    ) -> None:
        self._context_provider = context_provider
        self.config = config or SchedulerConfig()
        self._executor = get_executor(parallel)
        # Explicit None check: an empty SessionPool is falsy (it has a
        # __len__), and the fallback calls the context provider — which a
        # caller constructing us under its own lock may not allow yet.
        self._pool = (
            pool if pool is not None else SessionPool(context_provider().fine_tuner)
        )
        self._on_complete = on_complete
        self._lock = threading.RLock()
        self._wake = threading.Condition(self._lock)
        self._queue: List[SelectionRequest] = []
        self._active: List[SelectionRequest] = []
        self._ids = itertools.count()
        self._rr_offset = 0  # fair-share rotation cursor
        self._closed = False
        self._cancelled = False
        self._thread: Optional[threading.Thread] = None
        self._completed = 0
        self._failed = 0
        self._rounds = 0

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def for_artifacts(
        cls,
        artifacts,
        *,
        fine_tuner=None,
        recall=None,
        fine_selection=None,
        config: Optional[SchedulerConfig] = None,
        parallel: ExecutorLike = None,
        pool: Optional[SessionPool] = None,
        on_complete: Optional[Callable[[SelectionRequest], None]] = None,
    ) -> "EpochScheduler":
        """Scheduler over one fixed set of offline artifacts.

        Engines default to a fresh pair built exactly as the serial
        selector builds them (``build_phase_engines``), guaranteeing the
        two entry points cannot drift.
        """
        from repro.core.batch import build_phase_engines
        from repro.zoo.finetune import FineTuner

        tuner = fine_tuner or FineTuner(seed=0)
        if (recall is None) != (fine_selection is None):
            raise SchedulerError("recall and fine_selection must be supplied together")
        if recall is None:
            recall, fine_selection = build_phase_engines(
                artifacts, tuner, parallel=get_executor(parallel)
            )
        version = getattr(artifacts, "version", None)
        context = SchedulerContext(
            artifacts=artifacts,
            recall=recall,
            fine_selection=fine_selection,
            version_key=version.key if version is not None else "v0",
            fine_tuner=tuner,
        )
        return cls(
            lambda: context,
            config=config,
            parallel=parallel,
            pool=pool,
            on_complete=on_complete,
        )

    @property
    def pool(self) -> SessionPool:
        """The scheduler's session pool."""
        return self._pool

    # ------------------------------------------------------------------ #
    # submission API
    # ------------------------------------------------------------------ #
    def submit(
        self,
        target: Union[str, ClassificationTask],
        *,
        top_k: Optional[int] = None,
        timeout: Optional[float] = None,
        epoch_quota: Optional[int] = None,
    ) -> SelectionRequest:
        """Enqueue one selection request; returns its handle immediately.

        Raises :class:`~repro.utils.exceptions.QueueFullError` when the
        bounded admission queue is full (backpressure) and
        :class:`~repro.utils.exceptions.SchedulerError` after
        :meth:`close`.
        """
        context = self._context_provider()
        task = _resolve_task(context, target)
        if timeout is None:
            timeout = self.config.timeout_seconds
        if epoch_quota is None:
            epoch_quota = self.config.max_epochs_per_request
        with self._lock:
            if self._closed:
                raise SchedulerError("scheduler is closed")
            if len(self._queue) >= self.config.max_queue:
                raise QueueFullError(
                    f"admission queue is full ({self.config.max_queue} waiting); "
                    "retry later or raise max_queue"
                )
            request = SelectionRequest(
                next(self._ids),
                task,
                top_k=top_k,
                context=context,
                deadline=(
                    time.monotonic() + timeout if timeout is not None else None
                ),
                epoch_quota=epoch_quota,
            )
            self._queue.append(request)
            self._wake.notify_all()
        return request

    def poll(self, request: SelectionRequest) -> Dict[str, object]:
        """Progress snapshot of one request (streaming per-stage detail)."""
        with self._lock:
            snapshot: Dict[str, object] = {
                "id": request.id,
                "target": request.target_name,
                "state": request.state,
                "epochs_charged": request.epochs_charged,
            }
            if request.plan is not None:
                snapshot["progress"] = request.plan.progress()
            if request.error is not None:
                snapshot["error"] = {
                    "type": type(request.error).__name__,
                    "message": str(request.error),
                }
            latency = request.latency_seconds()
            if latency is not None:
                snapshot["latency_seconds"] = latency
        return snapshot

    def result(
        self, request: SelectionRequest, timeout: Optional[float] = None
    ) -> TwoPhaseResult:
        """Block until ``request`` finishes; return (or re-raise) its outcome."""
        if not request.wait(timeout):
            raise RequestTimeoutError(
                f"request {request.id} ({request.target_name!r}) still running "
                f"after {timeout:.1f}s"
            )
        if request.error is not None:
            raise request.error
        return request.result

    # ------------------------------------------------------------------ #
    # driving
    # ------------------------------------------------------------------ #
    def run_until_idle(self) -> None:
        """Drive rounds in the calling thread until no request remains."""
        while True:
            with self._lock:
                if not self._queue and not self._active:
                    return
            self._round()

    def start(self) -> None:
        """Run the scheduling loop on a daemon background thread."""
        with self._lock:
            if self._closed:
                raise SchedulerError("scheduler is closed")
            if self._thread is not None:
                return
            self._thread = threading.Thread(
                target=self._serve_forever, name="repro-epoch-scheduler", daemon=True
            )
            self._thread.start()

    def close(self, *, drain: bool = True) -> None:
        """Stop accepting requests; drain or cancel the in-flight ones.

        ``drain=True`` finishes everything already submitted;
        ``drain=False`` cancels instead — the serving thread stops at the
        next round boundary and every unfinished request fails with
        :class:`~repro.utils.exceptions.SchedulerError`.  Requests the
        thread finishes concurrently with the cancellation keep their real
        outcome: finishing is atomic per request, whoever gets there
        first.
        """
        with self._lock:
            self._closed = True
            if not drain:
                self._cancelled = True
            thread = self._thread
            self._wake.notify_all()
        if drain and thread is None:
            self.run_until_idle()
        if thread is not None:
            thread.join(timeout=60.0)
        if not drain:
            with self._lock:
                doomed = self._queue + self._active
                self._queue, self._active = [], []
            for request in doomed:
                self._fail(request, SchedulerError("scheduler closed"))

    def _serve_forever(self) -> None:
        while True:
            with self._lock:
                while (
                    not self._queue and not self._active
                    and not self._closed and not self._cancelled
                ):
                    self._wake.wait(timeout=0.5)
                if self._cancelled:
                    return
                if self._closed and not self._queue and not self._active:
                    return
            self._round()

    # ------------------------------------------------------------------ #
    # one scheduling round
    # ------------------------------------------------------------------ #
    def _round(self) -> None:
        self._admit()
        self._expire()
        batch = self._select_steps()
        if batch:
            self._execute(batch)
        with self._lock:
            self._rounds += 1
            finished = [
                request for request in self._active if request.plan and request.plan.done
            ]
            for request in finished:
                self._active.remove(request)
        for request in finished:
            self._finish(request)

    def _admit(self) -> None:
        """Move queued requests into the active set and run their recalls.

        The coarse recalls of everything admitted this round run as **one**
        executor map — one worker-pool dispatch for the whole admission
        wave rather than one per request, which matters for the fork-based
        process backend.  A recall failure (e.g. an unknown target) fails
        only its own request.
        """
        admitted: List[SelectionRequest] = []
        with self._lock:
            while self._queue and (
                len(self._active) + len(admitted) < self.config.max_concurrent
            ):
                request = self._queue.pop(0)
                request.state = RECALL
                admitted.append(request)
            self._active.extend(admitted)
        if not admitted:
            return
        self._prewarm(admitted)

        def recall_one(request: SelectionRequest):
            try:
                return True, request.context.recall.recall(
                    request.task, top_k=request.top_k
                )
            except Exception as error:  # noqa: BLE001 — reported per request
                return False, error

        outcomes = self._executor.map(recall_one, admitted)
        for request, (ok, outcome) in zip(admitted, outcomes):
            if not ok:
                with self._lock:
                    self._active.remove(request)
                self._fail(request, outcome)
                continue
            try:
                self._start_plan(request, outcome)
                request.state = TRAINING
            except Exception as error:  # noqa: BLE001 — failures land on the handle
                with self._lock:
                    self._active.remove(request)
                self._fail(request, error)

    def _prewarm(self, admitted: Sequence[SelectionRequest]) -> None:
        """Materialise shared lazy state before fanning recalls out.

        With a non-serial executor, each recall worker would otherwise
        train the representatives' source heads (LEEP/NCE) privately —
        deterministic but wasted per-worker work.  Warming them in the
        parent shares them with forked children copy-on-write and keeps
        thread workers contention-free (exactly what the pre-scheduler
        batch fan-out did).
        """
        if self._executor.backend == "serial":
            return
        for context in {id(r.context): r.context for r in admitted}.values():
            scorer = getattr(context.recall, "_scorer", None)
            if getattr(scorer, "uses_source_posterior", False):
                for name in sorted(
                    set(context.artifacts.clustering.representatives.values())
                ):
                    context.artifacts.hub.get(name).source_head()

    def _start_plan(self, request: SelectionRequest, recall_result) -> None:
        context = request.context

        def view_factory(name: str) -> PooledSessionView:
            view = self._pool.acquire(
                context.artifacts.hub.get(name),
                request.task,
                version_key=context.version_key,
            )
            request._views.append(view)
            return view

        plan = SelectionPlan(
            policy=context.fine_selection,
            task=request.task,
            view_factory=view_factory,
            candidates=recall_result.recalled_models,
            recall_result=recall_result,
        )
        request.plan = plan

    def _expire(self) -> None:
        """Fail requests past their deadline (checked at round boundaries)."""
        now = time.monotonic()
        with self._lock:
            expired = [
                request
                for request in self._queue + self._active
                if request.deadline is not None and now > request.deadline
            ]
            for request in expired:
                if request in self._queue:
                    self._queue.remove(request)
                if request in self._active:
                    self._active.remove(request)
        for request in expired:
            self._fail(
                request,
                RequestTimeoutError(
                    f"request {request.id} ({request.target_name!r}) missed its "
                    "deadline"
                ),
            )

    def _order_active(self) -> List[SelectionRequest]:
        """Active requests in policy order for this round."""
        with self._lock:
            active = list(self._active)
            if self.config.policy == "deadline":
                # Earliest deadline first; requests without one run last,
                # in arrival order.
                active.sort(
                    key=lambda request: (
                        request.deadline if request.deadline is not None else float("inf"),
                        request.id,
                    )
                )
            else:  # fair_share
                if active:
                    offset = self._rr_offset % len(active)
                    active = active[offset:] + active[:offset]
                    self._rr_offset += 1
        return active

    def _select_steps(self) -> List[Tuple[SelectionRequest, TrainStep]]:
        """Claim up to ``epoch_budget`` epochs of runnable steps.

        Fair-share interleaves one step per request per pass; deadline
        drains the most urgent request's stage first.  A request whose
        next step would break its epoch quota fails here — before any
        budget is wasted on it.  An unbounded budget (``None``) drains
        every runnable step of the round in one wave.
        """
        budget = (
            self.config.epoch_budget
            if self.config.epoch_budget is not None
            else float("inf")
        )
        chosen: List[Tuple[SelectionRequest, TrainStep]] = []
        active = self._order_active()
        exhausted: List[SelectionRequest] = []
        # fair_share hands out one step per request per pass; deadline
        # keeps claiming from the most urgent request until its stage (or
        # the budget) is exhausted before moving to the next.
        drain_request = self.config.policy == "deadline"
        progress = True
        while budget > 0 and progress:
            progress = False
            for request in active:
                if budget <= 0:
                    break
                while budget > 0:
                    if (
                        request in exhausted
                        or request.plan is None
                        or request.plan.done
                    ):
                        break
                    step = request.plan.claim_next()
                    if step is None:
                        break
                    if step.epochs > budget and chosen:
                        # Out of round budget; put it back for next round.
                        request.plan.release(step)
                        break
                    quota = request.epoch_quota
                    if (
                        quota is not None
                        and request.epochs_charged + step.epochs > quota
                    ):
                        request.plan.release(step)
                        # Refund the doomed request's steps already chosen
                        # this round: nothing of a failed request should
                        # train, and the freed budget goes to live
                        # requests instead.
                        refunded = [s for r, s in chosen if r is request]
                        if refunded:
                            chosen = [
                                (r, s) for r, s in chosen if r is not request
                            ]
                            for earlier in refunded:
                                request.plan.release(earlier)
                            freed = sum(s.epochs for s in refunded)
                            request.epochs_charged -= freed
                            budget += freed
                        exhausted.append(request)
                        break
                    chosen.append((request, step))
                    request.epochs_charged += step.epochs
                    budget -= step.epochs
                    progress = True
                    if not drain_request:
                        break
        for request in exhausted:
            with self._lock:
                if request in self._active:
                    self._active.remove(request)
            self._fail(
                request,
                BudgetExhaustedError(
                    f"request {request.id} ({request.target_name!r}) exceeded its "
                    f"epoch quota of {request.epoch_quota}"
                ),
            )
        return chosen

    def _execute(self, batch: Sequence[Tuple[SelectionRequest, TrainStep]]) -> None:
        """Run one round's training ops, deduplicated by pooled session.

        Steps of different requests can resolve to the same shared session;
        each underlying session is trained **once per round**, to the
        furthest epoch any step needs, and every step then completes
        against the recorded curve.  Ops fan out over the configured
        executor; with the process backend the advanced sessions are
        pickled back and re-adopted, exactly like serial stage training.
        """
        # Group steps by session entry: one training op per shared session.
        ops: Dict[int, Tuple[PooledSessionView, int]] = {}
        for request, step in batch:
            view = request.plan.views[step.model]
            entry_id = id(view.entry)
            target = view.position + step.epochs
            current = ops.get(entry_id)
            if current is None or target > current[1]:
                ops[entry_id] = (view, target)

        op_list = list(ops.values())

        def train_op(index: int):
            # Only the index crosses the process boundary on dispatch, and
            # only picklable results (epoch count + trained session) cross
            # back — views hold locks and stay in the parent.
            view, target = op_list[index]
            trained = view.entry.ensure_epochs(target)
            return index, trained, view.entry.session

        trained_total = 0
        for index, trained, session in self._executor.map(
            train_op, range(len(op_list))
        ):
            # With the process backend the parent's entry never trained;
            # adopt the advanced copy.  In-process backends adopt the same
            # object (a no-op reassignment).
            op_list[index][0].entry.adopt(session)
            trained_total += trained

        charged_total = 0
        for request, step in batch:
            view = request.plan.views[step.model]
            view.adopt(view.entry.session, advance=step.epochs)
            charged_total += step.epochs
            request.plan.complete(step)
        # Dedup makes reuse explicit: epochs charged to requests minus
        # epochs actually trained this round is the pool's saving.
        self._pool.record_round(charged=charged_total, trained=trained_total)

    # ------------------------------------------------------------------ #
    # completion
    # ------------------------------------------------------------------ #
    def _make_terminal(self, request: SelectionRequest) -> bool:
        """Atomically claim the right to finish/fail ``request`` (once)."""
        with self._lock:
            if request._terminal:
                return False
            request._terminal = True
            return True

    def _finish(self, request: SelectionRequest) -> None:
        if not self._make_terminal(request):
            return
        request.result = request.plan.two_phase_result()
        request.state = DONE
        request.finished_at = time.monotonic()
        self._release_views(request)
        with self._lock:
            self._completed += 1
        request._event.set()
        if self._on_complete is not None:
            self._on_complete(request)

    def _fail(self, request: SelectionRequest, error: Exception) -> None:
        if not self._make_terminal(request):
            return
        request.error = error
        request.state = FAILED
        request.finished_at = time.monotonic()
        self._release_views(request)
        with self._lock:
            self._failed += 1
        request._event.set()
        if self._on_complete is not None:
            self._on_complete(request)

    def _release_views(self, request: SelectionRequest) -> None:
        for view in request._views:
            self._pool.release(view)
        request._views = []

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, object]:
        """Scheduler counters plus the session pool's hit/reuse report."""
        with self._lock:
            return {
                "policy": self.config.policy,
                "max_concurrent": self.config.max_concurrent,
                "epoch_budget": self.config.epoch_budget,
                "queued": len(self._queue),
                "active": len(self._active),
                "completed": self._completed,
                "failed": self._failed,
                "rounds": self._rounds,
                "session_pool": self._pool.stats(),
            }
