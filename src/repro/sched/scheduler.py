"""Epoch-granular cooperative scheduler for concurrent selection requests.

The online phase of one request is a :class:`~repro.core.plan.SelectionPlan`
— recall, then staged halving whose unit of work is a single
``(request, model, epoch-interval)`` training step.  :class:`EpochScheduler`
multiplexes many such plans over one shared training budget: each
*scheduling round* it picks up to ``epoch_budget`` epochs worth of runnable
steps across the active requests (fair-share or deadline order), deduplicates
steps that resolve to the same pooled session, executes the round through a
:mod:`repro.parallel` executor, and advances every plan whose stage
completed.  Admission control (bounded queue, ``max_concurrent``), per-request
epoch quotas and deadlines bound the work any request can consume.

Correctness does not depend on scheduling: every training step draws from
the per-``(model, task)`` named random stream of its session and every read
indexes the request's own epoch position, so a request's
:class:`~repro.core.results.TwoPhaseResult` is bitwise-identical whether it
ran alone through :class:`~repro.core.pipeline.TwoPhaseSelector`, batched,
or interleaved with arbitrary concurrent traffic (enforced by the property
suite in ``tests/property/test_property_scheduler.py``).  What scheduling
*does* change is cost: overlapping requests share partially-trained
checkpoints through the :class:`~repro.sched.pool.SessionPool`, so the
aggregate epochs actually trained can be far below the epochs charged.

The scheduler can be driven synchronously (:meth:`run_until_idle` — used by
:class:`~repro.core.batch.BatchedSelectionRunner`) or by its own background
thread (:meth:`start` — used by :meth:`repro.service.SelectionService.submit`).
"""

from __future__ import annotations

import copy
import dataclasses
import itertools
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.cache import fingerprint_task, fingerprint_text
from repro.cache import plan_key as make_plan_key
from repro.core.extrapolation import ExtrapolationConfig, resolve_extrapolation
from repro.core.plan import SelectionPlan, TrainStep
from repro.core.results import RecallResult, TwoPhaseResult
from repro.data.tasks import ClassificationTask
from repro.nn.batched import FusedSessionGroup
from repro.parallel.executor import Executor, ExecutorLike, get_executor
from repro.persist.codec import (
    decode_recall,
    decode_result,
    encode_recall,
    encode_result,
    encode_stage,
)
from repro.persist.recovery import pending_requests
from repro.persist.store import PlanStore
from repro.sched.config import SchedulerConfig
from repro.sched.pool import PooledSessionView, SessionPool
from repro.utils.exceptions import (
    BudgetExhaustedError,
    ConfigurationError,
    QueueFullError,
    RequestTimeoutError,
    SchedulerError,
)

#: Request lifecycle states (``SelectionRequest.state``).
QUEUED = "queued"
RECALL = "recall"
TRAINING = "training"
DONE = "done"
FAILED = "failed"


@dataclass
class SchedulerContext:
    """Artifact epoch a request is bound to at admission time.

    In-flight requests keep the context they were admitted under; a zoo
    refresh only changes what *later* requests see — mirroring the
    service's atomic artifact swap.
    """

    artifacts: object
    recall: object
    fine_selection: object
    version_key: str
    fine_tuner: object


class SelectionRequest:
    """Handle of one submitted request: state, progress and (later) result.

    Returned by :meth:`EpochScheduler.submit`; consumers poll it through
    :meth:`EpochScheduler.poll` or block on :meth:`EpochScheduler.result`.
    """

    def __init__(
        self,
        request_id: int,
        task: ClassificationTask,
        *,
        top_k: Optional[int],
        context: SchedulerContext,
        deadline: Optional[float],
        epoch_quota: Optional[int],
    ) -> None:
        self.id = request_id
        self.task = task
        self.top_k = top_k
        self.context = context
        self.deadline = deadline
        self.epoch_quota = epoch_quota
        self.state = QUEUED
        self.plan: Optional[SelectionPlan] = None
        self.result: Optional[TwoPhaseResult] = None
        self.error: Optional[Exception] = None
        self.epochs_charged = 0
        #: Epochs satisfied from the plan journal on a resumed request —
        #: charged to the request but (snapshots permitting) never retrained.
        self.epochs_replayed = 0
        #: Journal identity and handle when the scheduler persists plans.
        self.plan_key: Optional[str] = None
        self.journal = None
        self.submitted_at = time.monotonic()
        self.finished_at: Optional[float] = None
        self._views: List[PooledSessionView] = []
        self._event = threading.Event()
        #: Set (under the scheduler lock) by the first finish/fail; later
        #: attempts — e.g. a cancelling close() racing the serving thread —
        #: are no-ops, so completion callbacks never fire twice.
        self._terminal = False

    @property
    def target_name(self) -> str:
        """Name of the request's target task."""
        return self.task.name

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the request finishes (or ``timeout`` elapses)."""
        return self._event.wait(timeout)

    def latency_seconds(self) -> Optional[float]:
        """Submit-to-finish wall time (``None`` while still in flight)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at


def _resolve_task(context: SchedulerContext, target) -> ClassificationTask:
    from repro.core.batch import resolve_target_task

    return resolve_target_task(context.artifacts.suite, target)


class EpochScheduler:
    """Interleave the epoch steps of many concurrent selection requests.

    Parameters
    ----------
    context_provider:
        Zero-argument callable returning the :class:`SchedulerContext` new
        requests bind to.  A static lambda for one-shot batch use; the
        service passes a closure over its current artifacts so requests
        admitted after a zoo refresh see the new epoch.
    config:
        :class:`~repro.sched.config.SchedulerConfig` (policy, budgets,
        queue bound).
    parallel:
        Executor (or spec) the per-round training ops fan out over.
    pool:
        Session pool shared with other schedulers, if any; a fresh one is
        created otherwise (from the context's fine-tuner).
    on_complete:
        Callback ``(request)`` fired when a request finishes or fails —
        the service uses it for accounting.
    persist:
        Optional :class:`~repro.persist.store.PlanStore`.  When given,
        every request is written through an append-only plan journal
        (admission, recall, each charged step, stage transitions, result)
        and every advanced session is snapshotted — which is what makes a
        killed scheduler resumable via :meth:`recover` without re-paying
        journaled epochs, and finished requests answerable from disk.
    """

    def __init__(
        self,
        context_provider: Callable[[], SchedulerContext],
        *,
        config: Optional[SchedulerConfig] = None,
        parallel: ExecutorLike = None,
        pool: Optional[SessionPool] = None,
        on_complete: Optional[Callable[[SelectionRequest], None]] = None,
        persist: Optional[PlanStore] = None,
    ) -> None:
        self._context_provider = context_provider
        self.config = config or SchedulerConfig()
        self._executor = get_executor(parallel)
        self._persist = persist
        # Explicit None check: an empty SessionPool is falsy (it has a
        # __len__), and the fallback calls the context provider — which a
        # caller constructing us under its own lock may not allow yet.
        self._pool = (
            pool if pool is not None else SessionPool(context_provider().fine_tuner)
        )
        self._on_complete = on_complete
        self._lock = threading.RLock()
        self._wake = threading.Condition(self._lock)
        self._queue: List[SelectionRequest] = []
        self._active: List[SelectionRequest] = []
        self._ids = itertools.count()
        self._rr_offset = 0  # fair-share rotation cursor
        self._closed = False
        self._cancelled = False
        self._thread: Optional[threading.Thread] = None
        self._completed = 0
        self._failed = 0
        self._rounds = 0
        self._epochs_replayed = 0
        self._results_restored = 0
        self._recalls_restored = 0
        self._journal_errors = 0
        self._arms_pruned = 0
        self._prunes_replayed = 0
        # Fused-training bookkeeping: per-geometry probe verdicts (True =
        # stacked kernels proven bitwise-equal to the serial oracle, False
        # = divergence observed, group delegated) plus round counters.
        self._fused_verdicts: Dict[Tuple, bool] = {}
        self._fused_groups = 0
        self._fused_sessions = 0
        self._fused_epochs = 0
        self._serial_epochs = 0
        self._probe_epochs = 0
        self._delegated_groups = 0
        self._fused_largest_group = 0

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def for_artifacts(
        cls,
        artifacts,
        *,
        fine_tuner=None,
        recall=None,
        fine_selection=None,
        config: Optional[SchedulerConfig] = None,
        parallel: ExecutorLike = None,
        pool: Optional[SessionPool] = None,
        on_complete: Optional[Callable[[SelectionRequest], None]] = None,
        persist: Optional[PlanStore] = None,
    ) -> "EpochScheduler":
        """Scheduler over one fixed set of offline artifacts.

        Engines default to a fresh pair built exactly as the serial
        selector builds them (``build_phase_engines``), guaranteeing the
        two entry points cannot drift.
        """
        from repro.core.batch import build_phase_engines
        from repro.zoo.finetune import FineTuner

        tuner = fine_tuner or FineTuner(seed=0)
        if (recall is None) != (fine_selection is None):
            raise SchedulerError("recall and fine_selection must be supplied together")
        if recall is None:
            recall, fine_selection = build_phase_engines(
                artifacts, tuner, parallel=get_executor(parallel)
            )
        version = getattr(artifacts, "version", None)
        context = SchedulerContext(
            artifacts=artifacts,
            recall=recall,
            fine_selection=fine_selection,
            version_key=version.key if version is not None else "v0",
            fine_tuner=tuner,
        )
        return cls(
            lambda: context,
            config=config,
            parallel=parallel,
            pool=pool,
            on_complete=on_complete,
            persist=persist,
        )

    @property
    def pool(self) -> SessionPool:
        """The scheduler's session pool."""
        return self._pool

    # ------------------------------------------------------------------ #
    # submission API
    # ------------------------------------------------------------------ #
    def submit(
        self,
        target: Union[str, ClassificationTask],
        *,
        top_k: Optional[int] = None,
        timeout: Optional[float] = None,
        epoch_quota: Optional[int] = None,
        total_epochs: Optional[int] = None,
        extrapolate: Union[None, bool, ExtrapolationConfig] = None,
    ) -> SelectionRequest:
        """Enqueue one selection request; returns its handle immediately.

        ``total_epochs`` overrides the fine-selection policy's epoch budget
        for this request only (the *raise-budget* verb): with a persisted
        plan store the request reopens the same journal its smaller-budget
        run wrote — journals are keyed without the schedule — so the longer
        run replays the old rungs and charges only the delta epochs.

        ``extrapolate`` overrides the policy's speculative early-stopping
        mode for this request only: ``True`` (or an
        :class:`~repro.core.extrapolation.ExtrapolationConfig`) enables
        curve-extrapolation pruning, ``False`` forces exact mode, ``None``
        inherits the policy's default.  An enabled config becomes part of
        the request's plan key, so speculative and exact runs of the same
        target never share a journal.

        Raises :class:`~repro.utils.exceptions.QueueFullError` when the
        bounded admission queue is full (backpressure) and
        :class:`~repro.utils.exceptions.SchedulerError` after
        :meth:`close`.
        """
        context = self._context_provider()
        extrapolation = resolve_extrapolation(extrapolate)
        if total_epochs is not None or extrapolation is not None:
            # Per-request policy clone: shared engines, private budget/mode.
            policy = copy.copy(context.fine_selection)
            if total_epochs is not None:
                policy.config = dataclasses.replace(
                    policy.config, total_epochs=int(total_epochs)
                )
            if extrapolation is not None:
                if not hasattr(policy, "extrapolation"):
                    if extrapolation.enabled:
                        raise SchedulerError(
                            f"policy {policy.method!r} does not support "
                            "curve-extrapolation early stopping"
                        )
                else:
                    policy.extrapolation = extrapolation
            context = dataclasses.replace(context, fine_selection=policy)
        task = _resolve_task(context, target)
        if timeout is None:
            timeout = self.config.timeout_seconds
        if epoch_quota is None:
            epoch_quota = self.config.max_epochs_per_request
        with self._lock:
            if self._closed:
                raise SchedulerError("scheduler is closed")
            if len(self._queue) >= self.config.max_queue:
                raise QueueFullError(
                    f"admission queue is full ({self.config.max_queue} waiting); "
                    "retry later or raise max_queue"
                )
            request = SelectionRequest(
                next(self._ids),
                task,
                top_k=top_k,
                context=context,
                deadline=(
                    time.monotonic() + timeout if timeout is not None else None
                ),
                epoch_quota=epoch_quota,
            )
            if self._persist is not None:
                request.plan_key = self._plan_key(context, task, top_k)
            self._queue.append(request)
            self._wake.notify_all()
        return request

    @staticmethod
    def _active_extrapolation(
        context: SchedulerContext,
    ) -> Optional[ExtrapolationConfig]:
        """The context's extrapolation config, if present *and* enabled."""
        config = getattr(context.fine_selection, "extrapolation", None)
        if config is not None and config.enabled:
            return config
        return None

    def _plan_key(self, context: SchedulerContext, task, top_k) -> str:
        """Journal identity of one request (schedule deliberately excluded).

        An *enabled* extrapolation config is folded into the method
        component: speculative runs prune arms the exact path would train,
        so their journals must never be shared — while exact-mode keys
        stay byte-identical to those of earlier releases.
        """
        tuner = context.fine_tuner
        tuner_fingerprint = fingerprint_text(
            "finetuner", str(tuner._rng_factory.root_seed), repr(tuner.config)
        )
        method = context.fine_selection.method
        extrapolation = self._active_extrapolation(context)
        if extrapolation is not None:
            method = f"{method}+{extrapolation.fingerprint()}"
        return make_plan_key(
            context.version_key,
            fingerprint_task(task),
            method=method,
            tuner_fingerprint=tuner_fingerprint,
            top_k=top_k,
        )

    def poll(self, request: SelectionRequest, *, best: bool = False) -> Dict[str, object]:
        """Progress snapshot of one request (streaming per-stage detail).

        With ``best=True`` the snapshot additionally carries ``anytime`` —
        the plan's confidence-ordered current-best answer (see
        :meth:`repro.core.plan.SelectionPlan.best_so_far`), usable while
        the request is still training.
        """
        with self._lock:
            snapshot: Dict[str, object] = {
                "id": request.id,
                "target": request.target_name,
                "state": request.state,
                "epochs_charged": request.epochs_charged,
            }
            if request.epochs_replayed:
                snapshot["epochs_replayed"] = request.epochs_replayed
            if request.plan is not None:
                snapshot["progress"] = request.plan.progress()
                if best:
                    snapshot["anytime"] = request.plan.best_so_far()
            elif best and request.result is not None:
                # Result restored straight from the journal: no plan exists,
                # but the final answer is the best answer.
                selection = request.result.selection
                snapshot["anytime"] = {
                    "phase": "done",
                    "final": True,
                    "best": {
                        "model": selection.selected_model,
                        "surviving": True,
                        "epochs_trained": None,
                        "val_accuracy": selection.selected_val_accuracy,
                        "confidence": 1.0,
                    },
                    "candidates": [],
                }
            if request.error is not None:
                snapshot["error"] = {
                    "type": type(request.error).__name__,
                    "message": str(request.error),
                }
            latency = request.latency_seconds()
            if latency is not None:
                snapshot["latency_seconds"] = latency
        return snapshot

    def result(
        self, request: SelectionRequest, timeout: Optional[float] = None
    ) -> TwoPhaseResult:
        """Block until ``request`` finishes; return (or re-raise) its outcome."""
        if not request.wait(timeout):
            raise RequestTimeoutError(
                f"request {request.id} ({request.target_name!r}) still running "
                f"after {timeout:.1f}s"
            )
        if request.error is not None:
            raise request.error
        return request.result

    # ------------------------------------------------------------------ #
    # driving
    # ------------------------------------------------------------------ #
    def run_until_idle(self) -> None:
        """Drive rounds in the calling thread until no request remains."""
        while True:
            with self._lock:
                if not self._queue and not self._active:
                    return
            self._round()

    def start(self) -> None:
        """Run the scheduling loop on a daemon background thread."""
        with self._lock:
            if self._closed:
                raise SchedulerError("scheduler is closed")
            if self._thread is not None:
                return
            self._thread = threading.Thread(
                target=self._serve_forever, name="repro-epoch-scheduler", daemon=True
            )
            self._thread.start()

    def close(self, *, drain: bool = True) -> None:
        """Stop accepting requests; drain or cancel the in-flight ones.

        ``drain=True`` finishes everything already submitted;
        ``drain=False`` cancels instead — the serving thread stops at the
        next round boundary and every unfinished request fails with
        :class:`~repro.utils.exceptions.SchedulerError`.  Requests the
        thread finishes concurrently with the cancellation keep their real
        outcome: finishing is atomic per request, whoever gets there
        first.
        """
        with self._lock:
            self._closed = True
            if not drain:
                self._cancelled = True
            thread = self._thread
            self._wake.notify_all()
        if drain and thread is None:
            self.run_until_idle()
        if thread is not None:
            thread.join(timeout=60.0)
        if not drain:
            with self._lock:
                doomed = self._queue + self._active
                self._queue, self._active = [], []
            for request in doomed:
                self._fail(request, SchedulerError("scheduler closed"))

    def _serve_forever(self) -> None:
        while True:
            with self._lock:
                while (
                    not self._queue and not self._active
                    and not self._closed and not self._cancelled
                ):
                    self._wake.wait(timeout=0.5)
                if self._cancelled:
                    return
                if self._closed and not self._queue and not self._active:
                    return
            self._round()

    # ------------------------------------------------------------------ #
    # one scheduling round
    # ------------------------------------------------------------------ #
    def _round(self) -> None:
        self._admit()
        self._expire()
        batch = self._select_steps()
        if batch:
            self._execute(batch)
        with self._lock:
            self._rounds += 1
            finished = [
                request for request in self._active if request.plan and request.plan.done
            ]
            for request in finished:
                self._active.remove(request)
        for request in finished:
            self._finish(request)

    def _admit(self) -> None:
        """Move queued requests into the active set and run their recalls.

        The coarse recalls of everything admitted this round run as **one**
        executor map — one worker-pool dispatch for the whole admission
        wave rather than one per request, which matters for the fork-based
        process backend.  A recall failure (e.g. an unknown target) fails
        only its own request.
        """
        admitted: List[SelectionRequest] = []
        with self._lock:
            while self._queue and (
                len(self._active) + len(admitted) < self.config.max_concurrent
            ):
                request = self._queue.pop(0)
                request.state = RECALL
                admitted.append(request)
            self._active.extend(admitted)
        if not admitted:
            return
        # Journal-backed admission: a request whose journal already proves
        # a result (under this schedule) finishes without training; one
        # with a journaled recall skips the live recall.  Only the rest
        # pay for the batched recall dispatch below.
        live: List[SelectionRequest] = []
        for request in admitted:
            action, restored_recall = self._admit_from_journal(request)
            if action == "result":
                continue
            if action == "recall":
                self._begin_training(request, restored_recall)
            else:
                live.append(request)
        if not live:
            return
        self._prewarm(live)

        def recall_one(request: SelectionRequest):
            try:
                return True, request.context.recall.recall(
                    request.task, top_k=request.top_k
                )
            except Exception as error:  # noqa: BLE001 — reported per request
                return False, error

        outcomes = self._executor.map(recall_one, live)
        for request, (ok, outcome) in zip(live, outcomes):
            if not ok:
                with self._lock:
                    self._active.remove(request)
                self._fail(request, outcome)
                continue
            self._journal_append(request, "recall", encode_recall(outcome))
            self._begin_training(request, outcome)

    def _begin_training(
        self, request: SelectionRequest, recall_result: RecallResult
    ) -> None:
        try:
            self._start_plan(request, recall_result)
            request.state = TRAINING
        except Exception as error:  # noqa: BLE001 — failures land on the handle
            with self._lock:
                if request in self._active:
                    self._active.remove(request)
            self._fail(request, error)

    def _admit_from_journal(
        self, request: SelectionRequest
    ) -> Tuple[str, Optional[RecallResult]]:
        """Open the request's journal and restore whatever it already proves.

        Returns ``("result", None)`` when the request finished straight
        from a journaled result, ``("recall", result)`` when only the
        recall phase could be reused, and ``("live", None)`` otherwise.
        Appends a fresh ``request`` record whenever this submission's
        schedule differs from the journal's latest one (first submission,
        or a raised budget).
        """
        if self._persist is None or request.plan_key is None:
            return "live", None
        journal = self._persist.journal(request.plan_key)
        request.journal = journal
        schedule = [
            int(epochs)
            for epochs in request.context.fine_selection.stage_schedule()
        ]
        latest = journal.last_of_type("request")
        if latest is None or list(latest["payload"].get("schedule", [])) != schedule:
            payload: Dict[str, object] = {
                "plan_key": request.plan_key,
                "target": request.target_name,
                "version_key": request.context.version_key,
                "method": request.context.fine_selection.method,
                "top_k": request.top_k,
                "schedule": schedule,
            }
            extrapolation = self._active_extrapolation(request.context)
            if extrapolation is not None:
                # Recorded so startup recovery resubmits the request under
                # the same speculative mode (and hence the same plan key).
                payload["extrapolation"] = {
                    "enabled": True,
                    "min_stages": extrapolation.min_stages,
                    "slack": extrapolation.slack,
                    "num_trends": extrapolation.num_trends,
                }
            self._journal_append(request, "request", payload)
        try:
            for record in journal.of_type("result"):
                if list(record["payload"].get("schedule", [])) == schedule:
                    result = decode_result(record["payload"])
                    with self._lock:
                        if request in self._active:
                            self._active.remove(request)
                        self._results_restored += 1
                    self._finish_with(request, result)
                    return "result", None
            recall_record = journal.last_of_type("recall")
            if recall_record is not None:
                restored = decode_recall(recall_record["payload"])
                with self._lock:
                    self._recalls_restored += 1
                return "recall", restored
        except (KeyError, TypeError, ValueError):
            pass  # malformed payload: fall back to a live run
        return "live", None

    def _prewarm(self, admitted: Sequence[SelectionRequest]) -> None:
        """Materialise shared lazy state before fanning recalls out.

        With a non-serial executor, each recall worker would otherwise
        train the representatives' source heads (LEEP/NCE) privately —
        deterministic but wasted per-worker work.  Warming them in the
        parent shares them with forked children copy-on-write and keeps
        thread workers contention-free (exactly what the pre-scheduler
        batch fan-out did).
        """
        if self._executor.backend == "serial":
            return
        for context in {id(r.context): r.context for r in admitted}.values():
            scorer = getattr(context.recall, "_scorer", None)
            if getattr(scorer, "uses_source_posterior", False):
                for name in sorted(
                    set(context.artifacts.clustering.representatives.values())
                ):
                    context.artifacts.hub.get(name).source_head()

    def _start_plan(self, request: SelectionRequest, recall_result) -> None:
        context = request.context
        loader = self._persist.load_session if self._persist is not None else None

        def view_factory(name: str) -> PooledSessionView:
            view = self._pool.acquire(
                context.artifacts.hub.get(name),
                request.task,
                version_key=context.version_key,
                loader=loader,
            )
            request._views.append(view)
            return view

        plan = SelectionPlan(
            policy=context.fine_selection,
            task=request.task,
            view_factory=view_factory,
            candidates=recall_result.recalled_models,
            recall_result=recall_result,
        )
        request.plan = plan
        self._replay(request)

    def _replay(self, request: SelectionRequest) -> None:
        """Complete a resumed plan's journaled steps without recharging them.

        Walks the journal's ``step`` records in append order, claiming each
        one from the freshly built plan (:meth:`SelectionPlan.claim_step`)
        and completing it against the pooled session — which, having been
        restored from its snapshot, already holds the trained epochs, so
        ``ensure_epochs`` is a no-op and nothing retrains.  Steps whose
        ``(stage, epochs)`` don't match the current schedule position are
        skipped: they belong to an earlier submission under a different
        (since-raised) budget, and their training still flows in for free
        through the session snapshots.
        """
        if request.journal is None:
            return
        plan = request.plan
        schedule = plan.stage_schedule
        charged = 0
        trained = 0
        for record in request.journal.of_type("step"):
            if plan.done:
                break
            payload = record["payload"]
            stage = payload.get("stage")
            epochs = payload.get("epochs")
            if stage != plan.stage_index or epochs != schedule[plan.stage_index]:
                continue
            step = plan.claim_step(str(payload.get("model")))
            if step is None:
                continue  # filtered out / not recalled under this schedule
            view = plan.views[step.model]
            trained += view.entry.ensure_epochs(view.position + step.epochs)
            view.adopt(view.entry.session, advance=step.epochs)
            plan.complete(step)
            charged += step.epochs
        if charged:
            request.epochs_charged += charged
            request.epochs_replayed = charged
            self._pool.record_round(charged=charged, trained=trained)
            with self._lock:
                self._epochs_replayed += charged
        if plan.pruned:
            # Prunes re-derived while replaying journaled steps — the
            # resumed process reaches the same decisions the crashed one
            # journaled, without retraining (or recharging) stopped arms.
            with self._lock:
                self._prunes_replayed += len(plan.pruned)

    def _journal_append(
        self, request: SelectionRequest, record_type: str, payload: Dict[str, object]
    ) -> None:
        """Append one record to the request's journal (no-op without one).

        A failing disk degrades persistence, not the request: the write
        error is counted and the in-memory run continues.  Simulated
        crashes (:class:`~repro.persist.hooks.SimulatedCrash`) are
        :class:`BaseException` and still propagate.
        """
        if request.journal is None:
            return
        try:
            request.journal.append(record_type, payload)
        except OSError:
            with self._lock:
                self._journal_errors += 1

    def _expire(self) -> None:
        """Fail requests past their deadline (checked at round boundaries)."""
        now = time.monotonic()
        with self._lock:
            expired = [
                request
                for request in self._queue + self._active
                if request.deadline is not None and now > request.deadline
            ]
            for request in expired:
                if request in self._queue:
                    self._queue.remove(request)
                if request in self._active:
                    self._active.remove(request)
        for request in expired:
            self._fail(
                request,
                RequestTimeoutError(
                    f"request {request.id} ({request.target_name!r}) missed its "
                    "deadline"
                ),
            )

    def _order_active(self) -> List[SelectionRequest]:
        """Active requests in policy order for this round."""
        with self._lock:
            active = list(self._active)
            if self.config.policy == "deadline":
                # Earliest deadline first; requests without one run last,
                # in arrival order.
                active.sort(
                    key=lambda request: (
                        request.deadline if request.deadline is not None else float("inf"),
                        request.id,
                    )
                )
            else:  # fair_share
                if active:
                    offset = self._rr_offset % len(active)
                    active = active[offset:] + active[:offset]
                    self._rr_offset += 1
        return active

    def _select_steps(self) -> List[Tuple[SelectionRequest, TrainStep]]:
        """Claim up to ``epoch_budget`` epochs of runnable steps.

        Fair-share interleaves one step per request per pass; deadline
        drains the most urgent request's stage first.  A request whose
        next step would break its epoch quota fails here — before any
        budget is wasted on it.  An unbounded budget (``None``) drains
        every runnable step of the round in one wave.
        """
        budget = (
            self.config.epoch_budget
            if self.config.epoch_budget is not None
            else float("inf")
        )
        chosen: List[Tuple[SelectionRequest, TrainStep]] = []
        active = self._order_active()
        exhausted: List[SelectionRequest] = []
        # fair_share hands out one step per request per pass; deadline
        # keeps claiming from the most urgent request until its stage (or
        # the budget) is exhausted before moving to the next.
        drain_request = self.config.policy == "deadline"
        progress = True
        while budget > 0 and progress:
            progress = False
            for request in active:
                if budget <= 0:
                    break
                while budget > 0:
                    if (
                        request in exhausted
                        or request.plan is None
                        or request.plan.done
                    ):
                        break
                    step = request.plan.claim_next()
                    if step is None:
                        break
                    if step.epochs > budget and chosen:
                        # Out of round budget; put it back for next round.
                        request.plan.release(step)
                        break
                    quota = request.epoch_quota
                    if (
                        quota is not None
                        and request.epochs_charged + step.epochs > quota
                    ):
                        request.plan.release(step)
                        # Refund the doomed request's steps already chosen
                        # this round: nothing of a failed request should
                        # train, and the freed budget goes to live
                        # requests instead.
                        refunded = [s for r, s in chosen if r is request]
                        if refunded:
                            chosen = [
                                (r, s) for r, s in chosen if r is not request
                            ]
                            for earlier in refunded:
                                request.plan.release(earlier)
                            freed = sum(s.epochs for s in refunded)
                            request.epochs_charged -= freed
                            budget += freed
                        exhausted.append(request)
                        break
                    chosen.append((request, step))
                    request.epochs_charged += step.epochs
                    budget -= step.epochs
                    progress = True
                    if not drain_request:
                        break
        for request in exhausted:
            with self._lock:
                if request in self._active:
                    self._active.remove(request)
            self._fail(
                request,
                BudgetExhaustedError(
                    f"request {request.id} ({request.target_name!r}) exceeded its "
                    f"epoch quota of {request.epoch_quota}"
                ),
            )
        return chosen

    def _execute(self, batch: Sequence[Tuple[SelectionRequest, TrainStep]]) -> None:
        """Run one round's training ops, deduplicated by pooled session.

        Steps of different requests can resolve to the same shared session;
        each underlying session is trained **once per round**, to the
        furthest epoch any step needs, and every step then completes
        against the recorded curve.  Ops with the same geometry (fusion
        signature, epoch position, round target) train as one
        stacked-kernel group when ``fused_training`` is on (see
        :mod:`repro.nn.batched`); the rest fan out per session.  Units map
        over the configured executor; with the process backend the
        advanced sessions are pickled back and re-adopted, exactly like
        serial stage training.
        """
        # Group steps by session entry: one training op per shared session.
        ops: Dict[int, Tuple[PooledSessionView, int]] = {}
        for request, step in batch:
            view = request.plan.views[step.model]
            entry_id = id(view.entry)
            target = view.position + step.epochs
            current = ops.get(entry_id)
            if current is None or target > current[1]:
                ops[entry_id] = (view, target)

        op_list = list(ops.values())
        units = self._partition_ops(op_list)

        def train_unit(unit_index: int):
            # Only the unit index crosses the process boundary on dispatch,
            # and only picklable results (epoch counts + trained sessions +
            # a counter report) cross back — views hold locks and stay in
            # the parent.
            kind, indices = units[unit_index]
            if kind == "single":
                index = indices[0]
                view, target = op_list[index]
                trained = view.entry.ensure_epochs(target)
                return [(index, trained, view.entry.session)], None
            return self._train_fused([(i,) + op_list[i] for i in indices])

        trained_total = 0
        serial_singles = 0
        for results, fused_report in self._executor.map(
            train_unit, range(len(units))
        ):
            # With the process backend the parent's entry never trained;
            # adopt the advanced copy.  In-process backends adopt the same
            # object (a no-op reassignment).
            for index, trained, session in results:
                op_list[index][0].entry.adopt(session)
                trained_total += trained
                if fused_report is None:
                    serial_singles += trained
            if fused_report is not None:
                self._record_fused(fused_report)
        if serial_singles:
            with self._lock:
                self._serial_epochs += serial_singles

        charged_total = 0
        for request, step in batch:
            view = request.plan.views[step.model]
            view.adopt(view.entry.session, advance=step.epochs)
            charged_total += step.epochs
            if request.journal is not None:
                # Durability ordering: publish the session snapshot BEFORE
                # journaling the step, so every journaled step's training is
                # restorable.  A crash between the two leaves a snapshot
                # ahead of the journal — harmless, since views only read
                # the curve prefix at their own position.
                try:
                    self._persist.save_session(view.entry.key, view.entry.session)
                except OSError:
                    with self._lock:
                        self._journal_errors += 1
            stages_before = len(request.plan.stages)
            prunes_before = len(request.plan.pruned)
            request.plan.complete(step)
            self._journal_append(
                request,
                "step",
                {"model": step.model, "stage": step.stage, "epochs": step.epochs},
            )
            for stage_record in request.plan.stages[stages_before:]:
                self._journal_append(request, "stage", encode_stage(stage_record))
            # Early-stop decisions are journaled like stage transitions: a
            # resumed run re-derives them deterministically from the
            # replayed curves, and the records make the prune set auditable
            # without replaying.
            new_prunes = list(request.plan.pruned.items())[prunes_before:]
            if new_prunes:
                with self._lock:
                    self._arms_pruned += len(new_prunes)
                for model, prune_record in new_prunes:
                    self._journal_append(
                        request, "prune", {"model": model, **prune_record}
                    )
        # Dedup makes reuse explicit: epochs charged to requests minus
        # epochs actually trained this round is the pool's saving.
        self._pool.record_round(charged=charged_total, trained=trained_total)

    # ------------------------------------------------------------------ #
    # fused training
    # ------------------------------------------------------------------ #
    def _partition_ops(
        self, op_list: Sequence[Tuple[PooledSessionView, int]]
    ) -> List[Tuple[str, List[int]]]:
        """Split a round's deduplicated ops into fused stacks and singles.

        Ops whose sessions share a fusion signature, current epoch and
        round target form one ``("fused", indices)`` unit (stacked-kernel
        training); everything else — singletons, groups below
        ``fused_min_group``, geometries a probe has condemned, sessions
        without a fusion surface — stays on the per-session path as
        ``("single", [index])`` units.
        """
        if not self.config.fused_training:
            return [("single", [index]) for index in range(len(op_list))]
        groups: Dict[Tuple, List[int]] = {}
        singles: List[int] = []
        for index, (view, target) in enumerate(op_list):
            session = view.entry.session
            signature = getattr(session, "fusion_signature", None)
            if signature is None or target <= session.epochs_trained:
                singles.append(index)
                continue
            key = (signature(), session.epochs_trained, target)
            groups.setdefault(key, []).append(index)
        with self._lock:
            verdicts = dict(self._fused_verdicts)
        units: List[Tuple[str, List[int]]] = []
        for key, indices in groups.items():
            if len(indices) >= self.config.fused_min_group and verdicts.get(
                key[0], True
            ):
                units.append(("fused", indices))
            else:
                units.extend(("single", [index]) for index in indices)
        units.extend(("single", [index]) for index in singles)
        return units

    def _train_fused(
        self, items: Sequence[Tuple[int, PooledSessionView, int]]
    ) -> Tuple[List[Tuple[int, int, object]], Dict[str, object]]:
        """Train one same-geometry unit with the stacked kernels.

        Takes ``(op_index, view, target)`` items, holds every member's
        entry lock (sorted by pool key, so concurrent fused units cannot
        deadlock) while the stacked engine advances the sessions, and
        returns the per-op results plus a picklable counter report — the
        unit may run in a forked worker, so the parent round loop applies
        the report to the scheduler counters, never this method.

        Members that no longer align under the locks (another thread
        advanced their session since partitioning) fall back to
        ``ensure_epochs`` after the locks are released.
        """
        items = sorted(items, key=lambda item: item[1].entry.key)
        target = items[0][2]
        report: Dict[str, object] = {
            "signature": None,
            "groups": 0,
            "sessions": 0,
            "fused_epochs": 0,
            "serial_epochs": 0,
            "probe_epochs": 0,
            "delegated": 0,
            "verdict": None,
            "largest": 0,
        }
        results: List[Tuple[int, int, object]] = []
        fallback: List[Tuple[int, PooledSessionView, int]] = []
        entries = [view.entry for _, view, _ in items]
        for entry in entries:
            entry.lock.acquire()
        try:
            positions = [entry.session.epochs_trained for entry in entries]
            start = min(positions)
            fused_items = [
                item
                for item, position in zip(items, positions)
                if position == start and start < target
            ]
            if len(fused_items) < self.config.fused_min_group:
                fallback = list(items)
            else:
                fallback = [item for item in items if item not in fused_items]
                sessions = [view.entry.session for _, view, _ in fused_items]
                try:
                    group = FusedSessionGroup(sessions)
                    probe = group.signature not in self._fused_verdicts
                    advance = group.advance(target - start, probe=probe)
                except ConfigurationError:
                    # Geometry looked fusable by signature but the stacked
                    # engine refused it (defensive) — per-session path.
                    fallback = list(items)
                else:
                    for index, view, _ in fused_items:
                        results.append((index, target - start, view.entry.session))
                    report.update(
                        signature=group.signature,
                        groups=1,
                        sessions=len(fused_items),
                        fused_epochs=advance.fused_epochs,
                        serial_epochs=advance.serial_epochs,
                        probe_epochs=advance.probe_epochs,
                        delegated=int(advance.delegated),
                        verdict=(not advance.delegated) if probe else None,
                        largest=len(fused_items),
                    )
        finally:
            for entry in reversed(entries):
                entry.lock.release()
        for index, view, item_target in fallback:
            trained = view.entry.ensure_epochs(item_target)
            results.append((index, trained, view.entry.session))
            report["serial_epochs"] = int(report["serial_epochs"]) + trained
        return results, report

    def _record_fused(self, report: Dict[str, object]) -> None:
        """Fold one fused unit's counter report into the scheduler stats."""
        with self._lock:
            if report["signature"] is not None and report["verdict"] is not None:
                self._fused_verdicts[report["signature"]] = bool(report["verdict"])
            self._fused_groups += int(report["groups"])
            self._fused_sessions += int(report["sessions"])
            self._fused_epochs += int(report["fused_epochs"])
            self._serial_epochs += int(report["serial_epochs"])
            self._probe_epochs += int(report["probe_epochs"])
            self._delegated_groups += int(report["delegated"])
            self._fused_largest_group = max(
                self._fused_largest_group, int(report["largest"])
            )

    # ------------------------------------------------------------------ #
    # completion
    # ------------------------------------------------------------------ #
    def _make_terminal(self, request: SelectionRequest) -> bool:
        """Atomically claim the right to finish/fail ``request`` (once)."""
        with self._lock:
            if request._terminal:
                return False
            request._terminal = True
            return True

    def _finish(self, request: SelectionRequest) -> None:
        if not self._make_terminal(request):
            return
        request.result = request.plan.two_phase_result()
        self._journal_append(
            request,
            "result",
            encode_result(request.result, schedule=request.plan.stage_schedule),
        )
        request.state = DONE
        request.finished_at = time.monotonic()
        self._release_views(request)
        with self._lock:
            self._completed += 1
        request._event.set()
        if self._on_complete is not None:
            self._on_complete(request)

    def _finish_with(self, request: SelectionRequest, result: TwoPhaseResult) -> None:
        """Finish a request from a journaled result (no plan, no training)."""
        if not self._make_terminal(request):
            return
        request.result = result
        request.state = DONE
        request.finished_at = time.monotonic()
        self._release_views(request)
        with self._lock:
            self._completed += 1
        request._event.set()
        if self._on_complete is not None:
            self._on_complete(request)

    def _fail(self, request: SelectionRequest, error: Exception) -> None:
        if not self._make_terminal(request):
            return
        request.error = error
        request.state = FAILED
        request.finished_at = time.monotonic()
        self._release_views(request)
        with self._lock:
            self._failed += 1
        request._event.set()
        if self._on_complete is not None:
            self._on_complete(request)

    def _release_views(self, request: SelectionRequest) -> None:
        for view in request._views:
            self._pool.release(view)
        request._views = []

    # ------------------------------------------------------------------ #
    # recovery
    # ------------------------------------------------------------------ #
    def recover(self) -> List[SelectionRequest]:
        """Resubmit every journaled request still awaiting its result.

        Called once at startup (after a crash or orderly shutdown with
        work in flight).  Each pending journal of the current zoo version
        becomes a fresh submission under its journaled budget; admission
        then replays the journal, so the resumed run charges only what was
        never recorded.  Journals of other versions, other policies, or
        targets the current suite no longer knows are skipped — recovery
        must never be the thing that crashes a restart.  Returns the new
        handles in deterministic (journal path) order.
        """
        if self._persist is None:
            return []
        context = self._context_provider()
        current_schedule = [
            int(epochs) for epochs in context.fine_selection.stage_schedule()
        ]
        with self._lock:
            # A journal whose request is already live (e.g. recover() called
            # twice, or a client resubmitted the target) must not be
            # resubmitted — it is being driven to its result right now.
            live_keys = {
                request.plan_key
                for request in self._queue + self._active
                if request.plan_key is not None
            }
        recovered: List[SelectionRequest] = []
        for entry in pending_requests(self._persist, version_key=context.version_key):
            if entry.method != context.fine_selection.method or not entry.target:
                continue
            if entry.plan_key in live_keys:
                continue
            raise_to = (
                sum(entry.schedule)
                if entry.schedule and entry.schedule != current_schedule
                else None
            )
            # A journal without an extrapolation record ran exact — force
            # exact on resubmit (``False``, not ``None``) so a scheduler
            # whose *default* policy speculates still reopens the exact
            # journal under its original plan key, and vice versa.
            extrapolate: Union[bool, ExtrapolationConfig] = False
            if entry.extrapolation is not None:
                try:
                    extrapolate = ExtrapolationConfig(
                        enabled=True,
                        min_stages=int(entry.extrapolation["min_stages"]),
                        slack=float(entry.extrapolation["slack"]),
                        num_trends=int(entry.extrapolation["num_trends"]),
                    )
                except (KeyError, TypeError, ValueError):
                    continue  # unreadable mode record: leave it pending
            try:
                request = self.submit(
                    entry.target,
                    top_k=entry.top_k,
                    total_epochs=raise_to,
                    extrapolate=extrapolate,
                )
            except (SchedulerError, QueueFullError):
                break  # closed or saturated: remaining journals stay pending
            except Exception:  # noqa: BLE001 — e.g. target gone from the suite
                continue
            recovered.append(request)
        return recovered

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def load(self) -> Dict[str, int]:
        """Current queue depth and active-request count (heartbeat payload)."""
        with self._lock:
            return {"active": len(self._active), "queued": len(self._queue)}

    def stats(self) -> Dict[str, object]:
        """Scheduler counters plus the session pool's hit/reuse report."""
        with self._lock:
            report: Dict[str, object] = {
                "policy": self.config.policy,
                "max_concurrent": self.config.max_concurrent,
                "epoch_budget": self.config.epoch_budget,
                "queued": len(self._queue),
                "active": len(self._active),
                "completed": self._completed,
                "failed": self._failed,
                "rounds": self._rounds,
                "arms_pruned": self._arms_pruned,
                "session_pool": self._pool.stats(),
                "train": {
                    "fused_training": self.config.fused_training,
                    "fused_min_group": self.config.fused_min_group,
                    "fused_groups": self._fused_groups,
                    "fused_sessions": self._fused_sessions,
                    "fused_epochs": self._fused_epochs,
                    "serial_epochs": self._serial_epochs,
                    "probe_epochs": self._probe_epochs,
                    "delegated_groups": self._delegated_groups,
                    "largest_group": self._fused_largest_group,
                    "verified_geometries": sum(
                        1 for verdict in self._fused_verdicts.values() if verdict
                    ),
                },
            }
            if self._persist is not None:
                report["persist"] = {
                    **self._persist.stats(),
                    "epochs_replayed": self._epochs_replayed,
                    "results_restored": self._results_restored,
                    "recalls_restored": self._recalls_restored,
                    "prunes_replayed": self._prunes_replayed,
                    "journal_errors": self._journal_errors,
                }
        return report
