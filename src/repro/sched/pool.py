"""Session pool: share partially-trained fine-tuning sessions across requests.

Fine-tuning is the online phase's entire cost, and it is a *pure function*
of ``(zoo version, model, task, epoch count)``: every session draws from a
per-``(model, task)`` named random stream (see
:class:`~repro.zoo.finetune.FineTuner`), so two requests fine-tuning the
same checkpoint on the same task produce byte-identical learning curves.
:class:`SessionPool` exploits that: it memoises live
:class:`~repro.zoo.finetune.FineTuneSession` objects under
:func:`repro.cache.session_key` identities, hands each request a
:class:`~repro.core.plan.SessionView` onto the shared session, and only
ever trains the epochs *beyond* what the session has already recorded.
Concurrent and repeated requests thus reuse each other's partially-trained
checkpoints — the scheduler's main throughput win (it pays off even on one
CPU, where parallelism alone cannot).

Sessions are live training state, not immutable artifacts, so they live in
this dedicated pool rather than in the artifact LRU/disk tiers of
:mod:`repro.cache`; only the key *identities* are shared with the cache
subsystem.  The zoo version is part of every key, so a repository refresh
implicitly invalidates the superseded version's sessions —
:meth:`SessionPool.evict_version` then reclaims their memory eagerly, the
pool counterpart of ``ArtifactCache.evict_matching`` in the refresh sweep.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, List, Optional

from repro.cache import fingerprint_model, fingerprint_task, session_key
from repro.core.plan import SessionView
from repro.data.tasks import ClassificationTask
from repro.utils.exceptions import SelectionError
from repro.zoo.finetune import FineTuneSession, FineTuner
from repro.zoo.models import PretrainedModel


class PoolEntry:
    """One memoised fine-tuning lineage: the latest shared checkpoint.

    ``session`` only ever advances (training is append-only), and
    :meth:`ensure_epochs` serialises concurrent advancement under the
    entry lock, so readers holding a
    :class:`~repro.core.plan.SessionView` at an earlier epoch are never
    invalidated — their reads index the recorded curve prefix.
    """

    def __init__(self, key: str, session: FineTuneSession) -> None:
        self.key = key
        self.session = session
        self.lock = threading.Lock()
        #: Requests currently holding a view on this entry.
        self.leases = 0

    @property
    def epochs_trained(self) -> int:
        """Epochs the shared session has recorded so far."""
        return self.session.epochs_trained

    def checkpoint_key(self) -> str:
        """Epoch-qualified identity of the entry's current checkpoint."""
        return f"{self.key}:e={self.epochs_trained}"

    def ensure_epochs(self, target: int) -> int:
        """Train the shared session forward to ``target`` epochs (if behind).

        Returns the number of epochs actually trained (0 on a full reuse).
        Safe under concurrency: the entry lock serialises trainers, and a
        session that is already at or past ``target`` is left untouched.
        """
        with self.lock:
            delta = target - self.session.epochs_trained
            if delta > 0:
                self.session.train_epochs(delta)
            return max(0, delta)

    def adopt(self, session: FineTuneSession) -> None:
        """Replace the shared session with a further-trained copy.

        Used when training ran in a forked process worker and the advanced
        session was pickled back; the copy must dominate the current one
        (training is append-only), otherwise views could read past the end
        of the recorded curve.
        """
        with self.lock:
            if session.epochs_trained < self.session.epochs_trained:
                raise SelectionError(
                    "adopted session is behind the pooled one "
                    f"({session.epochs_trained} < {self.session.epochs_trained})"
                )
            self.session = session


class PooledSessionView(SessionView):
    """A request's view onto a pooled (shared) session."""

    def __init__(self, entry: PoolEntry) -> None:
        super().__init__(entry.session)
        self.entry = entry

    @property
    def curve(self):
        """Learning curve of the shared session (always the live object)."""
        return self.entry.session.curve


class SessionPool:
    """Memoise fine-tuning sessions by ``(zoo_version, model, task)``.

    Parameters
    ----------
    fine_tuner:
        Engine starting missing sessions.  One pool serves one tuner
        configuration — the tuner's named random streams are what make
        pooled sessions interchangeable with private ones.
    max_sessions:
        Bound on memoised lineages.  Least-recently-used entries *without
        active leases* are evicted past the bound; leased entries are
        never dropped (their holders keep training them).
    """

    def __init__(self, fine_tuner: FineTuner, *, max_sessions: int = 512) -> None:
        if max_sessions < 1:
            raise SelectionError("max_sessions must be >= 1")
        self.fine_tuner = fine_tuner
        self.max_sessions = int(max_sessions)
        self._entries: "OrderedDict[str, PoolEntry]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._epochs_trained = 0
        self._epochs_reused = 0
        self._evicted = 0
        self._restored = 0

    # ------------------------------------------------------------------ #
    # acquisition and release
    # ------------------------------------------------------------------ #
    def acquire(
        self,
        model: PretrainedModel,
        task: ClassificationTask,
        *,
        version_key: str,
        loader: Optional[Callable[[str], Optional[FineTuneSession]]] = None,
    ) -> PooledSessionView:
        """Lease a view on the ``(version, model, task)`` session lineage.

        A pool hit returns a view positioned at epoch 0 over the existing
        (possibly already-trained) shared session; a miss starts a fresh
        session through the pool's fine-tuner.  ``loader``, when given, is
        consulted with the session key before starting fresh — the durable
        :class:`~repro.persist.store.PlanStore` passes its snapshot loader
        here, so a restarted process repopulates the pool with the epochs
        a previous process already paid for.
        """
        key = session_key(
            version_key, fingerprint_model(model), fingerprint_task(task)
        )
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits += 1
            else:
                session = loader(key) if loader is not None else None
                if session is not None:
                    self._restored += 1
                else:
                    session = self.fine_tuner.start_session(model, task)
                entry = PoolEntry(key, session)
                self._entries[key] = entry
                self._misses += 1
                self._evict_over_bound()
            entry.leases += 1
        return PooledSessionView(entry)

    def release(self, view: PooledSessionView) -> None:
        """Return a leased view (entry becomes evictable at zero leases)."""
        with self._lock:
            view.entry.leases = max(0, view.entry.leases - 1)

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #
    def advance(self, view: PooledSessionView, epochs: int) -> int:
        """Advance ``view`` by ``epochs``, training only what is missing.

        The charged cost is always ``epochs`` (the algorithm's accounting
        must stay identical to the serial path); the *actual* training is
        ``epochs`` minus whatever prefix the shared session already has.
        Returns the epochs actually trained.
        """
        target = view.position + int(epochs)
        trained = view.entry.ensure_epochs(target)
        view.adopt(view.entry.session, advance=epochs)
        with self._lock:
            self._epochs_trained += trained
            self._epochs_reused += int(epochs) - trained
        return trained

    def record_round(self, *, charged: int, trained: int) -> None:
        """Account one externally executed scheduling round.

        Used by :class:`~repro.sched.scheduler.EpochScheduler`, which runs
        the training ops itself (deduplicated across requests, possibly in
        worker processes): ``charged`` is the epochs billed to requests,
        ``trained`` the epochs actually spent; the difference is the
        pool's session-reuse saving.
        """
        with self._lock:
            self._epochs_trained += int(trained)
            self._epochs_reused += int(charged) - int(trained)

    # ------------------------------------------------------------------ #
    # eviction and stats
    # ------------------------------------------------------------------ #
    def _evict_over_bound(self) -> None:
        # Caller holds self._lock.
        while len(self._entries) > self.max_sessions:
            for key, entry in self._entries.items():
                if entry.leases == 0:
                    del self._entries[key]
                    self._evicted += 1
                    break
            else:
                return  # every entry is leased; nothing can go

    def evict_version(self, version_key: str) -> int:
        """Drop every idle session of one zoo version; return the count."""
        return self.evict_matching(f"zoo={version_key}:")

    def evict_matching(self, fragment: str) -> int:
        """Drop idle sessions whose key contains ``fragment``."""
        with self._lock:
            doomed = [
                key
                for key, entry in self._entries.items()
                if fragment in key and entry.leases == 0
            ]
            for key in doomed:
                del self._entries[key]
            self._evicted += len(doomed)
            return len(doomed)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def checkpoint_keys(self) -> List[str]:
        """Epoch-qualified keys of every pooled checkpoint (for debugging)."""
        with self._lock:
            return [entry.checkpoint_key() for entry in self._entries.values()]

    def stats(self) -> Dict[str, int]:
        """Hit/miss/reuse counters of the pool.

        ``epochs_reused`` is the training the pool avoided: epochs charged
        to requests but served from an already-trained session prefix.
        """
        with self._lock:
            return {
                "sessions": len(self._entries),
                "hits": self._hits,
                "misses": self._misses,
                "epochs_trained": self._epochs_trained,
                "epochs_reused": self._epochs_reused,
                "evicted": self._evicted,
                "restored": self._restored,
            }
