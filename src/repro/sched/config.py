"""Configuration of the epoch-granular online scheduler.

None of these knobs exist in the paper — they are deployment policy for
serving Algorithm 1 under concurrent traffic, and none of them can change
*what* a request answers (results are bitwise-identical for every setting;
only latency, throughput and admission behaviour move).  See
``docs/serving.md`` for tuning guidance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.utils.exceptions import ConfigurationError

#: Scheduling policies accepted by :class:`SchedulerConfig`.
POLICIES = ("fair_share", "deadline")


@dataclass(frozen=True)
class SchedulerConfig:
    """Settings of one :class:`~repro.sched.scheduler.EpochScheduler`.

    Attributes
    ----------
    policy:
        ``"fair_share"`` (default) round-robins one epoch step per active
        request, so every request makes steady progress; ``"deadline"``
        drains the request with the earliest deadline first (requests
        without a deadline queue behind those with one, in arrival order).
    max_concurrent:
        Admitted requests training at once.  Admission control: requests
        beyond this wait in the queue; raising it increases session-reuse
        opportunities (more overlapping requests in flight) at the cost of
        per-request latency under contention.
    epoch_budget:
        Global bound on fine-tuning epochs dispatched per scheduling round
        (the ``epochs_in_flight`` budget).  This is the knob that shares
        the training capacity between requests: one round never trains
        more than this many epoch-steps, whatever the number of active
        requests.  ``None`` removes the bound — every round drains one
        full stage wave across the active requests, which is what a bulk
        batch (all requests submitted together, fairness irrelevant)
        wants: the fewest, fattest executor dispatches.
    max_queue:
        Bound of the admission queue (waiting requests, excluding active
        ones).  ``submit`` raises
        :class:`~repro.utils.exceptions.QueueFullError` beyond it — the
        scheduler's backpressure signal.
    max_epochs_per_request:
        Per-request quota of *charged* fine-tuning epochs.  A request that
        would exceed it fails with
        :class:`~repro.utils.exceptions.BudgetExhaustedError` instead of
        training on.  ``None`` disables the quota.
    timeout_seconds:
        Default per-request deadline; a request still unfinished past it
        fails with :class:`~repro.utils.exceptions.RequestTimeoutError`
        at the next round boundary.  ``None`` disables timeouts (a
        ``submit``-time deadline still applies when given).
    fused_training:
        Train same-geometry sessions of one round as a single
        stacked-kernel group (:mod:`repro.nn.batched`) instead of one
        ``fit_epoch`` loop per session.  Like every knob here it cannot
        change results — the first fused epoch of each new geometry is
        verified bitwise against the serial oracle, and any divergence
        delegates the group back to the per-session path.
    fused_min_group:
        Smallest round group worth stacking; rounds with fewer
        same-geometry sessions than this run the plain per-session path
        (stacking a singleton only adds copying overhead).
    """

    policy: str = "fair_share"
    max_concurrent: int = 4
    epoch_budget: Optional[int] = 8
    max_queue: int = 64
    max_epochs_per_request: Optional[int] = None
    timeout_seconds: Optional[float] = None
    fused_training: bool = True
    fused_min_group: int = 2

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ConfigurationError(
                f"unknown scheduling policy {self.policy!r}; "
                f"expected one of {'/'.join(POLICIES)}"
            )
        if self.max_concurrent < 1:
            raise ConfigurationError("max_concurrent must be >= 1")
        if self.epoch_budget is not None and self.epoch_budget < 1:
            raise ConfigurationError("epoch_budget must be >= 1 when given")
        if self.max_queue < 1:
            raise ConfigurationError("max_queue must be >= 1")
        if self.max_epochs_per_request is not None and self.max_epochs_per_request < 1:
            raise ConfigurationError(
                "max_epochs_per_request must be >= 1 when given"
            )
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ConfigurationError("timeout_seconds must be positive when given")
        if self.fused_min_group < 2:
            raise ConfigurationError("fused_min_group must be >= 2")
