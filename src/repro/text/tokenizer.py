"""Tokenisation for model-card text."""

from __future__ import annotations

import re
from typing import List, Set

_TOKEN_PATTERN = re.compile(r"[a-z0-9]+")

#: Common English words carrying no model-card-specific signal.
_STOPWORDS: Set[str] = {
    "a", "an", "and", "are", "as", "at", "be", "by", "for", "from", "has",
    "in", "is", "it", "its", "of", "on", "or", "that", "the", "this", "to",
    "was", "were", "with", "without", "your", "you", "use", "used", "using",
}


def tokenize(text: str, *, remove_stopwords: bool = True, min_length: int = 2) -> List[str]:
    """Lower-case word/number tokens of ``text``.

    Model names like ``bert_ft_qqp-68`` split into their informative pieces
    (``bert``, ``ft``, ``qqp``, ``68``), which is what lets the text baseline
    group checkpoints with similar names.
    """
    tokens = _TOKEN_PATTERN.findall(text.lower())
    filtered = []
    for token in tokens:
        if len(token) < min_length:
            continue
        if remove_stopwords and token in _STOPWORDS:
            continue
        filtered.append(token)
    return filtered
