"""Document embedding and cosine-similarity helpers."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.text.tfidf import TfidfVectorizer
from repro.utils.exceptions import DataError


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two vectors (0 when either is all-zero)."""
    a = np.asarray(a, dtype=float).ravel()
    b = np.asarray(b, dtype=float).ravel()
    if a.shape != b.shape:
        raise DataError(f"vectors must have the same shape ({a.shape} vs {b.shape})")
    denominator = np.linalg.norm(a) * np.linalg.norm(b)
    if denominator == 0:
        return 0.0
    return float(np.dot(a, b) / denominator)


def cosine_similarity_matrix(rows: np.ndarray) -> np.ndarray:
    """Pairwise cosine similarities of the rows of ``rows``."""
    rows = np.asarray(rows, dtype=float)
    if rows.ndim != 2:
        raise DataError(f"rows must be 2-d, got shape {rows.shape}")
    norms = np.linalg.norm(rows, axis=1)
    norms = np.where(norms == 0, 1.0, norms)
    normalised = rows / norms[:, None]
    similarity = normalised @ normalised.T
    return np.clip(similarity, -1.0, 1.0)


class TextEmbedder:
    """Embed named documents (model cards) into TF-IDF space.

    This is the reproduction's stand-in for SBERT in the text-based
    clustering baseline of Table I.
    """

    def __init__(self, *, max_features: int = 512) -> None:
        self._vectorizer = TfidfVectorizer(max_features=max_features)
        self._names: list[str] = []
        self._matrix: np.ndarray | None = None

    def fit(self, documents: Dict[str, str]) -> "TextEmbedder":
        """Fit the embedder on a name -> document mapping."""
        if not documents:
            raise DataError("cannot fit a TextEmbedder on an empty document set")
        self._names = list(documents.keys())
        self._matrix = self._vectorizer.fit_transform([documents[name] for name in self._names])
        return self

    @property
    def names(self) -> Sequence[str]:
        """Names of the fitted documents, aligned with :meth:`embeddings`."""
        return list(self._names)

    def embeddings(self) -> np.ndarray:
        """Embedding matrix of the fitted documents."""
        if self._matrix is None:
            raise DataError("TextEmbedder must be fitted first")
        return self._matrix

    def similarity_matrix(self) -> np.ndarray:
        """Pairwise cosine similarity of the fitted documents."""
        return cosine_similarity_matrix(self.embeddings())

    def similarity(self, name_a: str, name_b: str) -> float:
        """Cosine similarity between two fitted documents by name."""
        if self._matrix is None:
            raise DataError("TextEmbedder must be fitted first")
        try:
            index_a = self._names.index(name_a)
            index_b = self._names.index(name_b)
        except ValueError as error:
            raise DataError(f"unknown document name: {error}") from None
        return cosine_similarity(self._matrix[index_a], self._matrix[index_b])
