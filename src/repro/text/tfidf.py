"""TF-IDF vectoriser over tokenised documents."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.text.tokenizer import tokenize
from repro.utils.exceptions import DataError


class TfidfVectorizer:
    """Fit a vocabulary on a corpus and transform documents to TF-IDF rows.

    The vectoriser uses smoothed inverse document frequency
    (``log((1 + n) / (1 + df)) + 1``) and L2-normalised rows, matching the
    common implementation so cosine similarities behave as expected.
    """

    def __init__(self, *, max_features: Optional[int] = None, min_df: int = 1) -> None:
        if max_features is not None and max_features < 1:
            raise DataError("max_features must be >= 1 when given")
        if min_df < 1:
            raise DataError("min_df must be >= 1")
        self.max_features = max_features
        self.min_df = int(min_df)
        self.vocabulary_: Dict[str, int] = {}
        self.idf_: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    def fit(self, documents: Sequence[str]) -> "TfidfVectorizer":
        """Learn the vocabulary and IDF weights from ``documents``."""
        if not documents:
            raise DataError("cannot fit a TF-IDF vectoriser on an empty corpus")
        tokenised = [tokenize(doc) for doc in documents]
        document_frequency: Dict[str, int] = {}
        for tokens in tokenised:
            for token in set(tokens):
                document_frequency[token] = document_frequency.get(token, 0) + 1
        terms = [
            term for term, df in document_frequency.items() if df >= self.min_df
        ]
        # Order by document frequency (desc) then alphabetically for stability.
        terms.sort(key=lambda term: (-document_frequency[term], term))
        if self.max_features is not None:
            terms = terms[: self.max_features]
        self.vocabulary_ = {term: index for index, term in enumerate(sorted(terms))}
        n = len(documents)
        idf = np.zeros(len(self.vocabulary_))
        for term, index in self.vocabulary_.items():
            idf[index] = np.log((1.0 + n) / (1.0 + document_frequency[term])) + 1.0
        self.idf_ = idf
        return self

    def transform(self, documents: Sequence[str]) -> np.ndarray:
        """Transform ``documents`` to L2-normalised TF-IDF rows."""
        if self.idf_ is None:
            raise DataError("vectoriser must be fitted before transform")
        matrix = np.zeros((len(documents), len(self.vocabulary_)))
        for row, document in enumerate(documents):
            tokens = tokenize(document)
            if not tokens:
                continue
            counts: Dict[int, int] = {}
            for token in tokens:
                index = self.vocabulary_.get(token)
                if index is not None:
                    counts[index] = counts.get(index, 0) + 1
            for index, count in counts.items():
                matrix[row, index] = (count / len(tokens)) * self.idf_[index]
            norm = np.linalg.norm(matrix[row])
            if norm > 0:
                matrix[row] /= norm
        return matrix

    def fit_transform(self, documents: Sequence[str]) -> np.ndarray:
        """Fit on ``documents`` and return their TF-IDF rows."""
        return self.fit(documents).transform(documents)

    @property
    def feature_names(self) -> List[str]:
        """Vocabulary terms ordered by their column index."""
        return sorted(self.vocabulary_, key=self.vocabulary_.get)
