"""Lightweight text-embedding substrate (SBERT stand-in).

The paper's text-based clustering baseline encodes each HuggingFace model
card with SBERT and compares cards by cosine similarity.  Offline we embed
the synthetic model cards with a TF-IDF bag-of-words vectoriser, which keeps
the relevant property of the baseline — it sees naming/description overlap
but not training-performance structure.
"""

from repro.text.embedding import TextEmbedder, cosine_similarity, cosine_similarity_matrix
from repro.text.tfidf import TfidfVectorizer
from repro.text.tokenizer import tokenize

__all__ = [
    "TextEmbedder",
    "cosine_similarity",
    "cosine_similarity_matrix",
    "TfidfVectorizer",
    "tokenize",
]
