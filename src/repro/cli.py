"""Command-line front-end: drive the selection system without writing Python.

Six subcommands, all on top of :class:`repro.service.SelectionService` and
the experiment runner (see ``docs/cli.md``)::

    python -m repro select       # one target: coarse recall + fine selection
    python -m repro batch        # many targets off one shared clustering
    python -m repro serve        # long-lived JSON front-end over the epoch
                                 # scheduler (stdin/stdout, or TCP via --port)
    python -m repro zoo          # add/remove/refresh checkpoints incrementally,
                                 # or `zoo build [--ooc --max-memory MB]` to run
                                 # the (optionally out-of-core) offline phase
    python -m repro experiments  # regenerate the paper's tables and figures
    python -m repro bench        # serial-vs-parallel batched-selection timing

Every command accepts ``--scale small`` for fast smoke runs and
``--parallel backend[:workers]`` (or the ``REPRO_PARALLEL`` environment
variable) to pick an executor; ``select``, ``batch`` and ``zoo`` can emit
JSON for scripting with ``--json``.  ``select`` and ``batch`` accept
``--timeout``/``--max-queue`` to route through the epoch scheduler with a
deadline and bounded admission; on budget exhaustion they emit a
structured JSON error object and exit with the distinct code 3
(:data:`repro.serving.EXIT_SCHEDULER`) instead of blocking forever.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, Optional, Sequence

from repro.core.results import TwoPhaseResult
from repro.parallel.config import BACKENDS, ParallelConfig
from repro.serving import EXIT_SCHEDULER, error_payload, result_payload
from repro.utils.exceptions import ReproError, SchedulerError


# --------------------------------------------------------------------------- #
# shared argument plumbing
# --------------------------------------------------------------------------- #
def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--modality",
        choices=("nlp", "cv"),
        default="nlp",
        help="which simulated repository to serve (default: nlp)",
    )
    parser.add_argument(
        "--scale",
        choices=("full", "small"),
        default="full",
        help="dataset scale; 'small' keeps smoke runs fast (default: full)",
    )
    parser.add_argument("--seed", type=int, default=0, help="root seed (default: 0)")
    parser.add_argument(
        "--num-models",
        type=int,
        default=None,
        metavar="N",
        help="truncate the repository to its first N catalogue entries",
    )
    parser.add_argument(
        "--parallel",
        default=None,
        metavar="SPEC",
        help=(
            "executor spec 'backend[:workers]' with backend one of "
            f"{'/'.join(BACKENDS)} (default: REPRO_PARALLEL or serial)"
        ),
    )


def _parallel_config(args: argparse.Namespace) -> ParallelConfig:
    if args.parallel is not None:
        return ParallelConfig.from_spec(args.parallel)
    return ParallelConfig.from_env()


def _positive_int(text: str) -> int:
    """Argparse type for strictly positive integer flags."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {value}")
    return value


def _positive_float(text: str) -> float:
    """Argparse type for strictly positive float flags (seconds)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"expected a positive number, got {value}")
    return value


def _scheduler_config(args: argparse.Namespace):
    """SchedulerConfig from the command's scheduling flags (if any)."""
    from repro.sched.config import SchedulerConfig

    defaults = SchedulerConfig()
    return SchedulerConfig(
        policy=getattr(args, "policy", None) or defaults.policy,
        max_concurrent=getattr(args, "max_concurrent", None)
        or defaults.max_concurrent,
        epoch_budget=getattr(args, "epoch_budget", None) or defaults.epoch_budget,
        max_queue=getattr(args, "max_queue", None) or defaults.max_queue,
        timeout_seconds=getattr(args, "timeout", None),
        fused_training=not getattr(args, "no_fused_training", False),
    )


def _extrapolation_config(args: argparse.Namespace):
    """Service-level ExtrapolationConfig from ``--extrapolate`` (or None)."""
    if not getattr(args, "extrapolate", False):
        return None
    from repro.core.extrapolation import ExtrapolationConfig

    return ExtrapolationConfig(enabled=True)


def _build_service(args: argparse.Namespace):
    from repro.service import SelectionService

    return SelectionService.from_modality(
        args.modality,
        scale=args.scale,
        seed=args.seed,
        num_models=args.num_models,
        parallel=_parallel_config(args),
        scheduler=_scheduler_config(args),
        store_dir=getattr(args, "store_dir", None),
        extrapolation=_extrapolation_config(args),
    )


def _build_hub(args: argparse.Namespace):
    """Workload suite + (optionally truncated) hub from the common flags."""
    from repro.data.workloads import DataScale, suite_for_modality
    from repro.zoo.hub import ModelHub

    data_scale = DataScale.default() if args.scale == "full" else DataScale.small()
    suite = suite_for_modality(args.modality, seed=args.seed, scale=data_scale)
    hub = ModelHub(suite, seed=args.seed)
    if args.num_models is not None:
        hub = hub.subset(hub.model_names[: args.num_models])
    return suite, hub


# JSON payload helpers are shared with the serve front-end.
_result_payload = result_payload


def _scheduler_failure(error: Exception, stream) -> int:
    """Report a scheduler admission/budget failure: JSON object + exit 3."""
    json.dump(error_payload(error), stream, indent=2)
    print(file=stream)
    return EXIT_SCHEDULER


def _print_result(result: TwoPhaseResult, *, stream) -> None:
    print(f"target          : {result.target_name}", file=stream)
    print(f"selected model  : {result.selected_model}", file=stream)
    print(f"test accuracy   : {result.selected_accuracy:.3f}", file=stream)
    print(
        f"total cost      : {result.total_cost:.1f} epoch-equivalents "
        f"({result.selection.runtime_epochs:.0f} fine-tuning epochs + "
        f"{result.recall.epoch_cost:.1f} proxy)",
        file=stream,
    )
    print(f"recalled models : {len(result.recall.recalled_models)}", file=stream)
    for rank, name in enumerate(result.recall.recalled_models, start=1):
        marker = "*" if name == result.selected_model else " "
        print(
            f"  {marker} {rank:2d}. {name} "
            f"(recall score {result.recall.recall_scores[name]:.3f})",
            file=stream,
        )


# --------------------------------------------------------------------------- #
# subcommands
# --------------------------------------------------------------------------- #
def _cmd_select(args: argparse.Namespace, stream) -> int:
    service = _build_service(args)
    started = time.perf_counter()
    scheduled = (
        args.timeout is not None
        or args.max_queue is not None
        or args.store_dir is not None
        or args.raise_budget is not None
        or args.anytime
        or args.extrapolate
    )
    anytime = None
    if scheduled:
        # Scheduled path: admission control + deadline.  The result is
        # bitwise-identical to the blocking path; only failure modes
        # (queue full, deadline missed) differ — those exit with the
        # distinct scheduler code instead of blocking forever.  The
        # persistence flags also land here: journals, budget raises and
        # anytime snapshots only exist on the scheduler's plan objects.
        try:
            extrapolate = None
            if args.extrapolate:
                extrapolate = True
            elif args.exact:
                extrapolate = False
            handle = service.submit(args.target, top_k=args.top_k,
                                    timeout=args.timeout,
                                    total_epochs=args.raise_budget,
                                    extrapolate=extrapolate)
            result = service.result(handle)
        except SchedulerError as error:
            return _scheduler_failure(error, stream)
        if args.anytime:
            anytime = service.poll(handle, best=True).get("anytime")
    else:
        result = service.select(args.target, top_k=args.top_k)
    elapsed = time.perf_counter() - started
    if args.json:
        payload = _result_payload(result)
        payload["elapsed_seconds"] = elapsed
        if anytime is not None:
            payload["anytime"] = anytime
        json.dump(payload, stream, indent=2)
        print(file=stream)
    else:
        _print_result(result, stream=stream)
        print(f"online time     : {elapsed:.2f}s "
              f"(parallel={service.parallel_spec})", file=stream)
        if anytime is not None and anytime.get("best"):
            best = anytime["best"]
            print(
                f"anytime best    : {best['model']} "
                f"(val acc {best['val_accuracy']:.3f}, "
                f"confidence {best['confidence']:.2f})",
                file=stream,
            )
    return 0


def _cmd_batch(args: argparse.Namespace, stream) -> int:
    service = _build_service(args)
    targets = args.targets or service.target_names
    started = time.perf_counter()
    if args.timeout is not None or args.max_queue is not None:
        from repro.core.batch import BatchSelectionReport

        try:
            handles = [
                service.submit(target, top_k=args.top_k, timeout=args.timeout)
                for target in targets
            ]
            report = BatchSelectionReport()
            for target, handle in zip(targets, handles):
                report.results[target] = service.result(handle)
        except SchedulerError as error:
            return _scheduler_failure(error, stream)
    else:
        report = service.select_many(targets, top_k=args.top_k)
    elapsed = time.perf_counter() - started
    if args.json:
        payload = {
            "targets": {
                name: _result_payload(report.result_for(name))
                for name in report.target_names
            },
            "totals": report.summary(),
            "elapsed_seconds": elapsed,
        }
        json.dump(payload, stream, indent=2)
        print(file=stream)
        return 0
    width = max(len(name) for name in report.target_names)
    print(f"batched selection over {len(report.target_names)} targets "
          f"(parallel={service.parallel_spec}):", file=stream)
    for name in report.target_names:
        result = report.result_for(name)
        print(
            f"  {name:<{width}}  -> {result.selected_model}  "
            f"acc={result.selected_accuracy:.3f}  cost={result.total_cost:.1f}",
            file=stream,
        )
    totals = report.summary()
    print(
        f"totals: {totals['total_cost']:.1f} epoch-equivalents over "
        f"{int(totals['num_tasks'])} tasks, mean accuracy "
        f"{totals['mean_selected_accuracy']:.3f}, wall time {elapsed:.2f}s",
        file=stream,
    )
    return 0


def _cmd_serve(args: argparse.Namespace, stream) -> int:
    """Long-lived JSON front-end over the service's epoch scheduler."""
    from repro.distrib.worker import arm_parent_watchdog_from_env
    from repro.persist.hooks import arm_exit_from_env

    # Fault-injection seam: REPRO_CRASH_SITE hard-kills this process at a
    # named persistence boundary (see tests/faultinject/harness.py).
    arm_exit_from_env()
    # Routed-worker seam: REPRO_PARENT_PID hard-exits this process once
    # its supervising router is gone (see repro.distrib.worker).
    arm_parent_watchdog_from_env()
    if args.workers is not None:
        return _cmd_serve_routed(args, stream)
    from repro.serving import ServeFrontEnd

    service = _build_service(args)
    recover = args.store_dir is not None and not args.no_recover
    front = ServeFrontEnd(service, default_timeout=args.timeout,
                          recover=recover)
    config = service._scheduler_config
    version = service.artifacts.version
    banner = {
        "event": "serving",
        "modality": args.modality,
        "num_models": len(service.artifacts.hub),
        "policy": config.policy,
        "max_concurrent": config.max_concurrent,
        "epoch_budget": config.epoch_budget,
        "max_queue": config.max_queue,
        "fused_training": config.fused_training,
        "zoo_version": version.key if version is not None else "v0",
        "extrapolation": bool(getattr(args, "extrapolate", False)),
    }
    if args.store_dir is not None:
        from repro.persist import store_summary

        banner["store_dir"] = args.store_dir
        banner["recovered"] = front.recovered_count
        banner["store"] = store_summary(service._persist)
    if args.port is not None:
        server = front.serve_tcp(args.host, args.port)
        banner["port"] = server.server_address[1]
        json.dump(banner, stream)
        print(file=stream, flush=True)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.shutdown()
            server.server_close()
            service.close()
        return 0
    json.dump(banner, stream)
    print(file=stream, flush=True)
    code = front.serve_stream(sys.stdin, stream)
    service.close()
    return code


def _cmd_serve_routed(args: argparse.Namespace, stream) -> int:
    """Routed serving: a consistent-hash router over N worker processes.

    Same protocol, same banner contract (``event: serving`` then JSON
    lines), but selections are sharded over ``--workers`` processes that
    the supervisor heartbeats and restarts; see ``docs/distributed.md``.
    """
    import os
    import signal

    from repro.distrib import RouterFrontEnd, TenantPolicy, WorkerSupervisor
    from repro.distrib.worker import worker_argv

    def argv_for(name: str, *, restart: bool) -> list:
        # Supervisor restarts suppress worker-side startup recovery: the
        # router resubmits the dead worker's in-flight requests itself.
        return worker_argv(
            name,
            modality=args.modality,
            scale=args.scale,
            seed=args.seed,
            num_models=args.num_models,
            max_concurrent=args.max_concurrent,
            epoch_budget=args.epoch_budget,
            max_queue=args.max_queue,
            policy=args.policy,
            timeout=args.timeout,
            store_root=args.store_dir,
            recover=not restart and not args.no_recover,
        )

    log_dir = (
        os.path.join(args.store_dir, "logs") if args.store_dir is not None
        else None
    )
    names = [f"w{index}" for index in range(args.workers)]
    supervisor = WorkerSupervisor(names, argv_for, log_dir=log_dir)
    supervisor.start()
    policy = TenantPolicy(
        max_inflight=args.max_inflight,
        tenant_rate=args.tenant_rate,
        tenant_burst=args.tenant_burst,
        tenant_quota=args.tenant_quota,
    )
    try:
        front = RouterFrontEnd(supervisor, policy=policy)
    except Exception:
        supervisor.stop()
        raise
    banner = {
        "event": "serving",
        "modality": args.modality,
        "num_models": front.num_models,
        "policy": args.policy,
        "max_concurrent": args.max_concurrent,
        "epoch_budget": args.epoch_budget,
        "max_queue": args.max_queue,
        "zoo_version": front.version_key,
        "workers": front.worker_summaries(),
        "max_inflight": args.max_inflight,
        "recovered": front.recovered_count,
    }
    if args.store_dir is not None:
        banner["store_dir"] = args.store_dir

    def _terminate(signum, frame):  # noqa: ARG001 — signal signature
        # The deployment contract: SIGTERM to the router kills the whole
        # fleet (the per-worker parent watchdog is only the backstop).
        supervisor.stop()
        os._exit(0)

    try:
        signal.signal(signal.SIGTERM, _terminate)
    except ValueError:
        pass  # not the main thread (in-process tests); watchdog covers us

    if args.port is not None:
        server = front.serve_tcp(args.host, args.port)
        banner["port"] = server.server_address[1]
        json.dump(banner, stream)
        print(file=stream, flush=True)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.shutdown()
            server.server_close()
            front.close()
            supervisor.stop()
        return 0
    json.dump(banner, stream)
    print(file=stream, flush=True)
    try:
        code = front.serve_stream(sys.stdin, stream)
    finally:
        front.close()
        supervisor.stop()
    return code


def _cmd_zoo(args: argparse.Namespace, stream) -> int:
    """Apply an incremental zoo update to a freshly served repository."""
    import numpy as np

    if args.zoo_command == "add":
        added, removed = args.models, []
    elif args.zoo_command == "remove":
        added, removed = [], args.models
    else:
        added, removed = args.add or [], args.remove or []
        if not added and not removed:
            print("error: zoo refresh needs --add and/or --remove", file=sys.stderr)
            return 2
    service = _build_service(args)
    before = service.cluster_summary()
    started = time.perf_counter()
    result = service.refresh(added=added, removed=removed)
    elapsed = time.perf_counter() - started
    after = service.cluster_summary()

    verified = None
    if args.verify:
        from repro.core.pipeline import OfflineArtifacts

        fresh = OfflineArtifacts.build(
            result.artifacts.hub,
            result.artifacts.suite,
            config=result.artifacts.config,
            cache=False,
        )
        verified = bool(
            np.array_equal(result.artifacts.matrix.values, fresh.matrix.values)
            and np.array_equal(
                result.artifacts.clustering.similarity, fresh.clustering.similarity
            )
        )

    if args.json:
        payload = result.summary()
        payload["elapsed_seconds"] = elapsed
        payload["num_clusters"] = after["num_clusters"]
        if verified is not None:
            payload["verified"] = verified
        json.dump(payload, stream, indent=2)
        print(file=stream)
    else:
        print(f"zoo update   : {result.old_version.key} -> {result.new_version.key}", file=stream)
        print(f"added        : {len(result.added)} {result.added}", file=stream)
        print(f"removed      : {len(result.removed)} {result.removed}", file=stream)
        print(
            f"models       : {int(before['num_models'])} -> {int(after['num_models'])}",
            file=stream,
        )
        print(
            f"clusters     : {int(before['num_clusters'])} -> {int(after['num_clusters'])}",
            file=stream,
        )
        recluster_note = "full re-cluster" if result.reclustered else "incremental"
        print(
            f"clustering   : {recluster_note} (staleness {result.staleness:.2f})",
            file=stream,
        )
        print(f"cache        : {result.evicted_entries} stale entries evicted", file=stream)
        print(f"refresh time : {elapsed:.2f}s", file=stream)
        if verified is not None:
            status = "bitwise-equal to a from-scratch rebuild" if verified else "MISMATCH"
            print(f"verification : {status}", file=stream)
    if verified is False:
        return 1
    return 0


def _cmd_zoo_build(args: argparse.Namespace, stream) -> int:
    """Run the offline phase — optionally out-of-core — and report on it."""
    from dataclasses import replace

    import numpy as np

    from repro.core.config import PipelineConfig, SimilarityConfig
    from repro.core.pipeline import OfflineArtifacts

    suite, hub = _build_hub(args)
    defaults = SimilarityConfig()
    similarity = SimilarityConfig(
        max_bytes_in_flight=(
            args.max_memory * 1024 * 1024
            if args.max_memory is not None
            else defaults.max_bytes_in_flight
        ),
        spill_threshold_bytes=0 if args.ooc else defaults.spill_threshold_bytes,
        store_dir=args.store_dir,
        parallel=_parallel_config(args),
    )
    config = replace(PipelineConfig.for_modality(args.modality), similarity=similarity)
    if args.algorithm is not None:
        config = replace(
            config, clustering=replace(config.clustering, algorithm=args.algorithm)
        )
    started = time.perf_counter()
    artifacts = OfflineArtifacts.build(hub, suite, config=config)
    elapsed = time.perf_counter() - started
    matrix = artifacts.clustering.similarity
    spilled = isinstance(matrix, np.memmap)
    summary = artifacts.clustering.summary()
    payload: Dict[str, object] = {
        "modality": args.modality,
        "num_models": len(artifacts.hub),
        "num_benchmarks": len(artifacts.matrix.dataset_names),
        "num_clusters": int(summary["num_clusters"]),
        "algorithm": config.clustering.algorithm,
        "similarity_backing": "memmap" if spilled else "memory",
        "similarity_bytes": int(matrix.nbytes),
        "max_bytes_in_flight": similarity.max_bytes_in_flight,
        "elapsed_seconds": elapsed,
    }
    if spilled:
        payload["store_path"] = str(matrix.filename)
    if args.json:
        json.dump(payload, stream, indent=2)
        print(file=stream)
        return 0
    print(f"offline build : {payload['num_models']} {args.modality} models x "
          f"{payload['num_benchmarks']} benchmarks", file=stream)
    print(f"clusters      : {payload['num_clusters']} "
          f"({payload['algorithm']} agglomeration)", file=stream)
    print(f"similarity    : {payload['similarity_bytes'] / 1e6:.1f} MB "
          f"({payload['similarity_backing']})", file=stream)
    if spilled:
        print(f"store         : {payload['store_path']}", file=stream)
        print(f"memory budget : {similarity.max_bytes_in_flight / 1e6:.0f} MB in flight",
              file=stream)
    print(f"build time    : {elapsed:.2f}s", file=stream)
    return 0


def _cmd_experiments(args: argparse.Namespace, stream) -> int:
    from repro.experiments.runner import render_report, run_all

    try:
        # scale=None lets run_all fall back to REPRO_EXPERIMENT_SCALE.
        outputs = run_all(
            scale=args.scale,
            seed=args.seed,
            only=args.only,
            modalities=tuple(args.modalities),
        )
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    text = render_report(outputs)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {len(outputs)} experiment block(s) to {args.out}", file=stream)
    else:
        print(text, file=stream)
    return 0


def _cmd_bench(args: argparse.Namespace, stream) -> int:
    from repro.core.batch import BatchedSelectionRunner
    from repro.core.pipeline import OfflineArtifacts
    from repro.core.config import PipelineConfig

    suite, hub = _build_hub(args)
    config = PipelineConfig.for_modality(args.modality)
    print(
        f"[offline] building artifacts for {len(hub)} {args.modality} models ...",
        file=stream,
    )
    artifacts = OfflineArtifacts.build(hub, suite, config=config)
    targets = (args.targets or list(suite.dataset_names))[: args.tasks]
    # --parallel (or REPRO_PARALLEL) names the comparison executor
    # directly; --backend/--workers are the shorthand otherwise.
    config = _parallel_config(args)
    if config.backend == "serial":
        if args.parallel:
            print("error: bench needs a parallel spec to compare against "
                  "serial (e.g. --parallel process:4)", file=sys.stderr)
            return 2
        config = ParallelConfig(args.backend, args.workers)
    spec = config.spec()

    def timed(parallel) -> tuple:
        runner = BatchedSelectionRunner(artifacts, seed=args.seed, parallel=parallel)
        started = time.perf_counter()
        report = runner.run(targets)
        return time.perf_counter() - started, report

    print(f"[bench] {len(targets)} targets, serial vs {spec} ...", file=stream)
    serial_time, serial_report = timed("serial")
    parallel_time, parallel_report = timed(spec)
    identical = all(
        serial_report.result_for(name).selected_model
        == parallel_report.result_for(name).selected_model
        and serial_report.result_for(name).selection.final_accuracies
        == parallel_report.result_for(name).selection.final_accuracies
        for name in serial_report.target_names
    )
    speedup = serial_time / parallel_time if parallel_time > 0 else float("inf")
    print(f"  serial   : {serial_time:8.2f}s", file=stream)
    print(f"  {spec:<9}: {parallel_time:8.2f}s  ({speedup:.2f}x)", file=stream)
    print(f"  identical results: {identical}", file=stream)
    return 0 if identical else 1


# --------------------------------------------------------------------------- #
# parser wiring
# --------------------------------------------------------------------------- #
def _add_budget_arguments(parser: argparse.ArgumentParser) -> None:
    """``--timeout``/``--max-queue``: route through the epoch scheduler.

    Either flag switches the command onto the scheduled request path with
    a deadline and a bounded admission queue; exhausting the budget exits
    with code 3 and a structured JSON error instead of blocking forever.
    """
    parser.add_argument(
        "--timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="per-request deadline; on expiry the command emits a JSON "
        "error object and exits with code 3 instead of blocking",
    )
    parser.add_argument(
        "--max-queue",
        type=_positive_int,
        default=None,
        metavar="N",
        help="bound of the scheduler's admission queue (backpressure); "
        "a rejected submission exits with code 3",
    )


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser (exposed for testing/docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Two-phase recall-and-select model selection (ICDE 2024 "
            "reproduction): serve selection queries, batches, experiments "
            "and benchmarks from the command line."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    select = commands.add_parser(
        "select", help="select a checkpoint for one target task"
    )
    _add_common_arguments(select)
    select.add_argument("--target", required=True, help="target dataset name")
    select.add_argument(
        "--top-k", type=int, default=None, help="models recalled into phase 2"
    )
    _add_budget_arguments(select)
    select.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help="persist the selection plan as a crash-safe journal under DIR; "
        "a rerun replays journaled work instead of retraining it",
    )
    select.add_argument(
        "--raise-budget",
        type=_positive_int,
        default=None,
        metavar="EPOCHS",
        help="total fine-tuning epoch budget for this request; with "
        "--store-dir, a finished request rerun at a higher budget "
        "continues from its journaled rungs and only pays the delta",
    )
    select.add_argument(
        "--anytime",
        action="store_true",
        help="also report the confidence-ordered anytime snapshot "
        "(current best candidate) from the selection plan",
    )
    speculation = select.add_mutually_exclusive_group()
    speculation.add_argument(
        "--extrapolate",
        action="store_true",
        help="speculative early stopping: retire arms whose extrapolated "
        "curve upper bound cannot beat the rung leader, charging only the "
        "epochs actually trained (predicted/actual regret is reported in "
        "the result extras)",
    )
    speculation.add_argument(
        "--exact",
        action="store_true",
        help="force the exact successive-halving path (the default); "
        "results are bitwise-identical to prior releases",
    )
    select.add_argument(
        "--no-fused-training",
        action="store_true",
        help="disable the stacked-kernel fused training of same-geometry "
        "sessions (results are bitwise-identical either way; fused is "
        "faster when rounds train several sessions of one task)",
    )
    select.add_argument("--json", action="store_true", help="emit JSON")
    select.set_defaults(handler=_cmd_select)

    batch = commands.add_parser(
        "batch", help="select checkpoints for many targets off one clustering"
    )
    _add_common_arguments(batch)
    batch.add_argument(
        "--targets",
        nargs="+",
        default=None,
        metavar="NAME",
        help="target dataset names (default: every target of the modality)",
    )
    batch.add_argument(
        "--top-k", type=int, default=None, help="models recalled into phase 2"
    )
    _add_budget_arguments(batch)
    batch.add_argument(
        "--no-fused-training",
        action="store_true",
        help="disable the stacked-kernel fused training of same-geometry "
        "sessions (results are bitwise-identical either way)",
    )
    batch.add_argument("--json", action="store_true", help="emit JSON")
    batch.set_defaults(handler=_cmd_batch)

    serve = commands.add_parser(
        "serve",
        help="long-lived JSON front-end over the epoch scheduler "
        "(stdin/stdout, or TCP with --port)",
    )
    _add_common_arguments(serve)
    serve.add_argument(
        "--max-concurrent",
        type=_positive_int,
        default=4,
        metavar="N",
        help="requests trained concurrently; the rest wait in the "
        "admission queue (default: 4)",
    )
    serve.add_argument(
        "--epoch-budget",
        type=_positive_int,
        default=8,
        metavar="N",
        help="fine-tuning epochs dispatched per scheduling round across "
        "all requests (default: 8)",
    )
    serve.add_argument(
        "--max-queue",
        type=_positive_int,
        default=64,
        metavar="N",
        help="bound of the admission queue; submissions beyond it are "
        "rejected with a queue_full error (default: 64)",
    )
    serve.add_argument(
        "--policy",
        choices=("fair_share", "deadline"),
        default="fair_share",
        help="scheduling order of concurrent requests (default: fair_share)",
    )
    serve.add_argument(
        "--timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="default per-request deadline (requests may override per-op)",
    )
    serve.add_argument(
        "--extrapolate",
        action="store_true",
        help="enable curve-extrapolation early stopping as the serve-time "
        'default; clients opt out per request with {"exact": true}',
    )
    serve.add_argument(
        "--no-fused-training",
        action="store_true",
        help="disable the stacked-kernel fused training of same-geometry "
        "sessions in scheduling rounds (results are bitwise-identical "
        "either way)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve a TCP socket on PORT instead of stdin/stdout "
        "(0 picks a free port, reported in the banner)",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address for --port mode (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help="durable plan-journal directory: every request is journaled "
        "under DIR, interrupted requests are recovered on startup, and "
        "clients may use the resume/anytime protocol verbs",
    )
    serve.add_argument(
        "--no-recover",
        action="store_true",
        help="with --store-dir: skip startup journal recovery (used by "
        "the routed tier for supervisor restarts, where the router "
        "resubmits in-flight requests itself)",
    )
    serve.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        metavar="N",
        help="serve through a consistent-hash router over N worker "
        "processes (same protocol; workers are heartbeated and "
        "restarted on failure — see docs/distributed.md)",
    )
    serve.add_argument(
        "--max-inflight",
        type=_positive_int,
        default=32,
        metavar="N",
        help="with --workers: router-wide bound on requests in flight; "
        "excess submissions fail fast with queue_full (default: 32)",
    )
    serve.add_argument(
        "--tenant-rate",
        type=_positive_float,
        default=None,
        metavar="PER_SECOND",
        help="with --workers: per-tenant admission rate (token bucket); "
        "excess submissions fail fast with rate_limited",
    )
    serve.add_argument(
        "--tenant-burst",
        type=_positive_int,
        default=4,
        metavar="N",
        help="with --workers: token-bucket burst of --tenant-rate "
        "(default: 4)",
    )
    serve.add_argument(
        "--tenant-quota",
        type=_positive_float,
        default=None,
        metavar="EPOCHS",
        help="with --workers: cumulative fine-tuning epoch quota per "
        "tenant; once exhausted submissions fail with budget_exhausted",
    )
    serve.set_defaults(handler=_cmd_serve)

    zoo = commands.add_parser(
        "zoo",
        help="mutate the served model zoo: add/remove checkpoints incrementally",
    )
    zoo_commands = zoo.add_subparsers(dest="zoo_command", required=True)

    def _zoo_sub(name: str, help_text: str) -> argparse.ArgumentParser:
        sub = zoo_commands.add_parser(name, help=help_text)
        _add_common_arguments(sub)
        sub.add_argument(
            "--verify",
            action="store_true",
            help="rebuild the offline artifacts from scratch and check the "
            "incremental result is bitwise-equal",
        )
        sub.add_argument("--json", action="store_true", help="emit JSON")
        sub.set_defaults(handler=_cmd_zoo)
        return sub

    zoo_add = _zoo_sub("add", "add catalogue checkpoints to the repository")
    zoo_add.add_argument(
        "--models", nargs="+", required=True, metavar="NAME",
        help="catalogue model names to add (combine with --num-models to "
        "start from a truncated repository)",
    )
    zoo_remove = _zoo_sub("remove", "remove checkpoints from the repository")
    zoo_remove.add_argument(
        "--models", nargs="+", required=True, metavar="NAME",
        help="model names to remove",
    )
    zoo_refresh = _zoo_sub("refresh", "combined add/remove update")
    zoo_refresh.add_argument(
        "--add", nargs="+", default=None, metavar="NAME", help="models to add"
    )
    zoo_refresh.add_argument(
        "--remove", nargs="+", default=None, metavar="NAME", help="models to remove"
    )

    zoo_build = zoo_commands.add_parser(
        "build",
        help="run the offline phase (optionally out-of-core) and report "
        "artifact statistics",
    )
    _add_common_arguments(zoo_build)
    zoo_build.add_argument(
        "--ooc",
        action="store_true",
        help="force out-of-core operation: spill the similarity/distance "
        "matrices to the memory-mapped store regardless of size",
    )
    zoo_build.add_argument(
        "--max-memory",
        type=int,
        default=None,
        metavar="MB",
        help="matrix memory held in flight while streaming similarity tiles "
        "(default: 64 MB); see docs/scaling.md",
    )
    zoo_build.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help="matrix store directory (default: REPRO_STORE_DIR or a "
        "process-temporary directory)",
    )
    zoo_build.add_argument(
        "--algorithm",
        choices=("nnchain", "scan"),
        default=None,
        help="hierarchical merge engine: nearest-neighbor chain (default, "
        "the scaling path) or the original working-matrix scan oracle; "
        "identical results on tie-free inputs — see docs/scaling.md",
    )
    zoo_build.add_argument("--json", action="store_true", help="emit JSON")
    zoo_build.set_defaults(handler=_cmd_zoo_build)

    experiments = commands.add_parser(
        "experiments", help="regenerate the paper's tables and figures"
    )
    experiments.add_argument(
        "--only",
        nargs="+",
        default=None,
        metavar="ID",
        help="experiment ids (e.g. fig1 table6); default: all",
    )
    experiments.add_argument(
        "--modalities",
        nargs="+",
        choices=("nlp", "cv"),
        default=("nlp", "cv"),
        help="modalities to run (default: both)",
    )
    experiments.add_argument(
        "--scale", choices=("full", "small"), default=None,
        help="experiment scale (default: REPRO_EXPERIMENT_SCALE or full)",
    )
    experiments.add_argument("--seed", type=int, default=0)
    experiments.add_argument(
        "--out", default=None, metavar="FILE", help="write the report to FILE"
    )
    experiments.set_defaults(handler=_cmd_experiments)

    bench = commands.add_parser(
        "bench", help="time batched selection: serial vs parallel executor"
    )
    _add_common_arguments(bench)
    bench.add_argument(
        "--backend",
        choices=("thread", "process"),
        default="process",
        help="parallel backend to compare against serial (default: process)",
    )
    bench.add_argument(
        "--workers", type=int, default=4, help="worker count (default: 4)"
    )
    bench.add_argument(
        "--tasks", type=int, default=8, help="number of target tasks (default: 8)"
    )
    bench.add_argument(
        "--targets",
        nargs="+",
        default=None,
        metavar="NAME",
        help="explicit target dataset names (default: first --tasks datasets)",
    )
    bench.set_defaults(handler=_cmd_bench)

    return parser


def main(argv: Optional[Sequence[str]] = None, *, stream=None) -> int:
    """CLI entry point; returns the process exit code."""
    stream = stream if stream is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args, stream)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pager/head closed the pipe — conventional silent exit.
        return 0
