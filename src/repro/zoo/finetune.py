"""Fine-tuning engine producing epoch-level convergence processes.

The paper fine-tunes each checkpoint on a dataset for a fixed number of
epochs and records validation accuracy at every validation interval plus the
final test accuracy; these records form both the performance matrix (offline)
and the convergence processes mined for the fine-selection phase (online).

:class:`FineTuner` reproduces that contract: it attaches a fresh classifier
head to a :class:`~repro.zoo.models.PretrainedModel`'s encoder and trains it
with mini-batch SGD/Adam, returning a :class:`LearningCurve`.  Stage-wise
training (needed by successive halving and by Algorithm 1) goes through
:class:`FineTuneSession`, which can be advanced epoch by epoch while the
selection algorithm decides which models survive.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.tasks import ClassificationTask
from repro.nn.metrics import accuracy
from repro.nn.network import MLPClassifier
from repro.utils.exceptions import ConfigurationError, DataError
from repro.utils.rng import RngFactory
from repro.zoo.models import PretrainedModel


@dataclass(frozen=True)
class FineTuneConfig:
    """Hyper-parameters of one fine-tuning run.

    ``epochs`` is the full training budget (5 for NLP, 4 for CV in the
    paper); selection algorithms may stop earlier.
    """

    epochs: int = 5
    learning_rate: float = 5e-2
    batch_size: int = 32
    hidden_dims: Tuple[int, ...] = ()
    weight_decay: float = 1e-4
    optimizer: str = "adam"
    activation: str = "relu"

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ConfigurationError("epochs must be positive")
        if self.learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        if self.batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")

    def with_epochs(self, epochs: int) -> "FineTuneConfig":
        """Copy of this config with a different epoch budget.

        Uses :func:`dataclasses.replace` so every field — including any
        added after this method was written — is carried over verbatim
        (guarded by a field-drift regression test).
        """
        return dataclasses.replace(self, epochs=epochs)


@dataclass
class LearningCurve:
    """Convergence process of one (model, dataset) fine-tuning run."""

    model_name: str
    dataset_name: str
    val_accuracy: List[float] = field(default_factory=list)
    test_accuracy: List[float] = field(default_factory=list)
    train_loss: List[float] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        """Number of completed epochs."""
        return len(self.val_accuracy)

    @property
    def final_val(self) -> float:
        """Validation accuracy after the last completed epoch."""
        if not self.val_accuracy:
            raise DataError("learning curve has no recorded epochs")
        return self.val_accuracy[-1]

    @property
    def final_test(self) -> float:
        """Test accuracy after the last completed epoch."""
        if not self.test_accuracy:
            raise DataError("learning curve has no recorded epochs")
        return self.test_accuracy[-1]

    @property
    def best_val(self) -> float:
        """Best validation accuracy over the run."""
        if not self.val_accuracy:
            raise DataError("learning curve has no recorded epochs")
        return max(self.val_accuracy)

    def val_at(self, stage: int) -> float:
        """Validation accuracy at 1-based epoch ``stage`` (clamped to the end)."""
        if not self.val_accuracy:
            raise DataError("learning curve has no recorded epochs")
        index = min(max(stage, 1), self.epochs) - 1
        return self.val_accuracy[index]

    def truncated(self, epochs: int) -> "LearningCurve":
        """Copy of the curve keeping only the first ``epochs`` entries."""
        return LearningCurve(
            model_name=self.model_name,
            dataset_name=self.dataset_name,
            val_accuracy=list(self.val_accuracy[:epochs]),
            test_accuracy=list(self.test_accuracy[:epochs]),
            train_loss=list(self.train_loss[:epochs]),
        )


class FineTuneSession:
    """Incremental fine-tuning of one model on one task.

    The session encodes the task's splits once, then trains the head in
    epoch-sized stages.  Selection algorithms advance surviving sessions and
    simply stop calling :meth:`train_epochs` for filtered models, which is
    how the epoch accounting in the paper's Tables V/VI arises.
    """

    def __init__(
        self,
        model: PretrainedModel,
        task: ClassificationTask,
        config: FineTuneConfig,
        rng: np.random.Generator,
    ) -> None:
        if model.modality != task.modality:
            raise ConfigurationError(
                f"cannot fine-tune {model.modality!r} model {model.name!r} on "
                f"{task.modality!r} task {task.name!r}"
            )
        self.model = model
        self.task = task
        self.config = config
        self._train_features = model.encode(task.train.features)
        self._val_features = model.encode(task.val.features)
        self._test_features = model.encode(task.test.features)
        #: Lazily built ``[val; test]`` slab for the single-pass epoch
        #: evaluation; derived data, dropped from pickles (see
        #: :meth:`__getstate__`) and rebuilt on first use.
        self._eval_features: Optional[np.ndarray] = None
        self.head = MLPClassifier(
            input_dim=model.hidden_dim,
            num_classes=task.num_classes,
            hidden_dims=config.hidden_dims,
            activation=config.activation,
            l2=config.weight_decay,
            optimizer=config.optimizer,
            learning_rate=config.learning_rate,
            rng=rng,
        )
        self.curve = LearningCurve(model_name=model.name, dataset_name=task.name)

    @property
    def epochs_trained(self) -> int:
        """Number of epochs this session has completed."""
        return self.curve.epochs

    def train_epochs(self, num_epochs: int = 1) -> LearningCurve:
        """Advance the session by ``num_epochs`` epochs and return the curve."""
        if num_epochs <= 0:
            raise ConfigurationError("num_epochs must be positive")
        for _ in range(num_epochs):
            loss = self.head.fit_epoch(
                self._train_features,
                self.task.train.labels,
                batch_size=self.config.batch_size,
            )
            val_accuracy, test_accuracy = self.evaluate()
            self.curve.train_loss.append(loss)
            self.curve.val_accuracy.append(val_accuracy)
            self.curve.test_accuracy.append(test_accuracy)
        return self.curve

    def evaluate(self) -> Tuple[float, float]:
        """Validation and test accuracy from one concatenated forward pass.

        Scores both held-out splits with a single ``(n_val + n_test, d)``
        matmul instead of two separate :meth:`MLPClassifier.score` calls.
        Each logits row depends only on its own input row, so the
        accuracies are bitwise-identical to the two-pass form (gated by
        ``benchmarks/bench_fused_training.py``).
        """
        logits = self.head.decision_function(self._eval_slab())
        predictions = np.argmax(logits, axis=1)
        n_val = self._val_features.shape[0]
        return (
            accuracy(np.asarray(self.task.val.labels), predictions[:n_val]),
            accuracy(np.asarray(self.task.test.labels), predictions[n_val:]),
        )

    def validation_accuracy(self) -> float:
        """Current accuracy on the validation split."""
        return self.head.score(self._val_features, self.task.val.labels)

    def test_accuracy(self) -> float:
        """Current accuracy on the test split."""
        return self.head.score(self._test_features, self.task.test.labels)

    # ------------------------------------------------------------------ #
    # fused-training adoption surface (see repro.nn.batched)
    # ------------------------------------------------------------------ #
    @property
    def train_features(self) -> np.ndarray:
        """Encoded training features ``(n, d)`` (shared, do not mutate)."""
        return self._train_features

    @property
    def train_labels(self) -> np.ndarray:
        """Training labels aligned with :attr:`train_features`."""
        return self.task.train.labels

    @property
    def eval_split(self) -> int:
        """Row where the test split starts inside :meth:`_eval_slab`."""
        return self._val_features.shape[0]

    def _eval_slab(self) -> np.ndarray:
        if self._eval_features is None:
            self._eval_features = np.concatenate(
                [self._val_features, self._test_features], axis=0
            )
        return self._eval_features

    def eval_features(self) -> np.ndarray:
        """Concatenated ``[val; test]`` feature slab ``(n_val + n_test, d)``."""
        return self._eval_slab()

    def fusion_signature(self) -> Tuple:
        """Geometry key deciding which sessions can train in one fused group.

        Two sessions with equal signatures share every shape and
        hyper-parameter the stacked kernels broadcast over — task data
        (and hence labels and split sizes), encoder width, head
        architecture, optimiser and learning rate, batch size and weight
        decay — so their mini-batch trajectories can advance in lockstep
        as slices of one ``(S, n, d)`` slab.
        """
        from repro.cache import fingerprint_task

        return (
            fingerprint_task(self.task),
            int(self.model.hidden_dim),
            int(self.task.num_classes),
            tuple(int(w) for w in self.config.hidden_dims),
            self.config.activation,
            self.config.optimizer,
            float(self.config.learning_rate),
            int(self.config.batch_size),
            float(self.config.weight_decay),
        )

    def record_epoch(
        self,
        train_loss: float,
        train_accuracy: float,
        val_accuracy: float,
        test_accuracy: float,
    ) -> None:
        """Adopt one externally trained epoch's records (fused training).

        Appends exactly what a serial :meth:`train_epochs` iteration
        appends — the head's history entries plus the session curve — so a
        session whose parameters were advanced by the stacked kernels of
        :mod:`repro.nn.batched` is indistinguishable from one trained
        serially.
        """
        self.head.history.train_loss.append(train_loss)
        self.head.history.train_accuracy.append(train_accuracy)
        self.curve.train_loss.append(train_loss)
        self.curve.val_accuracy.append(val_accuracy)
        self.curve.test_accuracy.append(test_accuracy)

    def __getstate__(self) -> Dict[str, object]:
        """Drop the derived eval slab from pickles (snapshots, workers)."""
        state = dict(self.__dict__)
        state["_eval_features"] = None
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        """Restore a pickled session (older snapshots lack the slab slot)."""
        self.__dict__.update(state)
        self.__dict__.setdefault("_eval_features", None)


class FineTuner:
    """Factory for fine-tuning runs with reproducible per-pair randomness."""

    def __init__(self, config: Optional[FineTuneConfig] = None, *, seed: int = 0) -> None:
        self.config = config or FineTuneConfig()
        self._rng_factory = RngFactory(seed)

    def start_session(
        self,
        model: PretrainedModel,
        task: ClassificationTask,
        *,
        config: Optional[FineTuneConfig] = None,
    ) -> FineTuneSession:
        """Create an incremental fine-tuning session for ``(model, task)``."""
        cfg = config or self.config
        rng = self._rng_factory.named("finetune", model.name, task.name, cfg.learning_rate)
        return FineTuneSession(model, task, cfg, rng)

    def fine_tune(
        self,
        model: PretrainedModel,
        task: ClassificationTask,
        *,
        epochs: Optional[int] = None,
        config: Optional[FineTuneConfig] = None,
    ) -> LearningCurve:
        """Run a full fine-tuning and return its learning curve."""
        cfg = config or self.config
        session = self.start_session(model, task, config=cfg)
        session.train_epochs(epochs if epochs is not None else cfg.epochs)
        return session.curve

    def fine_tune_many(
        self,
        models: Sequence[PretrainedModel],
        task: ClassificationTask,
        *,
        epochs: Optional[int] = None,
    ) -> Dict[str, LearningCurve]:
        """Fine-tune every model in ``models`` on ``task`` (brute-force helper)."""
        return {
            model.name: self.fine_tune(model, task, epochs=epochs) for model in models
        }
