"""Fine-tuning engine producing epoch-level convergence processes.

The paper fine-tunes each checkpoint on a dataset for a fixed number of
epochs and records validation accuracy at every validation interval plus the
final test accuracy; these records form both the performance matrix (offline)
and the convergence processes mined for the fine-selection phase (online).

:class:`FineTuner` reproduces that contract: it attaches a fresh classifier
head to a :class:`~repro.zoo.models.PretrainedModel`'s encoder and trains it
with mini-batch SGD/Adam, returning a :class:`LearningCurve`.  Stage-wise
training (needed by successive halving and by Algorithm 1) goes through
:class:`FineTuneSession`, which can be advanced epoch by epoch while the
selection algorithm decides which models survive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.tasks import ClassificationTask
from repro.nn.network import MLPClassifier
from repro.utils.exceptions import ConfigurationError, DataError
from repro.utils.rng import RngFactory
from repro.zoo.models import PretrainedModel


@dataclass(frozen=True)
class FineTuneConfig:
    """Hyper-parameters of one fine-tuning run.

    ``epochs`` is the full training budget (5 for NLP, 4 for CV in the
    paper); selection algorithms may stop earlier.
    """

    epochs: int = 5
    learning_rate: float = 5e-2
    batch_size: int = 32
    hidden_dims: Tuple[int, ...] = ()
    weight_decay: float = 1e-4
    optimizer: str = "adam"
    activation: str = "relu"

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ConfigurationError("epochs must be positive")
        if self.learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        if self.batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")

    def with_epochs(self, epochs: int) -> "FineTuneConfig":
        """Copy of this config with a different epoch budget."""
        return FineTuneConfig(
            epochs=epochs,
            learning_rate=self.learning_rate,
            batch_size=self.batch_size,
            hidden_dims=self.hidden_dims,
            weight_decay=self.weight_decay,
            optimizer=self.optimizer,
            activation=self.activation,
        )


@dataclass
class LearningCurve:
    """Convergence process of one (model, dataset) fine-tuning run."""

    model_name: str
    dataset_name: str
    val_accuracy: List[float] = field(default_factory=list)
    test_accuracy: List[float] = field(default_factory=list)
    train_loss: List[float] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        """Number of completed epochs."""
        return len(self.val_accuracy)

    @property
    def final_val(self) -> float:
        """Validation accuracy after the last completed epoch."""
        if not self.val_accuracy:
            raise DataError("learning curve has no recorded epochs")
        return self.val_accuracy[-1]

    @property
    def final_test(self) -> float:
        """Test accuracy after the last completed epoch."""
        if not self.test_accuracy:
            raise DataError("learning curve has no recorded epochs")
        return self.test_accuracy[-1]

    @property
    def best_val(self) -> float:
        """Best validation accuracy over the run."""
        if not self.val_accuracy:
            raise DataError("learning curve has no recorded epochs")
        return max(self.val_accuracy)

    def val_at(self, stage: int) -> float:
        """Validation accuracy at 1-based epoch ``stage`` (clamped to the end)."""
        if not self.val_accuracy:
            raise DataError("learning curve has no recorded epochs")
        index = min(max(stage, 1), self.epochs) - 1
        return self.val_accuracy[index]

    def truncated(self, epochs: int) -> "LearningCurve":
        """Copy of the curve keeping only the first ``epochs`` entries."""
        return LearningCurve(
            model_name=self.model_name,
            dataset_name=self.dataset_name,
            val_accuracy=list(self.val_accuracy[:epochs]),
            test_accuracy=list(self.test_accuracy[:epochs]),
            train_loss=list(self.train_loss[:epochs]),
        )


class FineTuneSession:
    """Incremental fine-tuning of one model on one task.

    The session encodes the task's splits once, then trains the head in
    epoch-sized stages.  Selection algorithms advance surviving sessions and
    simply stop calling :meth:`train_epochs` for filtered models, which is
    how the epoch accounting in the paper's Tables V/VI arises.
    """

    def __init__(
        self,
        model: PretrainedModel,
        task: ClassificationTask,
        config: FineTuneConfig,
        rng: np.random.Generator,
    ) -> None:
        if model.modality != task.modality:
            raise ConfigurationError(
                f"cannot fine-tune {model.modality!r} model {model.name!r} on "
                f"{task.modality!r} task {task.name!r}"
            )
        self.model = model
        self.task = task
        self.config = config
        self._train_features = model.encode(task.train.features)
        self._val_features = model.encode(task.val.features)
        self._test_features = model.encode(task.test.features)
        self.head = MLPClassifier(
            input_dim=model.hidden_dim,
            num_classes=task.num_classes,
            hidden_dims=config.hidden_dims,
            activation=config.activation,
            l2=config.weight_decay,
            optimizer=config.optimizer,
            learning_rate=config.learning_rate,
            rng=rng,
        )
        self.curve = LearningCurve(model_name=model.name, dataset_name=task.name)

    @property
    def epochs_trained(self) -> int:
        """Number of epochs this session has completed."""
        return self.curve.epochs

    def train_epochs(self, num_epochs: int = 1) -> LearningCurve:
        """Advance the session by ``num_epochs`` epochs and return the curve."""
        if num_epochs <= 0:
            raise ConfigurationError("num_epochs must be positive")
        for _ in range(num_epochs):
            loss = self.head.fit_epoch(
                self._train_features,
                self.task.train.labels,
                batch_size=self.config.batch_size,
            )
            self.curve.train_loss.append(loss)
            self.curve.val_accuracy.append(self.validation_accuracy())
            self.curve.test_accuracy.append(self.test_accuracy())
        return self.curve

    def validation_accuracy(self) -> float:
        """Current accuracy on the validation split."""
        return self.head.score(self._val_features, self.task.val.labels)

    def test_accuracy(self) -> float:
        """Current accuracy on the test split."""
        return self.head.score(self._test_features, self.task.test.labels)


class FineTuner:
    """Factory for fine-tuning runs with reproducible per-pair randomness."""

    def __init__(self, config: Optional[FineTuneConfig] = None, *, seed: int = 0) -> None:
        self.config = config or FineTuneConfig()
        self._rng_factory = RngFactory(seed)

    def start_session(
        self,
        model: PretrainedModel,
        task: ClassificationTask,
        *,
        config: Optional[FineTuneConfig] = None,
    ) -> FineTuneSession:
        """Create an incremental fine-tuning session for ``(model, task)``."""
        cfg = config or self.config
        rng = self._rng_factory.named("finetune", model.name, task.name, cfg.learning_rate)
        return FineTuneSession(model, task, cfg, rng)

    def fine_tune(
        self,
        model: PretrainedModel,
        task: ClassificationTask,
        *,
        epochs: Optional[int] = None,
        config: Optional[FineTuneConfig] = None,
    ) -> LearningCurve:
        """Run a full fine-tuning and return its learning curve."""
        cfg = config or self.config
        session = self.start_session(model, task, config=cfg)
        session.train_epochs(epochs if epochs is not None else cfg.epochs)
        return session.curve

    def fine_tune_many(
        self,
        models: Sequence[PretrainedModel],
        task: ClassificationTask,
        *,
        epochs: Optional[int] = None,
    ) -> Dict[str, LearningCurve]:
        """Fine-tune every model in ``models`` on ``task`` (brute-force helper)."""
        return {
            model.name: self.fine_tune(model, task, epochs=epochs) for model in models
        }
