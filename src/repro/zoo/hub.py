"""The model hub: builds and serves the simulated checkpoint repository.

A :class:`ModelHub` wires a catalogue (:mod:`repro.zoo.catalog`) to a
workload suite (:mod:`repro.data.workloads`) of the same modality.  For each
catalogue entry it derives the checkpoint's domain vector from the entry's
pre-training corpus and fine-tuning datasets, instantiates the
:class:`~repro.zoo.models.PretrainedModel` and caches it.  Checkpoints in the
same *family* share most of their domain (with a small per-checkpoint
perturbation), which is what makes them cluster together in the coarse-recall
phase — exactly the behaviour the paper observes for the ``bert_ft_qqp-*``
and ``feather_berts`` groups.

Real hubs gain and lose checkpoints continuously, so the repository is
*versioned*: every hub carries a :class:`ZooVersion` (monotonic epoch plus a
content fingerprint of its catalogue) and :meth:`ModelHub.with_changes`
derives the next epoch from the current one without rebuilding the surviving
checkpoints.  Model construction is keyed by name (named random streams),
which is what makes an incrementally updated hub bitwise-identical to one
built from scratch over the same entries — the property the incremental
offline-artifact refresh (``docs/zoo-updates.md``) relies on.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.cache.keys import fingerprint_text
from repro.data.workloads import WorkloadSuite
from repro.utils.exceptions import HubError
from repro.utils.rng import RngFactory
from repro.zoo.catalog import ModelCatalogEntry, catalog_for_modality
from repro.zoo.model_cards import render_model_card
from repro.zoo.models import PretrainedModel


@dataclass(frozen=True)
class ZooVersion:
    """Version stamp of one model-repository state.

    Attributes
    ----------
    epoch:
        Monotonic update counter: 0 for a freshly built hub, incremented by
        every :meth:`ModelHub.with_changes`.
    fingerprint:
        Content fingerprint of the hub's identity — modality, root seed,
        encoder width and the full **ordered** catalogue entries (name,
        family, quality, corpora, fine-tune lineage, …).  Same-named
        entries with different configurations never collide.  Entry order
        is deliberately part of the identity (it fixes the performance
        matrix's column layout), so two hubs with the same checkpoint set
        in different catalogue orders are different versions — e.g.
        removing and re-adding a model does not restore the old
        fingerprint.
    """

    epoch: int
    fingerprint: str

    @property
    def key(self) -> str:
        """Compact printable form used in cache keys, logs and stats."""
        return f"v{self.epoch}-{self.fingerprint}"

    def __str__(self) -> str:
        return self.key

#: How strongly a corpus anchor mixes the benchmark-task domains vs a broad
#: uniform component.  ``(benchmark names, uniform weight, breadth noise)``.
_CORPUS_RECIPES = {
    "english": ("__all__", 0.45),
    "foreign": ("__none__", 0.15),
    "imagenet1k": (("cifar10", "stl10", "food101", "cc6204_hackaton_cub", "cats_vs_dogs"), 0.3),
    "imagenet21k": ("__all__", 0.4),
    "faces": (("fer2013",), 0.25),
    "artwork": ("__none__", 0.2),
}


class ModelHub:
    """Container of all simulated checkpoints for one modality.

    Parameters
    ----------
    suite:
        Workload suite providing the domain space and benchmark-task domains
        used to position the checkpoints.
    entries:
        Catalogue entries to include; defaults to the full catalogue for the
        suite's modality.  Passing a subset keeps tests fast.
    seed:
        Root seed of all per-model randomness.
    hidden_dim:
        Encoder output dimensionality shared by all checkpoints.
    version_epoch:
        Update epoch of this hub state; 0 for freshly built hubs.  Callers
        normally leave this alone — :meth:`with_changes` advances it.
    """

    def __init__(
        self,
        suite: WorkloadSuite,
        *,
        entries: Optional[Sequence[ModelCatalogEntry]] = None,
        seed: int = 0,
        hidden_dim: int = 24,
        version_epoch: int = 0,
    ) -> None:
        self.suite = suite
        self.entries: List[ModelCatalogEntry] = list(
            entries if entries is not None else catalog_for_modality(suite.modality)
        )
        for entry in self.entries:
            if entry.modality != suite.modality:
                raise HubError(
                    f"catalogue entry {entry.name!r} is {entry.modality!r} but the "
                    f"suite is {suite.modality!r}"
                )
        if version_epoch < 0:
            raise HubError("version_epoch must be >= 0")
        self.hidden_dim = int(hidden_dim)
        self._version_epoch = int(version_epoch)
        self._rng_factory = RngFactory(seed)
        self._models: Dict[str, PretrainedModel] = {}
        self._entries_by_name = {entry.name: entry for entry in self.entries}
        if len(self._entries_by_name) != len(self.entries):
            raise HubError("catalogue entries contain duplicate model names")
        self._build_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # The build lock makes lazy model construction safe under the thread
    # executor; it is recreated (not copied) across pickling so hubs can
    # cross process boundaries with the fork-based executor.
    def __getstate__(self) -> Dict[str, object]:
        state = dict(self.__dict__)
        state.pop("_build_lock", None)
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        self._build_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    @property
    def modality(self) -> str:
        """Modality served by this hub."""
        return self.suite.modality

    @property
    def version(self) -> ZooVersion:
        """Current :class:`ZooVersion` of this repository state."""
        # repr of the frozen dataclass covers every entry field, so two
        # same-named entries with different quality/family/lineage (legal
        # via `with_changes(added=[ModelCatalogEntry(...)])`) fingerprint
        # differently.
        fingerprint = fingerprint_text(
            self.modality,
            str(self._rng_factory.root_seed),
            str(self.hidden_dim),
            *(repr(entry) for entry in self.entries),
        )
        return ZooVersion(epoch=self._version_epoch, fingerprint=fingerprint)

    @property
    def model_names(self) -> List[str]:
        """Names of every checkpoint in catalogue order."""
        return [entry.name for entry in self.entries]

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries_by_name

    def entry(self, name: str) -> ModelCatalogEntry:
        """Catalogue entry for ``name``."""
        if name not in self._entries_by_name:
            raise HubError(f"unknown model {name!r}")
        return self._entries_by_name[name]

    def get(self, name: str) -> PretrainedModel:
        """Return (building and caching on first use) the checkpoint ``name``.

        Construction is deterministic per name (named random streams), and
        serialised by a lock so concurrent callers never build twice.
        """
        model = self._models.get(name)
        if model is not None:
            return model
        with self._build_lock:
            if name not in self._models:
                self._models[name] = self._build_model(self.entry(name))
            return self._models[name]

    def models(self) -> List[PretrainedModel]:
        """All checkpoints in catalogue order."""
        return [self.get(name) for name in self.model_names]

    def model_card(self, name: str) -> str:
        """Synthetic model-card text for ``name``."""
        return render_model_card(self.entry(name))

    def model_cards(self) -> Dict[str, str]:
        """Model cards for every checkpoint, keyed by name."""
        return {name: self.model_card(name) for name in self.model_names}

    def subset(self, names: Sequence[str]) -> "ModelHub":
        """A new hub restricted to ``names`` (sharing the same suite and seed)."""
        entries = [self.entry(name) for name in names]
        return ModelHub(
            self.suite,
            entries=entries,
            seed=self._rng_factory.root_seed,
            hidden_dim=self.hidden_dim,
        )

    # ------------------------------------------------------------------ #
    # incremental updates
    # ------------------------------------------------------------------ #
    def resolve_entry(self, entry: Union[str, ModelCatalogEntry]) -> ModelCatalogEntry:
        """Normalise an entry-or-name into a :class:`ModelCatalogEntry`.

        Names are looked up in this hub first, then in the full catalogue of
        the hub's modality, so callers can add checkpoints by their public
        name without constructing catalogue entries by hand.
        """
        if isinstance(entry, ModelCatalogEntry):
            return entry
        if entry in self._entries_by_name:
            return self._entries_by_name[entry]
        for candidate in catalog_for_modality(self.modality):
            if candidate.name == entry:
                return candidate
        raise HubError(
            f"unknown model {entry!r}: not in this hub nor in the "
            f"{self.modality} catalogue"
        )

    def with_changes(
        self,
        *,
        added: Iterable[Union[str, ModelCatalogEntry]] = (),
        removed: Iterable[str] = (),
    ) -> "ModelHub":
        """The next repository epoch with ``added``/``removed`` checkpoints.

        Returns a **new** hub (the current one stays intact, so a service
        can keep answering requests against the old epoch while the new one
        warms up).  Surviving checkpoints that were already built are shared
        with the new hub — construction is deterministic per name, so the
        shared instances are exactly what a from-scratch build would create.

        ``added`` entries are appended in the given order after the
        surviving catalogue entries; ``removed`` names must exist and a name
        cannot be both added and removed in one update.
        """
        added_entries = [self.resolve_entry(entry) for entry in added]
        removed_names = list(removed)
        for name in removed_names:
            if name not in self._entries_by_name:
                raise HubError(f"cannot remove unknown model {name!r}")
        removed_set = set(removed_names)
        added_names = {entry.name for entry in added_entries}
        if added_names & removed_set:
            overlap = sorted(added_names & removed_set)
            raise HubError(f"models both added and removed: {overlap[:3]}")
        for entry in added_entries:
            if entry.name in self._entries_by_name:
                raise HubError(f"model {entry.name!r} is already in the hub")
        entries = [
            entry for entry in self.entries if entry.name not in removed_set
        ] + added_entries
        if not entries:
            raise HubError("update would leave the hub empty")
        hub = ModelHub(
            self.suite,
            entries=entries,
            seed=self._rng_factory.root_seed,
            hidden_dim=self.hidden_dim,
            version_epoch=self._version_epoch + 1,
        )
        # Share already-built checkpoints: per-name named random streams make
        # them identical to what the new hub would build on first access.
        with self._build_lock:
            survivors = {
                name: model
                for name, model in self._models.items()
                if name not in removed_set
            }
        hub._models.update(survivors)
        return hub

    # ------------------------------------------------------------------ #
    def _corpus_domain(self, corpus: str, rng: np.random.Generator) -> np.ndarray:
        """Domain vector of a pre-training corpus."""
        space = self.suite.space
        recipe = _CORPUS_RECIPES.get(corpus, ("__none__", 0.2))
        benchmark_names, uniform_weight = recipe
        uniform = np.full(space.num_concepts, 1.0 / space.num_concepts)
        if benchmark_names == "__all__":
            anchors = [self.suite.spec(name).domain for name in self.suite.benchmark_names]
        elif benchmark_names == "__none__":
            anchors = []
        else:
            anchors = [
                self.suite.spec(name).domain
                for name in benchmark_names
                if name in self.suite.benchmark_names
            ]
        if anchors:
            anchor_mix = space.normalize_domain(np.mean(anchors, axis=0))
            domain = uniform_weight * uniform + (1.0 - uniform_weight) * anchor_mix
        else:
            # Corpus unrelated to the benchmarks (foreign language, artwork):
            # a concentrated random domain far from most benchmark tasks.
            domain = space.random_domain_vector(rng, concentration=0.35)
            domain = uniform_weight * uniform + (1.0 - uniform_weight) * domain
        return space.normalize_domain(domain)

    def _finetune_anchor(self, entry: ModelCatalogEntry) -> Optional[np.ndarray]:
        """Mean domain of the datasets the checkpoint was fine-tuned on."""
        domains = []
        for dataset_name in entry.finetune_datasets:
            try:
                domains.append(self.suite.spec(dataset_name).domain)
            except Exception:
                # Fine-tune dataset not part of this suite (e.g. a target-only
                # dataset filtered out in a reduced suite) — skip it.
                continue
        if not domains:
            return None
        return self.suite.space.normalize_domain(np.mean(domains, axis=0))

    def _build_model(self, entry: ModelCatalogEntry) -> PretrainedModel:
        space = self.suite.space
        corpus_rng = self._rng_factory.named("corpus", self.modality, entry.pretrain_corpus)
        family_rng = self._rng_factory.named("family", self.modality, entry.family)
        model_rng = self._rng_factory.named("model", self.modality, entry.name)

        corpus_domain = self._corpus_domain(entry.pretrain_corpus, corpus_rng)
        # Family-level tilt: checkpoints in the same family share this
        # component, which is what makes them cluster together.
        family_tilt = space.random_domain_vector(family_rng, concentration=0.8)
        domain = 0.72 * corpus_domain + 0.28 * family_tilt

        finetune_anchor = self._finetune_anchor(entry)
        if finetune_anchor is not None and entry.finetune_weight > 0:
            domain = (1.0 - entry.finetune_weight) * domain + entry.finetune_weight * finetune_anchor

        # Small per-checkpoint perturbation so siblings are similar, not equal.
        perturbation = space.random_domain_vector(model_rng, concentration=1.0)
        domain = 0.93 * domain + 0.07 * perturbation

        return PretrainedModel(
            entry,
            space,
            domain,
            hidden_dim=self.hidden_dim,
            rng=model_rng,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ModelHub(modality={self.modality!r}, models={len(self)})"
