"""Simulated pre-trained model hub (stand-in for the HuggingFace model zoo).

The paper selects among 40 NLP and 30 CV checkpoints downloaded from
HuggingFace.  This subpackage recreates that repository structure offline:

* :mod:`repro.zoo.catalog` — the catalogue of model entries (names mirror
  the paper's Table VIII), each describing architecture family, encoder
  quality and the datasets the checkpoint was fine-tuned on.
* :mod:`repro.zoo.models` — :class:`PretrainedModel`: a synthetic encoder
  whose concept coverage reflects the model's training history, plus a
  source-label head used by proxy scores such as LEEP.
* :mod:`repro.zoo.hub` — :class:`ModelHub`: builds and caches the models of
  one modality on top of a :class:`~repro.data.workloads.WorkloadSuite`.
* :mod:`repro.zoo.finetune` — the fine-tuning engine producing epoch-level
  validation/test curves (:class:`LearningCurve`), including stage-wise
  sessions needed by successive halving and fine-selection.
* :mod:`repro.zoo.model_cards` — synthetic model-card text used by the
  text-similarity clustering baseline.
"""

from repro.zoo.catalog import (
    ModelCatalogEntry,
    catalog_for_modality,
    cv_catalog,
    nlp_catalog,
)
from repro.zoo.finetune import FineTuneConfig, FineTuneSession, FineTuner, LearningCurve
from repro.zoo.hub import ModelHub, ZooVersion
from repro.zoo.model_cards import render_model_card
from repro.zoo.models import PretrainedModel

__all__ = [
    "ModelCatalogEntry",
    "catalog_for_modality",
    "cv_catalog",
    "nlp_catalog",
    "FineTuneConfig",
    "FineTuneSession",
    "FineTuner",
    "LearningCurve",
    "ModelHub",
    "ZooVersion",
    "render_model_card",
    "PretrainedModel",
]
