"""Simulated pre-trained models.

A :class:`PretrainedModel` stands in for a HuggingFace checkpoint.  It owns:

* a *domain vector* describing which latent concepts its (synthetic)
  pre-training and fine-tuning history covered;
* an *encoder* that amplifies those concepts and attenuates the rest, with
  representation noise inversely related to the checkpoint's quality;
* a *source head*: a classifier over the model's own source label space,
  trained on synthetic source data drawn from the model's domain — this is
  what LEEP-style proxy scores evaluate on target samples.

Fine-tuning a model on a task (see :mod:`repro.zoo.finetune`) trains a new
head on the encoder output, so transfer performance is governed by how much
of the task's class signal survives the encoder — i.e. by domain overlap and
encoder quality, reproducing the structure the paper exploits.
"""

from __future__ import annotations

import threading
from typing import Optional

import numpy as np

from repro.data.domain import DomainSpace
from repro.data.tasks import TaskSpec, generate_task
from repro.nn.network import MLPClassifier
from repro.utils.exceptions import ConfigurationError, DataError
from repro.zoo.catalog import ModelCatalogEntry

#: Gain floor applied to concepts outside the model's domain: even a poorly
#: matched encoder does not erase all information, it just attenuates it.
_GAIN_FLOOR = 0.08
#: Saturation constant of the concept-coverage curve.
_COVERAGE_TAU = 0.045


class PretrainedModel:
    """One simulated checkpoint of the model repository.

    Parameters
    ----------
    entry:
        The catalogue entry describing the checkpoint.
    space:
        Domain space shared with the workload suite of the same modality.
    domain:
        Non-negative, unit-sum concept coverage of the checkpoint.
    hidden_dim:
        Dimensionality of the encoder output (the "CLS embedding" stand-in).
    rng:
        Generator controlling the encoder projection, representation noise
        and the source-head training data.
    """

    def __init__(
        self,
        entry: ModelCatalogEntry,
        space: DomainSpace,
        domain: np.ndarray,
        *,
        hidden_dim: int = 24,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if entry.modality != space.modality:
            raise ConfigurationError(
                f"model {entry.name!r} is {entry.modality!r} but the domain space "
                f"is {space.modality!r}"
            )
        if hidden_dim < 4:
            raise ConfigurationError("hidden_dim must be at least 4")
        self.entry = entry
        self.space = space
        self.domain = space.normalize_domain(domain)
        self.hidden_dim = int(hidden_dim)
        self._rng = rng if rng is not None else np.random.default_rng(0)

        coverage = self.domain / (self.domain + _COVERAGE_TAU)
        self.concept_gains = _GAIN_FLOOR + (1.0 - _GAIN_FLOOR) * coverage
        self.concept_gains *= 0.35 + 0.65 * entry.quality

        projection = self._rng.normal(size=(space.num_concepts, hidden_dim))
        q, _ = np.linalg.qr(projection)
        self.projection = q[:, : min(hidden_dim, space.num_concepts)]
        if self.projection.shape[1] < hidden_dim:
            pad = self._rng.normal(
                scale=0.05, size=(space.num_concepts, hidden_dim - self.projection.shape[1])
            )
            self.projection = np.concatenate([self.projection, pad], axis=1)
        self.representation_noise = 0.3 + 1.4 * (1.0 - entry.quality)
        self._noise_key = int(self._rng.integers(0, 2**31 - 1))
        self._source_head: Optional[MLPClassifier] = None
        self._head_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # The head lock serialises lazy source-head training (it consumes the
    # model's own RNG stream) so concurrent proxy scoring cannot race it;
    # it is recreated, not copied, across pickling so models can cross
    # process boundaries with the fork-based executor.
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state.pop("_head_lock", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._head_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Full checkpoint name (repository/model)."""
        return self.entry.name

    @property
    def short_name(self) -> str:
        """Checkpoint name without the repository prefix."""
        return self.entry.short_name

    @property
    def modality(self) -> str:
        """``"nlp"`` or ``"cv"``."""
        return self.entry.modality

    @property
    def quality(self) -> float:
        """Encoder quality in ``(0, 1]``."""
        return self.entry.quality

    @property
    def num_source_classes(self) -> int:
        """Label-space size of the model's source head."""
        return self.entry.source_classes

    # ------------------------------------------------------------------ #
    def encode(self, features: np.ndarray, *, deterministic: bool = True) -> np.ndarray:
        """Map raw features to the model's representation space.

        The encoder projects onto concept coordinates, scales each concept
        by the model's gain (how well the checkpoint covers it), projects
        into the hidden space and applies a mild saturation.  Noise is
        deterministic per input by default so repeated encodings of the
        same sample agree (as a frozen real encoder would).
        """
        features = np.asarray(features, dtype=float)
        if features.ndim != 2 or features.shape[1] != self.space.feature_dim:
            raise DataError(
                f"expected features of shape (n, {self.space.feature_dim}), "
                f"got {features.shape}"
            )
        concepts = self.space.project(features)
        gained = concepts * self.concept_gains[None, :]
        hidden = gained @ self.projection
        hidden = np.tanh(hidden / 2.0) * 2.0
        if self.representation_noise > 0:
            noise = self._deterministic_noise(features, hidden.shape)
            hidden = hidden + self.representation_noise * noise
        return hidden

    def _deterministic_noise(self, features: np.ndarray, shape) -> np.ndarray:
        """Noise that is reproducible per input row yet statistically white.

        Each row is hashed (together with a per-model key) into a seed for a
        small generator, so encoding the same sample twice yields the same
        representation — as a frozen real encoder would — while the noise
        carries no information about the class signal.
        """
        import zlib

        noise = np.empty(shape)
        rounded = np.round(features, decimals=8)
        for row in range(shape[0]):
            digest = zlib.crc32(rounded[row].tobytes()) ^ self._noise_key
            row_rng = np.random.default_rng(digest & 0x7FFFFFFF)
            noise[row] = row_rng.standard_normal(shape[1])
        return noise

    # ------------------------------------------------------------------ #
    def source_head(self) -> MLPClassifier:
        """Classifier over the model's source label space (lazily trained).

        Training happens exactly once, under a lock: the fit consumes the
        model's RNG stream, so an unguarded race would make the head's
        weights depend on thread interleaving and break the parallel ==
        serial guarantee of :mod:`repro.parallel`.
        """
        if self._source_head is None:
            with self._head_lock:
                if self._source_head is None:
                    self._source_head = self._train_source_head()
        return self._source_head

    def _train_source_head(self) -> MLPClassifier:
        spec = TaskSpec(
            name=f"{self.entry.short_name}::source",
            modality=self.modality,
            domain=self.domain,
            num_classes=self.num_source_classes,
            num_train=40 * self.num_source_classes,
            num_val=self.num_source_classes * 4,
            num_test=self.num_source_classes * 4,
            noise=0.9,
            separation=1.8,
            role="benchmark",
        )
        source_task = generate_task(spec, self.space, self._rng)
        encoded = self.encode(source_task.train.features)
        head = MLPClassifier(
            input_dim=self.hidden_dim,
            num_classes=self.num_source_classes,
            optimizer="adam",
            learning_rate=5e-2,
            rng=self._rng,
        )
        head.fit(encoded, source_task.train.labels, epochs=6, batch_size=32)
        return head

    def source_posterior(self, features: np.ndarray) -> np.ndarray:
        """Source-label probabilities for raw target features.

        This is the "dummy label distribution" LEEP evaluates: the frozen
        checkpoint's own classifier applied to the new task's inputs.
        """
        encoded = self.encode(features)
        return self.source_head().predict_proba(encoded)

    def domain_affinity(self, task_domain: np.ndarray) -> float:
        """Cosine affinity between this model's domain and a task domain."""
        return DomainSpace.domain_affinity(self.domain, task_domain)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"PretrainedModel(name={self.name!r}, modality={self.modality!r}, "
            f"quality={self.quality:.2f})"
        )
