"""Synthetic model cards.

The paper's text-based clustering baseline (Table I) embeds each checkpoint's
HuggingFace model card with SBERT and clusters the embeddings.  Offline we
generate a deterministic model card per catalogue entry containing the same
kind of content a real card does — architecture, pre-training corpus,
fine-tuning datasets, intended use — so the text baseline has realistic
signal (names and datasets) while missing the training-performance structure
the performance-based similarity captures.
"""

from __future__ import annotations

from typing import Dict, List

from repro.zoo.catalog import ModelCatalogEntry

_ARCHITECTURE_BLURBS: Dict[str, str] = {
    "bert": "a bidirectional transformer encoder pre-trained with masked language modelling",
    "albert": "a parameter-shared transformer encoder with sentence-order prediction",
    "roberta": "a robustly optimised BERT variant trained with dynamic masking",
    "distilbert": "a distilled six-layer student of BERT base",
    "xlm-roberta": "a multilingual RoBERTa encoder covering one hundred languages",
    "mbert": "a multilingual BERT encoder trained on Wikipedia in many languages",
    "arabert": "an Arabic BERT encoder trained on Arabic news and web text",
    "bertic": "a BERT-style encoder for Bosnian, Croatian, Montenegrin and Serbian",
    "danish-bert": "a BERT encoder trained on Danish web text",
    "vit": "a vision transformer that processes images as patch sequences",
    "vit-dino": "a vision transformer trained with the self-supervised DINO objective",
    "vit-msn": "a vision transformer trained with masked siamese networks",
    "deit": "a data-efficient vision transformer trained with distillation",
    "beit": "a vision transformer pre-trained with masked image modelling",
    "poolformer": "a MetaFormer backbone using pooling as the token mixer",
    "dinat": "a hierarchical transformer with dilated neighbourhood attention",
    "van": "a convolutional backbone with large-kernel visual attention",
}

_CORPUS_BLURBS: Dict[str, str] = {
    "english": "English books, Wikipedia and web crawl corpora",
    "foreign": "a non-English corpus of news, social media and web documents",
    "imagenet1k": "the ImageNet-1k classification dataset",
    "imagenet21k": "the ImageNet-21k full hierarchy",
    "faces": "facial imagery collections",
    "artwork": "digitised artwork collections",
}


def render_model_card(entry: ModelCatalogEntry) -> str:
    """Render a deterministic, human-readable model card for ``entry``."""
    architecture_blurb = _ARCHITECTURE_BLURBS.get(
        entry.architecture, "a neural network encoder"
    )
    corpus_blurb = _CORPUS_BLURBS.get(entry.pretrain_corpus, "a proprietary corpus")
    lines: List[str] = [
        f"# {entry.name}",
        "",
        f"{entry.short_name} is {architecture_blurb}.",
        f"The backbone was pre-trained on {corpus_blurb}.",
    ]
    if entry.description:
        lines.append(entry.description)
    if entry.finetune_datasets:
        datasets = ", ".join(entry.finetune_datasets)
        lines.append(
            f"The checkpoint was further fine-tuned on the following downstream "
            f"dataset(s): {datasets}."
        )
    else:
        lines.append("The checkpoint ships without task-specific fine-tuning.")
    lines.extend(
        [
            "",
            "## Intended uses",
            f"This model is intended for {entry.modality.upper()} classification tasks; "
            "use it as a starting point and fine-tune on your target dataset.",
            "",
            "## Training procedure",
            f"Architecture family: {entry.architecture}. Model family: {entry.family}. "
            f"Source label space: {entry.source_classes} classes.",
        ]
    )
    return "\n".join(lines)


def render_all_cards(entries) -> Dict[str, str]:
    """Render model cards for every entry, keyed by model name."""
    return {entry.name: render_model_card(entry) for entry in entries}
