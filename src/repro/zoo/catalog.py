"""Catalogue of the simulated model repository.

The entries mirror the paper's Appendix B (Table VIII): 40 NLP checkpoints
and 30 CV checkpoints, keeping the original HuggingFace names.  Each entry
records what the reproduction needs to *simulate* the checkpoint:

* ``architecture`` and ``family`` — used for clustering analysis and for
  grouping "sibling" checkpoints (e.g. the ``bert_ft_qqp-*`` runs) whose
  encoders should behave similarly;
* ``quality`` — overall encoder quality in ``[0, 1]`` (signal-to-noise of
  the representation);
* ``pretrain_corpus`` — which broad upstream corpus the backbone saw
  (``english`` / ``foreign`` for NLP, ``imagenet1k`` / ``imagenet21k`` /
  ``faces`` / ``artwork`` for CV);
* ``finetune_datasets`` + ``finetune_weight`` — benchmark datasets whose
  domain the checkpoint was pulled towards by downstream fine-tuning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.utils.exceptions import ConfigurationError


@dataclass(frozen=True)
class ModelCatalogEntry:
    """Static description of one simulated checkpoint."""

    name: str
    modality: str
    architecture: str
    family: str
    quality: float
    pretrain_corpus: str = "english"
    finetune_datasets: Tuple[str, ...] = ()
    finetune_weight: float = 0.45
    source_classes: int = 8
    description: str = ""

    def __post_init__(self) -> None:
        if self.modality not in ("nlp", "cv"):
            raise ConfigurationError(
                f"model {self.name!r}: modality must be 'nlp' or 'cv'"
            )
        if not 0.0 < self.quality <= 1.0:
            raise ConfigurationError(
                f"model {self.name!r}: quality must be in (0, 1], got {self.quality}"
            )
        if not 0.0 <= self.finetune_weight < 1.0:
            raise ConfigurationError(
                f"model {self.name!r}: finetune_weight must be in [0, 1)"
            )
        if self.source_classes < 2:
            raise ConfigurationError(
                f"model {self.name!r}: source_classes must be >= 2"
            )

    @property
    def short_name(self) -> str:
        """Model name without the repository prefix (as used in the paper's figures)."""
        return self.name.split("/")[-1]


def _nlp(
    name: str,
    architecture: str,
    family: str,
    quality: float,
    *,
    corpus: str = "english",
    finetunes: Tuple[str, ...] = (),
    weight: float = 0.45,
    classes: int = 8,
    description: str = "",
) -> ModelCatalogEntry:
    return ModelCatalogEntry(
        name=name,
        modality="nlp",
        architecture=architecture,
        family=family,
        quality=quality,
        pretrain_corpus=corpus,
        finetune_datasets=finetunes,
        finetune_weight=weight,
        source_classes=classes,
        description=description,
    )


def _cv(
    name: str,
    architecture: str,
    family: str,
    quality: float,
    *,
    corpus: str = "imagenet1k",
    finetunes: Tuple[str, ...] = (),
    weight: float = 0.45,
    classes: int = 10,
    description: str = "",
) -> ModelCatalogEntry:
    return ModelCatalogEntry(
        name=name,
        modality="cv",
        architecture=architecture,
        family=family,
        quality=quality,
        pretrain_corpus=corpus,
        finetune_datasets=finetunes,
        finetune_weight=weight,
        source_classes=classes,
        description=description,
    )


# --------------------------------------------------------------------------- #
# 40 NLP checkpoints (names from the paper's Table VIII).
# --------------------------------------------------------------------------- #
_NLP_CATALOG: List[ModelCatalogEntry] = [
    _nlp("18811449050/bert_finetuning_test", "bert", "bert-misc", 0.46,
         finetunes=("sst2",), weight=0.25,
         description="BERT fine-tuning smoke-test checkpoint of unknown provenance."),
    _nlp("aditeyabaral/finetuned-sail2017-xlm-roberta-base", "xlm-roberta", "xlmr-sentiment", 0.62,
         finetunes=("sst2", "imdb"), weight=0.35,
         description="XLM-RoBERTa base fine-tuned on SAIL-2017 code-mixed sentiment."),
    _nlp("albert-base-v2", "albert", "albert-base", 0.80,
         description="ALBERT base v2 pre-trained with masked language modelling."),
    _nlp("aliosm/sha3bor-metre-detector-arabertv2-base", "arabert", "arabic", 0.42,
         corpus="foreign",
         description="AraBERT v2 fine-tuned to detect Arabic poetry metre."),
    _nlp("Alireza1044/albert-base-v2-qnli", "albert", "albert-qnli", 0.78,
         finetunes=("qnli",),
         description="ALBERT base v2 fine-tuned on QNLI."),
    _nlp("anirudh21/bert-base-uncased-finetuned-qnli", "bert", "bert-qnli", 0.71,
         finetunes=("qnli",),
         description="BERT base uncased fine-tuned on QNLI."),
    _nlp("aviator-neural/bert-base-uncased-sst2", "bert", "bert-sst2", 0.70,
         finetunes=("sst2",),
         description="BERT base uncased fine-tuned on SST-2 sentiment."),
    _nlp("aychang/bert-base-cased-trec-coarse", "bert", "bert-trec", 0.68,
         finetunes=("trec",),
         description="BERT base cased fine-tuned on TREC coarse question types."),
    _nlp("bert-base-uncased", "bert", "bert-base", 0.80,
         description="Original BERT base uncased masked-language-model checkpoint."),
    _nlp("bondi/bert-semaphore-prediction-w4", "bert", "bert-misc", 0.46,
         description="BERT checkpoint fine-tuned on a niche semaphore-prediction task."),
    _nlp("CAMeL-Lab/bert-base-arabic-camelbert-da-sentiment", "arabert", "arabic", 0.41,
         corpus="foreign", finetunes=("sst2",), weight=0.2,
         description="CAMeLBERT dialectal-Arabic sentiment model."),
    _nlp("CAMeL-Lab/bert-base-arabic-camelbert-mix-did-nadi", "arabert", "arabic", 0.39,
         corpus="foreign",
         description="CAMeLBERT mix fine-tuned for Arabic dialect identification (NADI)."),
    _nlp("classla/bcms-bertic-parlasent-bcs-ter", "bertic", "balkan", 0.40,
         corpus="foreign",
         description="BERTić fine-tuned for parliamentary sentiment in BCMS languages."),
    _nlp("connectivity/bert_ft_qqp-1", "bert", "bert-ft-qqp", 0.73,
         finetunes=("qqp",),
         description="BERT base fine-tuned on QQP (connectivity sweep, run 1)."),
    _nlp("connectivity/bert_ft_qqp-17", "bert", "bert-init-qqp", 0.58,
         finetunes=("qqp",), weight=0.3,
         description="BERT base fine-tuned on QQP from a re-initialised checkpoint (run 17)."),
    _nlp("connectivity/bert_ft_qqp-7", "bert", "bert-ft-qqp", 0.72,
         finetunes=("qqp",),
         description="BERT base fine-tuned on QQP (connectivity sweep, run 7)."),
    _nlp("connectivity/bert_ft_qqp-96", "bert", "bert-init-qqp", 0.57,
         finetunes=("qqp",), weight=0.3,
         description="BERT base fine-tuned on QQP from a re-initialised checkpoint (run 96)."),
    _nlp("dhimskyy/wiki-bert", "bert", "bert-misc", 0.50,
         description="BERT variant pre-trained on a small Wikipedia crawl."),
    _nlp("distilbert-base-uncased", "distilbert", "distilbert", 0.74,
         description="DistilBERT base uncased distilled from BERT."),
    _nlp("DoyyingFace/bert-asian-hate-tweets-asian-unclean-freeze-4", "bert", "bert-tweet", 0.63,
         finetunes=("tweet_eval", "sst2"), weight=0.3,
         description="BERT fine-tuned on hate-speech tweets with frozen lower layers."),
    _nlp("emrecan/bert-base-multilingual-cased-snli_tr", "mbert", "multilingual", 0.62,
         finetunes=("snli",), weight=0.35,
         description="Multilingual BERT fine-tuned on Turkish SNLI."),
    _nlp("gchhablani/bert-base-cased-finetuned-rte", "bert", "bert-glue", 0.66,
         finetunes=("rte",),
         description="BERT base cased fine-tuned on RTE."),
    _nlp("gchhablani/bert-base-cased-finetuned-wnli", "bert", "bert-glue", 0.60,
         finetunes=("wnli",),
         description="BERT base cased fine-tuned on WNLI."),
    _nlp("Guscode/DKbert-hatespeech-detection", "danish-bert", "danish", 0.44,
         corpus="foreign",
         description="Danish BERT fine-tuned for hate-speech detection."),
    _nlp("ishan/bert-base-uncased-mnli", "bert", "bert-mnli", 0.82,
         finetunes=("snli", "xnli", "sick"), weight=0.5,
         description="BERT base uncased fine-tuned on MNLI."),
    _nlp("jb2k/bert-base-multilingual-cased-language-detection", "mbert", "multilingual", 0.50,
         description="Multilingual BERT fine-tuned for language identification."),
    _nlp("Jeevesh8/512seq_len_6ep_bert_ft_cola-91", "bert", "bert-ft-cola", 0.68,
         finetunes=("cola",),
         description="BERT fine-tuned on CoLA with 512-token sequences for 6 epochs (run 91)."),
    _nlp("Jeevesh8/6ep_bert_ft_cola-47", "bert", "bert-ft-cola", 0.66,
         finetunes=("cola",),
         description="BERT fine-tuned on CoLA for 6 epochs (run 47)."),
    _nlp("Jeevesh8/bert_ft_cola-88", "bert", "bert-ft-cola", 0.67,
         finetunes=("cola",),
         description="BERT fine-tuned on CoLA (run 88)."),
    _nlp("Jeevesh8/bert_ft_qqp-40", "bert", "bert-ft-qqp", 0.72,
         finetunes=("qqp",),
         description="BERT fine-tuned on QQP (run 40)."),
    _nlp("Jeevesh8/bert_ft_qqp-68", "bert", "bert-ft-qqp", 0.73,
         finetunes=("qqp",),
         description="BERT fine-tuned on QQP (run 68)."),
    _nlp("Jeevesh8/bert_ft_qqp-9", "bert", "bert-ft-qqp", 0.72,
         finetunes=("qqp",),
         description="BERT fine-tuned on QQP (run 9)."),
    _nlp("Jeevesh8/feather_berts_46", "bert", "bert-mnli", 0.81,
         finetunes=("snli", "xnli", "sick"), weight=0.5,
         description="Feather BERT #46: BERT base fine-tuned on MNLI."),
    _nlp("Jeevesh8/init_bert_ft_qqp-24", "bert", "bert-init-qqp", 0.58,
         finetunes=("qqp",), weight=0.3,
         description="Re-initialised BERT fine-tuned on QQP (run 24)."),
    _nlp("Jeevesh8/init_bert_ft_qqp-33", "bert", "bert-init-qqp", 0.57,
         finetunes=("qqp",), weight=0.3,
         description="Re-initialised BERT fine-tuned on QQP (run 33)."),
    _nlp("manueltonneau/bert-twitter-en-is-hired", "bert", "bert-tweet", 0.61,
         finetunes=("tweet_eval",), weight=0.35,
         description="BERT fine-tuned on English tweets announcing employment."),
    _nlp("roberta-base", "roberta", "roberta-base", 0.84,
         description="RoBERTa base pre-trained with dynamic masking."),
    _nlp("socialmediaie/TRAC2020_IBEN_B_bert-base-multilingual-uncased", "mbert", "multilingual", 0.48,
         finetunes=("tweet_eval",), weight=0.2,
         description="Multilingual BERT fine-tuned on TRAC-2020 aggression detection (Bengali)."),
    _nlp("Splend1dchan/bert-base-uncased-slue-goldtrascription-e3-lr1e-4", "bert", "bert-misc", 0.56,
         description="BERT fine-tuned on SLUE gold transcriptions."),
    _nlp("XSY/albert-base-v2-imdb-calssification", "albert", "albert-imdb", 0.70,
         finetunes=("imdb", "sst2"), weight=0.4,
         description="ALBERT base v2 fine-tuned on IMDB sentiment classification."),
]

# --------------------------------------------------------------------------- #
# 30 CV checkpoints (names from the paper's Table VIII).
# --------------------------------------------------------------------------- #
_CV_CATALOG: List[ModelCatalogEntry] = [
    _cv("facebook/deit-base-patch16-224", "deit", "deit-base", 0.82,
        corpus="imagenet1k",
        description="DeiT base distilled vision transformer, 224px, ImageNet-1k."),
    _cv("facebook/deit-base-patch16-384", "deit", "deit-base", 0.83,
        corpus="imagenet1k",
        description="DeiT base distilled vision transformer, 384px, ImageNet-1k."),
    _cv("facebook/deit-small-patch16-224", "deit", "deit-small", 0.74,
        corpus="imagenet1k",
        description="DeiT small vision transformer, 224px, ImageNet-1k."),
    _cv("facebook/dino-vitb16", "vit-dino", "dino-base", 0.80,
        corpus="imagenet21k",
        description="Self-supervised DINO ViT-B/16."),
    _cv("facebook/dino-vitb8", "vit-dino", "dino-base", 0.81,
        corpus="imagenet21k",
        description="Self-supervised DINO ViT-B/8."),
    _cv("facebook/dino-vits16", "vit-dino", "dino-small", 0.73,
        corpus="imagenet1k",
        description="Self-supervised DINO ViT-S/16."),
    _cv("facebook/vit-msn-base", "vit-msn", "msn", 0.78,
        corpus="imagenet1k",
        description="Masked Siamese Network ViT base."),
    _cv("facebook/vit-msn-small", "vit-msn", "msn", 0.72,
        corpus="imagenet1k",
        description="Masked Siamese Network ViT small."),
    _cv("google/vit-base-patch16-224", "vit", "vit-base", 0.85,
        corpus="imagenet21k",
        description="ViT base patch16, 224px, ImageNet-21k pre-training + ImageNet-1k fine-tune."),
    _cv("google/vit-base-patch16-384", "vit", "vit-base", 0.86,
        corpus="imagenet21k",
        description="ViT base patch16, 384px, ImageNet-21k pre-training + ImageNet-1k fine-tune."),
    _cv("google/vit-base-patch32-224-in21k", "vit", "vit-in21k", 0.76,
        corpus="imagenet21k",
        description="ViT base patch32 pre-trained on ImageNet-21k only (no fine-tuned head)."),
    _cv("lixiqi/beit-base-patch16-224-pt22k-ft22k-finetuned-FER2013-6e-05", "beit", "beit-fer", 0.66,
        corpus="faces", finetunes=("fer2013",), weight=0.5,
        description="BEiT base fine-tuned on FER-2013 facial expressions (lr 6e-05)."),
    _cv("lixiqi/beit-base-patch16-224-pt22k-ft22k-finetuned-FER2013-7e-05", "beit", "beit-fer", 0.65,
        corpus="faces", finetunes=("fer2013",), weight=0.5,
        description="BEiT base fine-tuned on FER-2013 facial expressions (lr 7e-05)."),
    _cv("lixiqi/beit-base-patch16-224-pt22k-ft22k-finetuned-FER-5e-05-3", "beit", "beit-fer", 0.66,
        corpus="faces", finetunes=("fer2013",), weight=0.5,
        description="BEiT base fine-tuned on FER facial expressions (lr 5e-05, run 3)."),
    _cv("microsoft/beit-base-patch16-224", "beit", "beit-base", 0.80,
        corpus="imagenet21k",
        description="BEiT base, ImageNet-21k pre-training with ImageNet-1k fine-tune."),
    _cv("microsoft/beit-base-patch16-224-pt22k", "beit", "beit-pt22k", 0.70,
        corpus="imagenet21k",
        description="BEiT base pre-trained on ImageNet-22k (no supervised fine-tune)."),
    _cv("microsoft/beit-base-patch16-224-pt22k-ft22k", "beit", "beit-base", 0.81,
        corpus="imagenet21k",
        description="BEiT base pre-trained and fine-tuned on ImageNet-22k."),
    _cv("microsoft/beit-base-patch16-384", "beit", "beit-base", 0.82,
        corpus="imagenet21k",
        description="BEiT base, 384px, ImageNet-21k."),
    _cv("microsoft/beit-large-patch16-224-pt22k", "beit", "beit-pt22k", 0.69,
        corpus="imagenet21k",
        description="BEiT large pre-trained on ImageNet-22k (no supervised fine-tune)."),
    _cv("mrgiraffe/vit-large-dataset-model-v3", "vit", "vit-misc", 0.55,
        corpus="imagenet1k",
        description="ViT checkpoint trained on an undocumented large dataset."),
    _cv("sail/poolformer_m36", "poolformer", "poolformer-m", 0.70,
        corpus="imagenet1k",
        description="PoolFormer M36 MetaFormer backbone."),
    _cv("sail/poolformer_m48", "poolformer", "poolformer-m", 0.71,
        corpus="imagenet1k",
        description="PoolFormer M48 MetaFormer backbone."),
    _cv("sail/poolformer_s36", "poolformer", "poolformer-s", 0.66,
        corpus="imagenet1k",
        description="PoolFormer S36 MetaFormer backbone."),
    _cv("shi-labs/dinat-base-in1k-224", "dinat", "dinat-base", 0.72,
        corpus="imagenet1k",
        description="Dilated Neighborhood Attention Transformer base, ImageNet-1k."),
    _cv("shi-labs/dinat-large-in22k-in1k-224", "dinat", "dinat-large", 0.79,
        corpus="imagenet21k",
        description="DiNAT large, ImageNet-22k pre-training, ImageNet-1k fine-tune, 224px."),
    _cv("shi-labs/dinat-large-in22k-in1k-384", "dinat", "dinat-large", 0.80,
        corpus="imagenet21k",
        description="DiNAT large, ImageNet-22k pre-training, ImageNet-1k fine-tune, 384px."),
    _cv("Visual-Attention-Network/van-base", "van", "van", 0.71,
        corpus="imagenet1k",
        description="Visual Attention Network base."),
    _cv("Visual-Attention-Network/van-large", "van", "van", 0.76,
        corpus="imagenet1k",
        description="Visual Attention Network large."),
    _cv("oschamp/vit-artworkclassifier", "vit", "vit-artwork", 0.52,
        corpus="artwork",
        description="ViT fine-tuned to classify artwork styles."),
    _cv("nateraw/vit-age-classifier", "vit", "vit-faces", 0.60,
        corpus="faces", finetunes=("fer2013",), weight=0.35,
        description="ViT fine-tuned to predict age buckets from face crops."),
]


def nlp_catalog() -> List[ModelCatalogEntry]:
    """The 40 simulated NLP checkpoints."""
    return list(_NLP_CATALOG)


def cv_catalog() -> List[ModelCatalogEntry]:
    """The 30 simulated CV checkpoints."""
    return list(_CV_CATALOG)


def catalog_for_modality(modality: str) -> List[ModelCatalogEntry]:
    """Return the catalogue for ``modality`` (``"nlp"`` or ``"cv"``)."""
    if modality == "nlp":
        return nlp_catalog()
    if modality == "cv":
        return cv_catalog()
    raise ConfigurationError(f"modality must be 'nlp' or 'cv', got {modality!r}")
