"""Minimal text-table renderer for experiment output.

The benchmark harness prints the same rows the paper's tables report; this
renderer keeps that output aligned and dependency-free.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

Cell = Union[str, int, float]


class TextTable:
    """Column-aligned plain-text table."""

    def __init__(self, columns: Sequence[str], *, title: Optional[str] = None) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.columns = list(columns)
        self.title = title
        self.rows: List[List[str]] = []

    # ------------------------------------------------------------------ #
    @staticmethod
    def _format(value: Cell) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    def add_row(self, values: Sequence[Cell]) -> None:
        """Append a row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(values)}"
            )
        self.rows.append([self._format(value) for value in values])

    def add_dict_row(self, record: Dict[str, Cell]) -> None:
        """Append a row from a dict keyed by column name (missing -> '-')."""
        self.add_row([record.get(column, "-") for column in self.columns])

    # ------------------------------------------------------------------ #
    def render(self) -> str:
        """Render the table to a string."""
        widths = [len(column) for column in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        header = " | ".join(
            column.ljust(widths[index]) for index, column in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("-+-".join("-" * width for width in widths))
        for row in self.rows:
            lines.append(
                " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(row))
            )
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def render_records(
    records: Sequence[Dict[str, Cell]],
    columns: Sequence[str],
    *,
    title: Optional[str] = None,
) -> str:
    """Render a list of dict records as a text table."""
    table = TextTable(columns, title=title)
    for record in records:
        table.add_dict_row(record)
    return table.render()
