"""Shared experiment context: cached offline artifacts per modality.

Every table/figure of the paper's evaluation needs the same expensive
ingredients — the model hub, the benchmark performance matrix, the model
clustering, and the *ground-truth* fine-tuning accuracy of every checkpoint
on every target dataset (what the paper obtains by brute-force fine-tuning
in order to evaluate recall quality).  :class:`ExperimentContext` builds all
of them lazily and :func:`get_context` memoises contexts per
``(modality, scale, seed)`` so the whole benchmark suite pays the offline
cost once.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import PipelineConfig
from repro.core.model_clustering import ModelClusterer, ModelClustering
from repro.core.performance import PerformanceMatrix, build_performance_matrix
from repro.core.pipeline import OfflineArtifacts, TwoPhaseSelector
from repro.data.workloads import DataScale, WorkloadSuite, suite_for_modality
from repro.utils.exceptions import ConfigurationError
from repro.zoo.finetune import FineTuner, LearningCurve
from repro.zoo.hub import ModelHub


@dataclass
class ExperimentContext:
    """Cached artifacts for one modality (NLP or CV).

    Parameters
    ----------
    modality:
        ``"nlp"`` or ``"cv"``.
    seed:
        Root seed shared by data generation, hub construction and
        fine-tuning.
    scale:
        Dataset split sizes; ``"full"`` uses the default experiment scale,
        ``"small"`` keeps CI/unit-test runs fast.
    num_models:
        Optional cap on the repository size (takes the first ``n``
        catalogue entries); ``None`` uses the full 40/30-model repository.
    """

    modality: str
    seed: int = 0
    scale: str = "full"
    num_models: Optional[int] = None
    _suite: Optional[WorkloadSuite] = field(default=None, repr=False)
    _hub: Optional[ModelHub] = field(default=None, repr=False)
    _matrix: Optional[PerformanceMatrix] = field(default=None, repr=False)
    _clustering: Optional[ModelClustering] = field(default=None, repr=False)
    _selector: Optional[TwoPhaseSelector] = field(default=None, repr=False)
    _target_truth: Optional[Dict[str, Dict[str, LearningCurve]]] = field(
        default=None, repr=False
    )

    def __post_init__(self) -> None:
        if self.modality not in ("nlp", "cv"):
            raise ConfigurationError("modality must be 'nlp' or 'cv'")
        if self.scale not in ("full", "small"):
            raise ConfigurationError("scale must be 'full' or 'small'")

    # ------------------------------------------------------------------ #
    # paper defaults
    # ------------------------------------------------------------------ #
    @property
    def offline_epochs(self) -> int:
        """Offline/online fine-tuning budget (5 for NLP, 4 for CV)."""
        return 5 if self.modality == "nlp" else 4

    @property
    def config(self) -> PipelineConfig:
        """Pipeline configuration with the paper's per-modality defaults."""
        return PipelineConfig.for_modality(self.modality)

    # ------------------------------------------------------------------ #
    # lazily built artifacts
    # ------------------------------------------------------------------ #
    @property
    def suite(self) -> WorkloadSuite:
        """Benchmark + target workload suite."""
        if self._suite is None:
            data_scale = DataScale.default() if self.scale == "full" else DataScale.small()
            self._suite = suite_for_modality(self.modality, seed=self.seed, scale=data_scale)
        return self._suite

    @property
    def hub(self) -> ModelHub:
        """Simulated checkpoint repository."""
        if self._hub is None:
            hub = ModelHub(self.suite, seed=self.seed)
            if self.num_models is not None:
                hub = hub.subset(hub.model_names[: self.num_models])
            self._hub = hub
        return self._hub

    @property
    def fine_tuner(self) -> FineTuner:
        """Fine-tuning engine with the context seed."""
        return FineTuner(seed=self.seed)

    @property
    def matrix(self) -> PerformanceMatrix:
        """Benchmark performance matrix (the offline phase)."""
        if self._matrix is None:
            self._matrix = build_performance_matrix(
                self.hub,
                self.suite,
                fine_tuner=self.fine_tuner,
                epochs=self.offline_epochs,
            )
        return self._matrix

    @property
    def clustering(self) -> ModelClustering:
        """Hierarchical performance-based model clustering (paper default)."""
        if self._clustering is None:
            clusterer = ModelClusterer(self.config.clustering)
            self._clustering = clusterer.cluster(
                self.matrix, model_cards=self.hub.model_cards()
            )
        return self._clustering

    @property
    def selector(self) -> TwoPhaseSelector:
        """End-to-end two-phase selector sharing the cached artifacts."""
        if self._selector is None:
            artifacts = OfflineArtifacts(
                hub=self.hub,
                suite=self.suite,
                matrix=self.matrix,
                clustering=self.clustering,
                config=self.config,
            )
            self._selector = TwoPhaseSelector(artifacts, fine_tuner=self.fine_tuner)
        return self._selector

    # ------------------------------------------------------------------ #
    # ground truth on target datasets
    # ------------------------------------------------------------------ #
    def target_ground_truth(self) -> Dict[str, Dict[str, LearningCurve]]:
        """Full fine-tuning curves of every model on every target dataset.

        This is the paper's evaluation reference ("we fine-tune all the
        models on corresponding target datasets to get the actual training
        performance"), reused by Fig. 1, Fig. 5, Fig. 7 and Table VII.
        """
        if self._target_truth is None:
            tuner = self.fine_tuner
            truth: Dict[str, Dict[str, LearningCurve]] = {}
            for target_name in self.suite.target_names:
                task = self.suite.task(target_name)
                truth[target_name] = {
                    model.name: tuner.fine_tune(model, task, epochs=self.offline_epochs)
                    for model in self.hub.models()
                }
            self._target_truth = truth
        return self._target_truth

    def target_accuracy(self, target_name: str, model_name: str) -> float:
        """Ground-truth final test accuracy of ``model_name`` on ``target_name``."""
        return self.target_ground_truth()[target_name][model_name].final_test

    def best_target_model(self, target_name: str) -> Tuple[str, float]:
        """Ground-truth best model and accuracy on ``target_name``."""
        curves = self.target_ground_truth()[target_name]
        best = max(curves, key=lambda name: curves[name].final_test)
        return best, curves[best].final_test

    @property
    def target_names(self) -> List[str]:
        """Target dataset names of this modality."""
        return list(self.suite.target_names)

    @property
    def benchmark_names(self) -> List[str]:
        """Benchmark dataset names of this modality."""
        return list(self.suite.benchmark_names)


# --------------------------------------------------------------------------- #
# Context memoisation
# --------------------------------------------------------------------------- #
_CONTEXT_CACHE: Dict[Tuple[str, str, int, Optional[int]], ExperimentContext] = {}


def default_scale() -> str:
    """Experiment scale from the ``REPRO_EXPERIMENT_SCALE`` environment variable."""
    scale = os.environ.get("REPRO_EXPERIMENT_SCALE", "full").lower()
    return scale if scale in ("full", "small") else "full"


def get_context(
    modality: str,
    *,
    scale: Optional[str] = None,
    seed: int = 0,
    num_models: Optional[int] = None,
) -> ExperimentContext:
    """Return the memoised :class:`ExperimentContext` for ``modality``."""
    resolved_scale = scale or default_scale()
    key = (modality, resolved_scale, seed, num_models)
    if key not in _CONTEXT_CACHE:
        _CONTEXT_CACHE[key] = ExperimentContext(
            modality=modality, seed=seed, scale=resolved_scale, num_models=num_models
        )
    return _CONTEXT_CACHE[key]


def clear_context_cache() -> None:
    """Drop all memoised contexts (mainly for tests)."""
    _CONTEXT_CACHE.clear()
