"""Fig. 5 — coarse-recall vs random-recall quality.

For every target dataset the paper compares the *average ground-truth
fine-tuning accuracy* of the top-K models returned by coarse-recall against
K models drawn at random, for several values of K, and additionally reports
how many models must be recalled before the overall best model is included.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.recall import RandomRecall
from repro.experiments.context import ExperimentContext
from repro.experiments.tables import TextTable

DEFAULT_K_VALUES = (5, 10, 15, 20)


def run(
    context: ExperimentContext,
    *,
    k_values: Sequence[int] = DEFAULT_K_VALUES,
    num_random_repeats: int = 5,
    targets: Optional[Sequence[str]] = None,
) -> List[Dict[str, object]]:
    """Average recalled-model accuracy per (target, K) for both recall methods."""
    truth = context.target_ground_truth()
    rng = np.random.default_rng(context.seed)
    records: List[Dict[str, object]] = []
    target_names = list(targets) if targets else context.target_names
    for target in target_names:
        task = context.suite.task(target)
        accuracies = {name: curve.final_test for name, curve in truth[target].items()}
        best_model = max(accuracies, key=accuracies.get)
        full_ranking = context.selector.recall_only(
            target, top_k=len(context.hub)
        ).recalled_models
        best_rank = full_ranking.index(best_model) + 1 if best_model in full_ranking else None
        for k in k_values:
            k = min(k, len(context.hub))
            coarse_top = full_ranking[:k]
            coarse_avg = float(np.mean([accuracies[name] for name in coarse_top]))
            random_avgs = []
            for _ in range(num_random_repeats):
                random_top = RandomRecall(context.hub, rng=rng).recall(task, top_k=k)
                random_avgs.append(
                    float(np.mean([accuracies[name] for name in random_top.recalled_models]))
                )
            records.append(
                {
                    "modality": context.modality,
                    "target": target,
                    "k": k,
                    "coarse_recall_avg_acc": coarse_avg,
                    "random_recall_avg_acc": float(np.mean(random_avgs)),
                    "best_model_recalled": best_model in coarse_top,
                    "best_model_rank": best_rank,
                }
            )
    return records


def render(records: List[Dict[str, object]]) -> str:
    """Render the Fig. 5 comparison."""
    table = TextTable(
        [
            "modality",
            "target",
            "k",
            "coarse_recall_avg_acc",
            "random_recall_avg_acc",
            "best_model_recalled",
            "best_model_rank",
        ],
        title="Fig. 5: average ground-truth accuracy of recalled models (coarse vs random)",
    )
    for record in records:
        table.add_dict_row(record)
    return table.render()
