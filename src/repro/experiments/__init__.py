"""Experiment harnesses regenerating every table and figure of the paper.

Each module reproduces one table or figure of the evaluation section and
exposes a ``run(...)`` function returning plain data structures (lists of
row dicts / numeric series) plus a ``render(...)`` helper producing the
text table printed by the corresponding benchmark target.

The shared :class:`~repro.experiments.context.ExperimentContext` builds and
caches the expensive offline artifacts (hub, performance matrix, clustering,
target ground truth) once per modality so individual experiments stay cheap.

Index (see DESIGN.md for the full mapping):

==============  ====================================================
Paper item      Module
==============  ====================================================
Fig. 1          :mod:`repro.experiments.fig1_distribution`
Table I         :mod:`repro.experiments.table1_clustering_methods`
Table II        :mod:`repro.experiments.table2_cluster_membership`
Table III       :mod:`repro.experiments.table3_singleton_vs_non`
Fig. 3 / 8      :mod:`repro.experiments.fig3_validation_curves`
Fig. 4          :mod:`repro.experiments.fig4_convergence_groups`
Fig. 5          :mod:`repro.experiments.fig5_recall_quality`
Fig. 6          :mod:`repro.experiments.fig6_trend_quality`
Table IV        :mod:`repro.experiments.table4_threshold`
Fig. 7          :mod:`repro.experiments.fig7_selection_quality`
Table V         :mod:`repro.experiments.table5_runtime`
Table VI        :mod:`repro.experiments.table6_end_to_end`
Table VII       :mod:`repro.experiments.table7_case_study`
Table X (app.)  :mod:`repro.experiments.tablex_topk_parameter`
==============  ====================================================
"""

from repro.experiments.context import ExperimentContext, get_context
from repro.experiments.tables import TextTable

__all__ = ["ExperimentContext", "get_context", "TextTable"]
