"""Table VII — case study of the finally selected models.

For a handful of target tasks the paper inspects the model selected by the
full two-phase pipeline: its ground-truth accuracy, its rank within the
coarse-recall output (by proxy-based recall score), and the average
ground-truth accuracy of all recalled models, showing that the selected
checkpoints are ranked high at recall time and beat the recalled-set average.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.context import ExperimentContext
from repro.experiments.tables import TextTable

DEFAULT_TARGETS = {
    "nlp": ("multirc", "boolq"),
    "cv": ("medmnist_v2", "oxford_flowers"),
}


def run(
    context: ExperimentContext,
    *,
    targets: Optional[Sequence[str]] = None,
    top_k: int = 10,
) -> List[Dict[str, object]]:
    """Case-study records per target dataset."""
    truth = context.target_ground_truth()
    records: List[Dict[str, object]] = []
    target_names = list(targets) if targets else list(DEFAULT_TARGETS[context.modality])
    for target in target_names:
        result = context.selector.select(target, top_k=top_k)
        accuracies = {name: curve.final_test for name, curve in truth[target].items()}
        recalled = result.recall.recalled_models
        selected = result.selected_model
        records.append(
            {
                "modality": context.modality,
                "target": target,
                "selected_model": selected,
                "selected_accuracy": accuracies[selected],
                "rank_at_recall": result.recall.rank_of(selected),
                "avg_recalled_accuracy": float(
                    np.mean([accuracies[name] for name in recalled])
                ),
                "best_model": max(accuracies, key=accuracies.get),
                "best_accuracy": max(accuracies.values()),
            }
        )
    return records


def render(records: List[Dict[str, object]]) -> str:
    """Render Table VII."""
    table = TextTable(
        [
            "modality",
            "target",
            "selected_model",
            "selected_accuracy",
            "rank_at_recall",
            "avg_recalled_accuracy",
            "best_accuracy",
        ],
        title="Table VII: case study of the selected model after coarse-recall + fine-selection",
    )
    for record in records:
        table.add_dict_row(
            {**record, "selected_model": str(record["selected_model"]).split("/")[-1]}
        )
    return table.render()
