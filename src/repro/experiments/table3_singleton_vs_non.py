"""Table III — performance of models in singleton vs non-singleton clusters.

For each modality the table reports (a) the average benchmark accuracy of
models that landed in non-singleton vs singleton clusters and (b) how many
benchmark datasets have their best-performing model inside each group.  The
paper's finding — the strong checkpoints concentrate in non-singleton
clusters — is what justifies scoring only those clusters' representatives in
the coarse-recall phase.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.experiments.context import ExperimentContext
from repro.experiments.tables import TextTable


def run(context: ExperimentContext) -> List[Dict[str, object]]:
    """Return the two Table III rows (non-singleton / singleton) for one modality."""
    matrix = context.matrix
    clustering = context.clustering
    singleton_models = set(clustering.singleton_models())
    non_singleton_models = [
        name for name in matrix.model_names if name not in singleton_models
    ]
    best_counts = {"non_singleton": 0, "singleton": 0}
    for dataset in matrix.dataset_names:
        best = matrix.best_model_for(dataset)
        key = "singleton" if best in singleton_models else "non_singleton"
        best_counts[key] += 1

    def average(names) -> float:
        if not names:
            return float("nan")
        return float(np.mean([matrix.average_accuracy(name) for name in names]))

    return [
        {
            "modality": context.modality,
            "cluster_type": "non-singleton",
            "num_models": len(non_singleton_models),
            "avg_accuracy": average(non_singleton_models),
            "num_best_models": best_counts["non_singleton"],
        },
        {
            "modality": context.modality,
            "cluster_type": "singleton",
            "num_models": len(singleton_models),
            "avg_accuracy": average(sorted(singleton_models)),
            "num_best_models": best_counts["singleton"],
        },
    ]


def render(records: List[Dict[str, object]]) -> str:
    """Render Table III."""
    table = TextTable(
        ["modality", "cluster_type", "num_models", "avg_accuracy", "num_best_models"],
        title="Table III: models in singleton vs non-singleton clusters",
    )
    for record in records:
        table.add_dict_row(record)
    return table.render()
