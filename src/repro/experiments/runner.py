"""Run every experiment of the paper's evaluation section in one call.

``run_all`` executes all tables and figures for both modalities and returns
their rendered text blocks; the ``examples/reproduce_paper.py`` script and
the EXPERIMENTS.md document are produced from this output.
``run_batched_selection`` answers all of a modality's target tasks in one
batched pass over the shared offline artifacts (and, thanks to the artifact
cache, reuses similarity/distance matrices across figures and repeat runs).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.batch import BatchSelectionReport

from repro.experiments import (
    fig1_distribution,
    fig3_validation_curves,
    fig4_convergence_groups,
    fig5_recall_quality,
    fig6_trend_quality,
    fig7_selection_quality,
    table1_clustering_methods,
    table2_cluster_membership,
    table3_singleton_vs_non,
    table4_threshold,
    table5_runtime,
    table6_end_to_end,
    table7_case_study,
    tablex_topk_parameter,
)
from repro.experiments.context import ExperimentContext, get_context


def _per_modality(module) -> Callable[[Dict[str, ExperimentContext]], str]:
    """Wrap a per-modality experiment into an all-modalities renderer."""

    def runner(contexts: Dict[str, ExperimentContext]) -> str:
        blocks = []
        for context in contexts.values():
            blocks.append(module.render(module.run(context)))
        return "\n\n".join(blocks)

    return runner


#: Ordered experiment registry: experiment id -> callable(contexts) -> text.
EXPERIMENTS: Dict[str, Callable[[Dict[str, ExperimentContext]], str]] = {
    "fig1": _per_modality(fig1_distribution),
    "table1": lambda contexts: table1_clustering_methods.render(
        table1_clustering_methods.run(contexts)
    ),
    "table2": _per_modality(table2_cluster_membership),
    "table3": _per_modality(table3_singleton_vs_non),
    "fig3": _per_modality(fig3_validation_curves),
    "fig4": _per_modality(fig4_convergence_groups),
    "fig5": _per_modality(fig5_recall_quality),
    "fig6": _per_modality(fig6_trend_quality),
    "table4": _per_modality(table4_threshold),
    "fig7": _per_modality(fig7_selection_quality),
    "table5": _per_modality(table5_runtime),
    "table6": _per_modality(table6_end_to_end),
    "table7": _per_modality(table7_case_study),
    "tablex": _per_modality(tablex_topk_parameter),
}


def run_all(
    *,
    scale: Optional[str] = None,
    seed: int = 0,
    only: Optional[List[str]] = None,
    modalities: Tuple[str, ...] = ("nlp", "cv"),
) -> Dict[str, str]:
    """Run the selected experiments and return experiment-id -> rendered text."""
    contexts = {
        modality: get_context(modality, scale=scale, seed=seed)
        for modality in modalities
    }
    selected = only or list(EXPERIMENTS)
    outputs: Dict[str, str] = {}
    for experiment_id in selected:
        if experiment_id not in EXPERIMENTS:
            raise KeyError(
                f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
            )
        outputs[experiment_id] = EXPERIMENTS[experiment_id](contexts)
    return outputs


def run_batched_selection(
    modality: str = "nlp",
    *,
    targets: Optional[Sequence[str]] = None,
    top_k: Optional[int] = None,
    scale: Optional[str] = None,
    seed: int = 0,
    parallel=None,
) -> BatchSelectionReport:
    """Run the two-phase pipeline for a batch of targets of one modality.

    Uses the memoised :class:`~repro.experiments.context.ExperimentContext`
    selector (and its offline artifacts), so the offline phase is shared
    with every other experiment of the same ``(modality, scale, seed)``
    triple.  ``targets`` defaults to every target dataset of the modality's
    workload suite.  ``parallel`` (an executor,
    :class:`~repro.parallel.ParallelConfig` or ``"backend[:workers]"``
    spec) fans the per-target work out across workers; every backend
    returns the same report as the serial path.
    """
    from repro.core.batch import BatchedSelectionRunner

    context = get_context(modality, scale=scale, seed=seed)
    resolved = context.target_names if targets is None else list(targets)
    if parallel is None:
        return context.selector.select_many(resolved, top_k=top_k)
    runner = BatchedSelectionRunner(
        context.selector.artifacts,
        fine_tuner=context.selector.fine_tuner,
        parallel=parallel,
    )
    return runner.run(resolved, top_k=top_k)


def render_report(outputs: Dict[str, str]) -> str:
    """Concatenate experiment outputs into one report string."""
    blocks = []
    for experiment_id, text in outputs.items():
        blocks.append(f"=== {experiment_id} ===\n{text}")
    return "\n\n".join(blocks)
