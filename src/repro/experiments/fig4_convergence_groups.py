"""Fig. 4 — convergence processes of one model across the benchmark datasets.

The paper shows that the BERT-family checkpoint
``DoyyingFace/bert-asian-hate-tweets-asian-unclean-freeze-4`` produces
validation/test curves on 30 datasets that fall into roughly four groups.
We regenerate the same picture: the per-dataset validation (stage 1) and
final test accuracies of a chosen checkpoint, together with the trend each
dataset is assigned to by the convergence-trend miner.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.convergence import ConvergenceTrendMiner
from repro.experiments.context import ExperimentContext
from repro.experiments.tables import TextTable

#: Checkpoint highlighted by the paper's Fig. 4 (per modality).
DEFAULT_MODELS = {
    "nlp": "DoyyingFace/bert-asian-hate-tweets-asian-unclean-freeze-4",
    "cv": "microsoft/beit-base-patch16-224",
}


def run(
    context: ExperimentContext,
    *,
    model_name: Optional[str] = None,
    num_trends: int = 4,
    stage: int = 1,
) -> Dict[str, object]:
    """Group the chosen model's benchmark curves into convergence trends."""
    name = model_name or DEFAULT_MODELS[context.modality]
    if name not in context.hub.model_names:
        name = context.hub.model_names[0]
    curves = context.matrix.curves_for_model(name)
    miner = ConvergenceTrendMiner(num_trends=num_trends)
    trend_set = miner.mine(name, curves, stage=stage)
    labels = trend_set.trend_labels()
    datasets = []
    for dataset_name in sorted(curves):
        curve = curves[dataset_name]
        datasets.append(
            {
                "dataset": dataset_name,
                "val_at_stage": curve.val_at(stage),
                "final_test": curve.final_test,
                "trend": labels[dataset_name],
            }
        )
    trends = [
        {
            "trend": trend.trend_id,
            "size": trend.size,
            "mean_val": trend.val_accuracy,
            "mean_final_test": trend.test_accuracy,
        }
        for trend in trend_set.trends
    ]
    return {
        "modality": context.modality,
        "model": name,
        "stage": stage,
        "datasets": datasets,
        "trends": trends,
        "num_trends": len(trends),
    }


def render(result: Dict[str, object]) -> str:
    """Render the Fig. 4 grouping."""
    lines: List[str] = []
    dataset_table = TextTable(
        ["dataset", "val_at_stage", "final_test", "trend"],
        title=(
            f"Fig. 4 ({result['modality'].upper()}): convergence processes of "
            f"{result['model']} grouped into {result['num_trends']} trends"
        ),
    )
    for record in result["datasets"]:  # type: ignore[union-attr]
        dataset_table.add_dict_row(record)
    lines.append(dataset_table.render())
    trend_table = TextTable(["trend", "size", "mean_val", "mean_final_test"],
                            title="Mined convergence trends")
    for record in result["trends"]:  # type: ignore[union-attr]
        trend_table.add_dict_row(record)
    lines.append(trend_table.render())
    return "\n".join(lines)
