"""Table VI — end-to-end comparison: two-phase (CR+FS) vs BF vs SH.

The two-phase pipeline's cost includes the coarse-recall proxy inference
(charged at half an epoch per scored cluster, as in the paper) plus the
fine-selection epochs over the recalled models; BF and SH operate on the
whole repository.  Accuracy is the final test accuracy of each method's
selected checkpoint after full fine-tuning.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.config import FineSelectionConfig
from repro.core.selection import BruteForceSelection, SuccessiveHalving
from repro.experiments.context import ExperimentContext
from repro.experiments.tables import TextTable


def run(
    context: ExperimentContext,
    *,
    targets: Optional[Sequence[str]] = None,
    top_k: int = 10,
) -> List[Dict[str, object]]:
    """End-to-end runtime/accuracy comparison per target dataset."""
    config = FineSelectionConfig(total_epochs=context.offline_epochs)
    records: List[Dict[str, object]] = []
    target_names = list(targets) if targets else context.target_names
    all_models = context.hub.model_names
    for target in target_names:
        task = context.suite.task(target)
        two_phase = context.selector.select(target, top_k=top_k)
        brute_force = BruteForceSelection(
            context.hub, context.fine_tuner, config=config
        ).run(all_models, task)
        halving = SuccessiveHalving(
            context.hub, context.fine_tuner, config=config
        ).run(all_models, task)
        two_phase_cost = two_phase.total_cost
        records.append(
            {
                "modality": context.modality,
                "target": target,
                "runtime_2ph": two_phase_cost,
                "runtime_bf": brute_force.total_cost,
                "runtime_sh": halving.total_cost,
                "speedup_vs_bf": brute_force.total_cost / two_phase_cost,
                "speedup_vs_sh": halving.total_cost / two_phase_cost,
                "acc_bf": brute_force.selected_accuracy,
                "acc_sh": halving.selected_accuracy,
                "acc_2ph": two_phase.selected_accuracy,
                "model_2ph": two_phase.selected_model,
            }
        )
    return records


def render(records: List[Dict[str, object]]) -> str:
    """Render Table VI."""
    table = TextTable(
        [
            "modality",
            "target",
            "runtime_2ph",
            "speedup_vs_bf",
            "speedup_vs_sh",
            "acc_bf",
            "acc_sh",
            "acc_2ph",
        ],
        title=(
            "Table VI: end-to-end runtime (epoch-equivalents) and accuracy — "
            "two-phase (2PH) vs brute force (BF) vs successive halving (SH)"
        ),
    )
    for record in records:
        table.add_dict_row(record)
    return table.render()
