"""Ablation — choice of proxy score in the coarse-recall phase.

The paper uses LEEP and notes (future work) that other lightweight
transferability measures could be plugged in.  This ablation swaps the proxy
scorer used for the cluster representatives (LEEP, NCE, LogME, H-score, kNN)
and also includes a *prior-only* arm that ranks models purely by their average
benchmark accuracy (i.e. Eq. 2 with the proxy term fixed to 1), then compares:

* the average ground-truth accuracy of the recalled top-K models,
* whether the overall best checkpoint is recalled,
* the end-to-end accuracy after fine-selection on the recalled set.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import FineSelectionConfig, RecallConfig
from repro.core.recall import CoarseRecall
from repro.core.selection import FineSelection
from repro.experiments.context import ExperimentContext
from repro.experiments.tables import TextTable

PROXY_SCORES = ("leep", "nce", "logme", "hscore", "knn")


def _prior_only_ranking(context: ExperimentContext, top_k: int) -> List[str]:
    """Rank checkpoints by average benchmark accuracy alone."""
    averages = context.matrix.average_accuracies()
    ordered = sorted(averages, key=averages.get, reverse=True)
    return ordered[:top_k]


def run(
    context: ExperimentContext,
    *,
    targets: Optional[Sequence[str]] = None,
    top_k: int = 10,
    proxies: Sequence[str] = PROXY_SCORES,
) -> List[Dict[str, object]]:
    """Recall quality and end-to-end accuracy per proxy score and target."""
    truth = context.target_ground_truth()
    config = FineSelectionConfig(total_epochs=context.offline_epochs)
    records: List[Dict[str, object]] = []
    target_names = list(targets) if targets else context.target_names
    for target in target_names:
        task = context.suite.task(target)
        accuracies = {name: curve.final_test for name, curve in truth[target].items()}
        best_model = max(accuracies, key=accuracies.get)
        arms: Dict[str, List[str]] = {}
        for proxy in proxies:
            recall = CoarseRecall(
                context.hub,
                context.matrix,
                context.clustering,
                config=RecallConfig(proxy_score=proxy, top_k=top_k),
            ).recall(task)
            arms[proxy] = recall.recalled_models
        arms["prior_only"] = _prior_only_ranking(context, top_k)
        for arm_name, recalled in arms.items():
            selection = FineSelection(
                context.hub, context.matrix, context.fine_tuner, config=config
            ).run(recalled, task)
            records.append(
                {
                    "modality": context.modality,
                    "target": target,
                    "proxy": arm_name,
                    "avg_recalled_acc": float(
                        np.mean([accuracies[name] for name in recalled])
                    ),
                    "best_model_recalled": best_model in recalled,
                    "selected_accuracy": selection.selected_accuracy,
                    "runtime_epochs": selection.runtime_epochs,
                }
            )
    return records


def summarize(records: List[Dict[str, object]]) -> Dict[str, Dict[str, float]]:
    """Per-proxy means across targets."""
    summary: Dict[str, Dict[str, float]] = {}
    proxies = sorted({record["proxy"] for record in records})
    for proxy in proxies:
        rows = [record for record in records if record["proxy"] == proxy]
        summary[proxy] = {
            "avg_recalled_acc": float(np.mean([r["avg_recalled_acc"] for r in rows])),
            "selected_accuracy": float(np.mean([r["selected_accuracy"] for r in rows])),
            "best_recall_rate": float(np.mean([r["best_model_recalled"] for r in rows])),
        }
    return summary


def render(records: List[Dict[str, object]]) -> str:
    """Render the proxy-score ablation."""
    table = TextTable(
        [
            "modality",
            "target",
            "proxy",
            "avg_recalled_acc",
            "best_model_recalled",
            "selected_accuracy",
            "runtime_epochs",
        ],
        title="Ablation: proxy-score choice in the coarse-recall phase",
    )
    for record in records:
        table.add_dict_row(record)
    lines = [table.render(), "", "Per-proxy means across targets:"]
    for proxy, stats in summarize(records).items():
        lines.append(
            f"  {proxy:10s} avg_recalled_acc={stats['avg_recalled_acc']:.3f} "
            f"selected_accuracy={stats['selected_accuracy']:.3f} "
            f"best_recall_rate={stats['best_recall_rate']:.2f}"
        )
    return "\n".join(lines)
