"""Table V — runtime (fine-tuning epochs) of BF, SH and FS.

Runtime is counted in total fine-tuning epochs exactly as in the paper:
brute force costs ``|M| * epochs``; successive halving and fine-selection
cost whatever epochs they actually spend.  Speedups are reported relative to
brute force for both the 10 coarse-recalled models and the full repository.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.config import FineSelectionConfig
from repro.core.selection import BruteForceSelection, FineSelection, SuccessiveHalving
from repro.experiments.context import ExperimentContext
from repro.experiments.tables import TextTable


def run(
    context: ExperimentContext,
    *,
    targets: Optional[Sequence[str]] = None,
    top_k: int = 10,
    include_full_repository: bool = True,
) -> List[Dict[str, object]]:
    """Runtime/speedup records per (target, pool, method)."""
    config = FineSelectionConfig(total_epochs=context.offline_epochs)
    records: List[Dict[str, object]] = []
    target_names = list(targets) if targets else context.target_names
    for target in target_names:
        task = context.suite.task(target)
        recalled = context.selector.recall_only(target, top_k=top_k).recalled_models
        pools: Dict[str, List[str]] = {"recalled": list(recalled)}
        if include_full_repository:
            pools["all"] = list(context.hub.model_names)
        for pool_name, pool in pools.items():
            brute_force_epochs = len(pool) * config.total_epochs
            sh = SuccessiveHalving(context.hub, context.fine_tuner, config=config).run(pool, task)
            fs = FineSelection(
                context.hub, context.matrix, context.fine_tuner, config=config
            ).run(pool, task)
            for method, runtime in (
                ("BF", float(brute_force_epochs)),
                ("SH", sh.runtime_epochs),
                ("FS", fs.runtime_epochs),
            ):
                records.append(
                    {
                        "modality": context.modality,
                        "target": target,
                        "pool": pool_name,
                        "num_models": len(pool),
                        "method": method,
                        "runtime_epochs": runtime,
                        "speedup_vs_bf": brute_force_epochs / runtime if runtime else float("inf"),
                    }
                )
    return records


def render(records: List[Dict[str, object]]) -> str:
    """Render Table V."""
    table = TextTable(
        [
            "modality",
            "target",
            "pool",
            "num_models",
            "method",
            "runtime_epochs",
            "speedup_vs_bf",
        ],
        title="Table V: model-selection runtime in fine-tuning epochs (speedup vs brute force)",
    )
    for record in records:
        table.add_dict_row(record)
    return table.render()
