"""Table I — clustering-method comparison.

Compares model clusterings built from the performance-based similarity
(Eq. 1) against the text-based model-card similarity, under hierarchical
clustering and k-means, for both modalities.

Cluster quality is measured with the silhouette coefficient evaluated on the
*performance-based* distance matrix for every arm.  Evaluating all arms on
the same behavioural geometry is what the comparison is about: a clustering
is good when models grouped together actually train similarly, regardless of
which signal (training performance or model-card text) produced the grouping.
Expected shape (as in the paper): performance-based similarity beats the text
baseline, and hierarchical clustering beats k-means on the performance-based
similarity.
"""

from __future__ import annotations

from typing import Dict, List

from repro.cluster.distance import similarity_to_distance
from repro.cluster.silhouette import silhouette_score
from repro.core.config import ClusteringConfig
from repro.core.model_clustering import ModelClusterer
from repro.core.similarity import performance_similarity_matrix
from repro.experiments.context import ExperimentContext
from repro.experiments.tables import TextTable


def _kmeans_clusters(num_models: int) -> int:
    """Cluster count for the k-means arm (about a quarter of the repository)."""
    return max(2, num_models // 4)


def run_single(context: ExperimentContext) -> List[Dict[str, object]]:
    """Silhouette of the four (similarity x algorithm) combinations for one modality."""
    matrix = context.matrix
    cards = context.hub.model_cards()
    # Shared evaluation geometry: Eq. 1 distances between the models'
    # benchmark-performance vectors.
    performance_distance = similarity_to_distance(
        performance_similarity_matrix(matrix, top_k=5)
    )
    records: List[Dict[str, object]] = []
    for similarity in ("performance", "text"):
        for method in ("hierarchical", "kmeans"):
            config = ClusteringConfig(
                method=method,
                similarity=similarity,
                num_clusters=_kmeans_clusters(len(matrix.model_names))
                if method == "kmeans"
                else None,
            )
            clustering = ModelClusterer(config).cluster(matrix, model_cards=cards)
            labels = clustering.assignment.labels
            if len(set(labels.tolist())) < 2 or len(set(labels.tolist())) >= len(labels):
                silhouette = float("nan")
            else:
                silhouette = silhouette_score(performance_distance, labels)
            records.append(
                {
                    "modality": context.modality,
                    "similarity": similarity,
                    "method": method,
                    "silhouette": silhouette,
                    "num_clusters": clustering.assignment.num_clusters,
                }
            )
    return records


def run(contexts: Dict[str, ExperimentContext]) -> List[Dict[str, object]]:
    """Run the comparison for every provided modality context."""
    records: List[Dict[str, object]] = []
    for context in contexts.values():
        records.extend(run_single(context))
    return records


def render(records: List[Dict[str, object]]) -> str:
    """Render Table I."""
    table = TextTable(
        ["similarity", "method", "modality", "silhouette", "num_clusters"],
        title=(
            "Table I: clustering methods comparison "
            "(silhouette on the performance-based distance)"
        ),
    )
    for record in records:
        table.add_dict_row(record)
    return table.render()
