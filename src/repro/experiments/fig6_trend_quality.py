"""Fig. 6 — quality of convergence-trend clustering.

Two comparisons per model, both computed from the first validation stage of
its benchmark learning curves:

* blue bars — silhouette of clustering the benchmark datasets by stage-1
  validation accuracy vs a random clustering of the same datasets;
* red bars — leave-one-out relative error of predicting a held-out dataset's
  final test accuracy from its matched trend's mean vs from the global mean
  of all final test accuracies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.distance import pairwise_distances
from repro.cluster.silhouette import silhouette_score
from repro.core.convergence import (
    ConvergenceTrendMiner,
    leave_one_out_prediction_error,
    random_trend_labels,
)
from repro.experiments.context import ExperimentContext
from repro.experiments.tables import TextTable


def _silhouette_of_labels(values: np.ndarray, labels: np.ndarray) -> float:
    if len(set(labels.tolist())) < 2:
        return 0.0
    distance = pairwise_distances(values.reshape(-1, 1))
    return silhouette_score(distance, labels)


def run(
    context: ExperimentContext,
    *,
    num_trends: int = 4,
    stage: int = 1,
    model_names: Optional[Sequence[str]] = None,
    num_random_repeats: int = 5,
) -> List[Dict[str, object]]:
    """Per-model trend-clustering quality metrics."""
    miner = ConvergenceTrendMiner(num_trends=num_trends)
    rng = np.random.default_rng(context.seed)
    names = list(model_names) if model_names else context.hub.model_names
    records: List[Dict[str, object]] = []
    for model_name in names:
        curves = context.matrix.curves_for_model(model_name)
        dataset_names = sorted(curves)
        values = np.array([curves[name].val_at(stage) for name in dataset_names])
        trend_set = miner.mine(model_name, curves, stage=stage)
        labels = np.array(
            [trend_set.trend_labels()[name] for name in dataset_names], dtype=int
        )
        validation_silhouette = _silhouette_of_labels(values, labels)
        random_silhouettes = []
        for _ in range(num_random_repeats):
            random_labels = random_trend_labels(dataset_names, len(trend_set.trends), rng)
            random_silhouettes.append(
                _silhouette_of_labels(
                    values, np.array([random_labels[name] for name in dataset_names])
                )
            )
        errors = leave_one_out_prediction_error(curves, miner, model_name, stage=stage)
        records.append(
            {
                "modality": context.modality,
                "model": model_name,
                "validation_silhouette": validation_silhouette,
                "random_silhouette": float(np.mean(random_silhouettes)),
                "trend_prediction_error": errors["trend_prediction_error"],
                "global_mean_error": errors["global_mean_error"],
            }
        )
    return records


def summarize(records: List[Dict[str, object]]) -> Dict[str, float]:
    """Aggregate means across models (the headline numbers of Fig. 6)."""
    def mean_of(key: str) -> float:
        return float(np.mean([record[key] for record in records]))

    return {
        "mean_validation_silhouette": mean_of("validation_silhouette"),
        "mean_random_silhouette": mean_of("random_silhouette"),
        "mean_trend_prediction_error": mean_of("trend_prediction_error"),
        "mean_global_mean_error": mean_of("global_mean_error"),
    }


def render(records: List[Dict[str, object]]) -> str:
    """Render the Fig. 6 per-model comparison plus the aggregate summary."""
    table = TextTable(
        [
            "model",
            "validation_silhouette",
            "random_silhouette",
            "trend_prediction_error",
            "global_mean_error",
        ],
        title="Fig. 6: convergence-trend clustering quality (first validation stage)",
    )
    for record in records:
        table.add_dict_row({**record, "model": str(record["model"]).split("/")[-1]})
    summary = summarize(records)
    summary_lines = [
        "",
        "Aggregate: "
        f"silhouette {summary['mean_validation_silhouette']:.3f} (validation) vs "
        f"{summary['mean_random_silhouette']:.3f} (random); "
        f"prediction error {summary['mean_trend_prediction_error']:.3f} (trend) vs "
        f"{summary['mean_global_mean_error']:.3f} (global mean)",
    ]
    return table.render() + "\n".join(summary_lines)
