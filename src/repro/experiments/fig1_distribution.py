"""Fig. 1 — accuracy distribution of every checkpoint on one NLP and one CV task.

The paper motivates the problem by fine-tuning 44 NLP models on MNLI and 25
CV models on the CC6204-Hackaton-CUB dataset and showing that only a small
fraction of the repository performs well.  Here we regenerate the same
series: the sorted ground-truth fine-tuning accuracies of every checkpoint
on the corresponding task.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.context import ExperimentContext
from repro.experiments.tables import TextTable

#: Task shown per modality (MNLI is a target task, CUB a CV benchmark task).
DEFAULT_TASKS = {"nlp": "mnli", "cv": "cc6204_hackaton_cub"}


def run(context: ExperimentContext, *, task_name: str | None = None) -> Dict[str, object]:
    """Return the sorted accuracy series of every model on the Fig. 1 task."""
    dataset = task_name or DEFAULT_TASKS[context.modality]
    if dataset in context.suite.target_names:
        accuracies = {
            model: curve.final_test
            for model, curve in context.target_ground_truth()[dataset].items()
        }
    else:
        matrix = context.matrix
        accuracies = {
            model: matrix.value(dataset, model) for model in matrix.model_names
        }
    ordered = sorted(accuracies.items(), key=lambda item: -item[1])
    return {
        "modality": context.modality,
        "dataset": dataset,
        "models": [name for name, _ in ordered],
        "accuracies": [acc for _, acc in ordered],
        "num_models": len(ordered),
        "best_accuracy": ordered[0][1],
        "worst_accuracy": ordered[-1][1],
        "accuracy_spread": ordered[0][1] - ordered[-1][1],
    }


def render(result: Dict[str, object]) -> str:
    """Render the Fig. 1 series as a text table (model id vs accuracy)."""
    table = TextTable(
        ["model_id", "model", "accuracy"],
        title=(
            f"Fig. 1 ({result['modality'].upper()}): fine-tuning accuracy of "
            f"{result['num_models']} models on {result['dataset']} (sorted desc)"
        ),
    )
    models: List[str] = result["models"]  # type: ignore[assignment]
    accuracies: List[float] = result["accuracies"]  # type: ignore[assignment]
    for index, (model, accuracy) in enumerate(zip(models, accuracies)):
        table.add_row([index, model, accuracy])
    return table.render()
