"""Table X (Appendix D) — sensitivity of Eq. 1 to the top-k parameter.

The Eq. 1 model similarity averages the ``k`` largest per-dataset accuracy
differences.  The paper sweeps k in {5, 10, 15} for NLP and {3, 4, 5} for CV
and reports the resulting silhouette coefficients, concluding the parameter
has limited influence and fixing k = 5.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.config import ClusteringConfig
from repro.core.model_clustering import ModelClusterer
from repro.experiments.context import ExperimentContext
from repro.experiments.tables import TextTable

DEFAULT_K_VALUES = {"nlp": (5, 10, 15), "cv": (3, 4, 5)}


def run(
    context: ExperimentContext,
    *,
    k_values: Optional[Sequence[int]] = None,
) -> List[Dict[str, object]]:
    """Silhouette of hierarchical clustering for each Eq. 1 top-k value."""
    values = tuple(k_values) if k_values else DEFAULT_K_VALUES[context.modality]
    records: List[Dict[str, object]] = []
    for k in values:
        config = ClusteringConfig(top_k=k)
        clustering = ModelClusterer(config).cluster(context.matrix)
        records.append(
            {
                "modality": context.modality,
                "k": k,
                "silhouette": clustering.silhouette
                if clustering.silhouette is not None
                else float("nan"),
                "num_clusters": clustering.assignment.num_clusters,
                "num_non_singleton": len(clustering.non_singleton_clusters()),
            }
        )
    return records


def render(records: List[Dict[str, object]]) -> str:
    """Render Table X."""
    table = TextTable(
        ["modality", "k", "silhouette", "num_clusters", "num_non_singleton"],
        title="Table X (appendix D): Eq. 1 top-k parameter sweep",
    )
    for record in records:
        table.add_dict_row(record)
    return table.render()
