"""Fig. 7 — selected-model accuracy: successive halving vs fine-selection.

For every target dataset, the paper compares the final accuracy of the model
selected by successive halving (SH) against the proposed fine-selection (FS)
when starting from (a) the 10 coarse-recalled models and (b) the whole
repository, and also reports the best and worst ground-truth accuracy among
the top-10 recalled models as reference bounds.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import FineSelectionConfig
from repro.core.selection import FineSelection, SuccessiveHalving
from repro.experiments.context import ExperimentContext
from repro.experiments.tables import TextTable


def run(
    context: ExperimentContext,
    *,
    targets: Optional[Sequence[str]] = None,
    top_k: int = 10,
    include_full_repository: bool = True,
) -> List[Dict[str, object]]:
    """SH vs FS selected accuracy per target, for top-K and full-repository pools."""
    truth = context.target_ground_truth()
    config = FineSelectionConfig(total_epochs=context.offline_epochs)
    records: List[Dict[str, object]] = []
    target_names = list(targets) if targets else context.target_names
    for target in target_names:
        task = context.suite.task(target)
        accuracies = {name: curve.final_test for name, curve in truth[target].items()}
        recalled = context.selector.recall_only(target, top_k=top_k).recalled_models
        pools = {f"top{len(recalled)}": recalled}
        if include_full_repository:
            pools[f"all{len(context.hub)}"] = context.hub.model_names
        top_accs = [accuracies[name] for name in recalled]
        for pool_name, pool in pools.items():
            sh = SuccessiveHalving(context.hub, context.fine_tuner, config=config).run(pool, task)
            fs = FineSelection(
                context.hub, context.matrix, context.fine_tuner, config=config
            ).run(pool, task)
            records.append(
                {
                    "modality": context.modality,
                    "target": target,
                    "pool": pool_name,
                    "num_models": len(pool),
                    "sh_accuracy": sh.selected_accuracy,
                    "fs_accuracy": fs.selected_accuracy,
                    "sh_model": sh.selected_model,
                    "fs_model": fs.selected_model,
                    "best_in_top10": float(np.max(top_accs)),
                    "worst_in_top10": float(np.min(top_accs)),
                }
            )
    return records


def render(records: List[Dict[str, object]]) -> str:
    """Render the Fig. 7 comparison."""
    table = TextTable(
        [
            "modality",
            "target",
            "pool",
            "num_models",
            "sh_accuracy",
            "fs_accuracy",
            "best_in_top10",
            "worst_in_top10",
        ],
        title="Fig. 7: selected-model accuracy, successive halving (SH) vs fine-selection (FS)",
    )
    for record in records:
        table.add_dict_row(record)
    return table.render()
