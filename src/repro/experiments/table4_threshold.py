"""Table IV — fine-selection filtering-threshold sweep.

The convergence-trend filter removes a model only when a better-validating
competitor's *predicted* final accuracy exceeds the model's own prediction by
more than a threshold.  The paper sweeps 0 / 1 / 5 / 10 % on two NLP targets
(MNLI, MultiRC) and two CV targets (Flowers, X-Ray): larger thresholds keep
borderline models alive longer (equal or better accuracy, more epochs).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.config import FineSelectionConfig
from repro.core.selection import FineSelection
from repro.experiments.context import ExperimentContext
from repro.experiments.tables import TextTable

DEFAULT_THRESHOLDS = (0.0, 0.01, 0.05, 0.10)
DEFAULT_TARGETS = {
    "nlp": ("mnli", "multirc"),
    "cv": ("oxford_flowers", "chest_xray_classification"),
}


def run(
    context: ExperimentContext,
    *,
    thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
    targets: Optional[Sequence[str]] = None,
    top_k: int = 10,
) -> List[Dict[str, object]]:
    """Accuracy and runtime of fine-selection under each threshold."""
    target_names = list(targets) if targets else list(DEFAULT_TARGETS[context.modality])
    records: List[Dict[str, object]] = []
    for target in target_names:
        task = context.suite.task(target)
        recalled = context.selector.recall_only(target, top_k=top_k).recalled_models
        for threshold in thresholds:
            config = FineSelectionConfig(
                total_epochs=context.offline_epochs, threshold=threshold
            )
            selector = FineSelection(
                context.hub, context.matrix, context.fine_tuner, config=config
            )
            result = selector.run(recalled, task)
            records.append(
                {
                    "modality": context.modality,
                    "target": target,
                    "threshold": f"{threshold:.0%}",
                    "accuracy": result.selected_accuracy,
                    "runtime_epochs": result.runtime_epochs,
                    "selected_model": result.selected_model,
                }
            )
    return records


def render(records: List[Dict[str, object]]) -> str:
    """Render Table IV."""
    table = TextTable(
        ["modality", "target", "threshold", "accuracy", "runtime_epochs", "selected_model"],
        title="Table IV: fine-selection accuracy/runtime under different filtering thresholds",
    )
    for record in records:
        table.add_dict_row(
            {**record, "selected_model": str(record["selected_model"]).split("/")[-1]}
        )
    return table.render()
