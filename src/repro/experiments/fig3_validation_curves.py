"""Fig. 3 / Fig. 8 — validation and test curves of the top-10 recalled models.

The paper plots, for the MNLI target, the per-epoch validation and test
accuracy of the ten models surviving the coarse-recall phase, under two
learning-rate settings (3e-5 in Fig. 3, 1e-5 in Fig. 8) to show that the
early-epoch ordering is predictive of the final ordering and robust to
hyper-parameters.  We reproduce the same series with our fine-tuning engine
and report, for each setting, the rank correlation between first-epoch
validation accuracy and final test accuracy.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.experiments.context import ExperimentContext
from repro.experiments.tables import TextTable
from repro.zoo.finetune import FineTuneConfig

#: Two hyper-parameter settings mirroring Fig. 3 (default) and Fig. 8 (low lr).
LEARNING_RATE_SETTINGS = {"default": 5e-2, "low": 1e-2}


def _spearman(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman rank correlation of two 1-d arrays."""
    ranks_a = np.argsort(np.argsort(a))
    ranks_b = np.argsort(np.argsort(b))
    if np.std(ranks_a) == 0 or np.std(ranks_b) == 0:
        return 0.0
    return float(np.corrcoef(ranks_a, ranks_b)[0, 1])


def run(
    context: ExperimentContext,
    *,
    target_name: str | None = None,
    top_k: int = 10,
) -> Dict[str, object]:
    """Fine-tune the top-K recalled models on the target under both settings."""
    target = target_name or ("mnli" if context.modality == "nlp" else "oxford_flowers")
    task = context.suite.task(target)
    recall = context.selector.recall_only(target, top_k=top_k)
    settings: Dict[str, Dict[str, object]] = {}
    for setting_name, learning_rate in LEARNING_RATE_SETTINGS.items():
        config = FineTuneConfig(
            epochs=context.offline_epochs, learning_rate=learning_rate
        )
        curves = {}
        for model_name in recall.recalled_models:
            model = context.hub.get(model_name)
            curves[model_name] = context.fine_tuner.fine_tune(
                model, task, config=config
            )
        first_val = np.array([curve.val_accuracy[0] for curve in curves.values()])
        final_test = np.array([curve.final_test for curve in curves.values()])
        settings[setting_name] = {
            "learning_rate": learning_rate,
            "curves": {
                name: {
                    "val_accuracy": list(curve.val_accuracy),
                    "test_accuracy": list(curve.test_accuracy),
                }
                for name, curve in curves.items()
            },
            "early_vs_final_spearman": _spearman(first_val, final_test),
        }
    return {
        "modality": context.modality,
        "target": target,
        "recalled_models": list(recall.recalled_models),
        "settings": settings,
    }


def render(result: Dict[str, object]) -> str:
    """Render the Fig. 3 / Fig. 8 curves as per-epoch tables."""
    lines: List[str] = []
    for setting_name, payload in result["settings"].items():  # type: ignore[union-attr]
        curves: Dict[str, Dict[str, List[float]]] = payload["curves"]
        num_epochs = max(len(c["val_accuracy"]) for c in curves.values())
        columns = ["model"] + [f"val@{e + 1}" for e in range(num_epochs)] + ["final_test"]
        table = TextTable(
            columns,
            title=(
                f"Fig. 3/8 ({result['modality'].upper()}, lr setting={setting_name}, "
                f"lr={payload['learning_rate']}): top-10 models on {result['target']} "
                f"(early-vs-final spearman={payload['early_vs_final_spearman']:.3f})"
            ),
        )
        for model, curve in curves.items():
            row: List[object] = [model.split("/")[-1]]
            row.extend(curve["val_accuracy"])
            row.extend(["-"] * (num_epochs - len(curve["val_accuracy"])))
            row.append(curve["test_accuracy"][-1])
            table.add_row(row)
        lines.append(table.render())
    return "\n\n".join(lines)
