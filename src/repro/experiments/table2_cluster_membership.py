"""Table II — non-singleton cluster membership.

Lists the members of every non-singleton cluster produced by hierarchical
clustering on the performance-based similarity, for the NLP and CV
repositories, together with the dominant architecture/fine-tuning family of
each cluster (the paper reads the same structure off the model names:
``bert_ft_qqp`` runs group together, MNLI fine-tunes group together, and so
on).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List

from repro.experiments.context import ExperimentContext
from repro.experiments.tables import TextTable


def run(context: ExperimentContext) -> List[Dict[str, object]]:
    """Return one record per non-singleton cluster."""
    clustering = context.clustering
    hub = context.hub
    records: List[Dict[str, object]] = []
    non_singleton = clustering.non_singleton_clusters()
    for order, (cluster_id, members) in enumerate(
        sorted(non_singleton.items(), key=lambda item: -len(item[1])), start=1
    ):
        families = Counter(hub.entry(name).family for name in members)
        architectures = Counter(hub.entry(name).architecture for name in members)
        records.append(
            {
                "modality": context.modality,
                "cluster": f"C{order}",
                "size": len(members),
                "dominant_family": families.most_common(1)[0][0],
                "family_purity": families.most_common(1)[0][1] / len(members),
                "dominant_architecture": architectures.most_common(1)[0][0],
                "representative": clustering.representative_of(cluster_id),
                "members": sorted(members),
            }
        )
    return records


def run_summary(context: ExperimentContext) -> Dict[str, object]:
    """Aggregate membership numbers (the paper's prose summary of Table II)."""
    clustering = context.clustering
    non_singleton = clustering.non_singleton_clusters()
    return {
        "modality": context.modality,
        "num_models": len(clustering.model_names),
        "num_non_singleton_clusters": len(non_singleton),
        "num_models_in_non_singleton": sum(len(m) for m in non_singleton.values()),
        "num_singleton_models": len(clustering.singleton_models()),
        "mean_family_purity": (
            sum(record["family_purity"] for record in run(context)) / max(len(non_singleton), 1)
        ),
    }


def render(records: List[Dict[str, object]]) -> str:
    """Render Table II (cluster listing with members)."""
    table = TextTable(
        ["modality", "cluster", "size", "dominant_family", "family_purity", "representative"],
        title="Table II: non-singleton model clusters (hierarchical, performance-based)",
    )
    lines: List[str] = []
    for record in records:
        table.add_dict_row(record)
    lines.append(table.render())
    for record in records:
        lines.append(
            f"{record['modality']} {record['cluster']}: " + ", ".join(record["members"])
        )
    return "\n".join(lines)
