"""Configuration objects of the two-phase selection framework.

Defaults follow the paper's experimental setup (Section V): hierarchical
clustering on the Eq. 1 performance similarity with top-k = 5 (Appendix D),
LEEP as the coarse-recall proxy with K = 10 recalled models and a 0.5
epoch-equivalent charge per proxy inference (Table VI), and a fine-tuning
budget of 5 epochs for NLP / 4 for CV with the Table IV trend-filter
threshold.  :class:`PipelineConfig.parallel` additionally selects the
executor backend for the online hot paths, and
:class:`SimilarityConfig` the offline memory policy (spill-to-disk
threshold and in-flight budget) — neither is part of the paper; see
``docs/parallelism.md`` and ``docs/scaling.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from repro.parallel.config import ParallelConfig
from repro.utils.exceptions import ConfigurationError


@dataclass(frozen=True)
class SimilarityConfig:
    """Memory policy of the offline similarity/distance computation.

    The Eq. 1 similarity of an ``n``-model repository is a dense ``(n, n)``
    float64 matrix (``8 n^2`` bytes).  For the paper's repositories
    (``n <= 40``) that is trivially small, but a checkpoint-hub-scale zoo
    (thousands of models) cannot hold the matrix — let alone its distance
    conversion and the clustering working copy — in RAM.  This config
    decides *where* those matrices live and how much memory the
    computation may hold in flight at once; the numbers are documented in
    ``docs/scaling.md``.

    Attributes
    ----------
    max_bytes_in_flight:
        Bound on one broadcast difference slab ``(rows, n, d)`` while
        streaming Eq. 1 row tiles.  Smaller values lower peak memory at the
        cost of more Python-loop iterations; results are bitwise-identical
        for any value.
    spill_threshold_bytes:
        Once the dense similarity matrix alone (``8 n^2`` bytes) would
        reach this size, the offline phase spills it (and the derived
        distance matrix) to memory-mapped files in the matrix store instead
        of RAM.  ``0`` forces out-of-core operation for any size (used by
        the equivalence tests); very large values effectively disable
        spilling.
    tile_rows:
        Rows per out-of-core work tile (one executor task writes one tile).
        ``None`` derives the largest tile whose broadcast slab fits
        ``max_bytes_in_flight``.
    store_dir:
        Directory of the memory-mapped matrix store.  ``None`` uses the
        process default (``REPRO_STORE_DIR`` or a per-process temporary
        directory; see :func:`repro.store.get_store`).
    parallel:
        Optional executor spec (``"backend[:workers]"`` or a
        :class:`~repro.parallel.ParallelConfig`) fanning out-of-core tile
        computation over :mod:`repro.parallel` workers.  All backends write
        identical tiles.
    """

    max_bytes_in_flight: int = 64 * 1024 * 1024
    spill_threshold_bytes: int = 128 * 1024 * 1024
    tile_rows: Optional[int] = None
    store_dir: Optional[str] = None
    parallel: Optional[Union[str, ParallelConfig]] = None

    def __post_init__(self) -> None:
        if self.max_bytes_in_flight < 4096:
            raise ConfigurationError("max_bytes_in_flight must be >= 4096 bytes")
        if self.spill_threshold_bytes < 0:
            raise ConfigurationError("spill_threshold_bytes must be >= 0")
        if self.tile_rows is not None and self.tile_rows < 1:
            raise ConfigurationError("tile_rows must be >= 1 when given")

    @staticmethod
    def dense_matrix_bytes(num_models: int) -> int:
        """Bytes of one dense float64 ``(n, n)`` matrix."""
        return 8 * num_models * num_models

    def should_spill(self, num_models: int) -> bool:
        """Whether an ``(n, n)`` similarity matrix goes out-of-core."""
        return self.dense_matrix_bytes(num_models) >= self.spill_threshold_bytes


@dataclass(frozen=True)
class ClusteringConfig:
    """Model-clustering settings (offline phase).

    Attributes
    ----------
    method:
        ``"hierarchical"`` (paper default) or ``"kmeans"``.
    algorithm:
        Hierarchical merge engine: ``"nnchain"`` (default) runs the
        nearest-neighbor-chain algorithm
        (:mod:`repro.cluster.nnchain` — O(n²) total, the scaling path),
        ``"scan"`` the original working-matrix scan
        (:class:`repro.cluster.hierarchical.AgglomerativeClustering`,
        kept as the exactness oracle).  Both produce identical merge
        sequences on tie-free inputs, and nnchain delegates tied inputs
        to the scan, so the choice is a performance knob, not a
        semantics knob.  Ignored by k-means.
    similarity:
        ``"performance"`` (Eq. 1) or ``"text"`` (model-card baseline).
    top_k:
        Number of largest per-dataset accuracy differences averaged by the
        Eq. 1 similarity (the paper's Appendix D parameter, k = 5).
    distance_threshold:
        Hierarchical clustering stops merging above this linkage distance;
        this is what yields a mix of non-singleton and singleton clusters.
        When left ``None`` the threshold is derived from the distance
        distribution via ``threshold_quantile``.
    threshold_quantile:
        Quantile of the off-diagonal pairwise distances used as the merge
        threshold when ``distance_threshold`` is not given explicitly.
    num_clusters:
        Alternative stopping rule (required for k-means).
    staleness_threshold:
        Incremental-update budget: the maximum fraction of models that may
        have been placed incrementally (added to the nearest cluster, or
        removed) since the last full clustering before
        :func:`repro.cluster.incremental.update_clustering` triggers a full
        re-cluster.  ``0.0`` re-clusters on every zoo change; ``1.0``
        effectively never does.  See ``docs/zoo-updates.md``.
    ann_placement:
        Opt-in ANN shortlist for incremental placement: when set, a model
        added by :func:`repro.cluster.incremental.update_clustering` is
        compared only against the clusters containing its
        ``ann_placement`` approximate nearest neighbors (IVF index over
        performance distances, :mod:`repro.ann`) instead of every
        cluster.  ``None`` (default) keeps the exact full scan —
        bitwise-identical to all previous releases.
    """

    method: str = "hierarchical"
    similarity: str = "performance"
    top_k: int = 5
    distance_threshold: Optional[float] = None
    threshold_quantile: float = 0.2
    num_clusters: Optional[int] = None
    linkage: str = "average"
    staleness_threshold: float = 0.25
    algorithm: str = "nnchain"
    ann_placement: Optional[int] = None

    def __post_init__(self) -> None:
        if self.method not in ("hierarchical", "kmeans"):
            raise ConfigurationError(f"unknown clustering method {self.method!r}")
        if self.algorithm not in ("nnchain", "scan"):
            raise ConfigurationError(
                f"unknown clustering algorithm {self.algorithm!r}"
            )
        if self.ann_placement is not None and self.ann_placement < 1:
            raise ConfigurationError("ann_placement must be >= 1 when given")
        if self.similarity not in ("performance", "text"):
            raise ConfigurationError(f"unknown similarity {self.similarity!r}")
        if self.top_k < 1:
            raise ConfigurationError("top_k must be >= 1")
        if self.method == "kmeans" and self.num_clusters is None:
            raise ConfigurationError("kmeans clustering requires num_clusters")
        if not 0.0 < self.threshold_quantile < 1.0:
            raise ConfigurationError("threshold_quantile must be in (0, 1)")
        if not 0.0 <= self.staleness_threshold <= 1.0:
            raise ConfigurationError("staleness_threshold must be in [0, 1]")


@dataclass(frozen=True)
class RecallConfig:
    """Coarse-recall settings (first online phase).

    Attributes
    ----------
    proxy_score:
        Registered proxy-scorer name (``"leep"`` in the paper).
    top_k:
        Number of models returned to the fine-selection phase (10 in the
        paper's end-to-end experiments).
    max_proxy_samples:
        Cap on target samples used when computing the proxy score.
    proxy_epoch_cost:
        Epoch-equivalent cost charged per proxy-score computation
        (0.5 in the paper: inference without back-propagation).
    cache_proxy_scores:
        Memoise proxy scores in the process artifact cache (opt-in).  When
        enabled, subsampling inside the scorer is seeded from the cache key
        so cached and fresh scores are interchangeable; see
        :class:`repro.metrics.registry.CachedScorer`.
    ann_shortlist:
        Opt-in ANN shortlist for non-representative scoring: when set, the
        Eq. 4 propagated score of a clustered non-representative model is
        computed over only its ``ann_shortlist`` most similar
        representatives (IVF index over performance similarity,
        :mod:`repro.ann`) instead of all representatives.  ``None``
        (default) keeps the exact all-representatives sum —
        bitwise-identical to all previous releases.
    """

    proxy_score: str = "leep"
    top_k: int = 10
    max_proxy_samples: Optional[int] = 256
    proxy_epoch_cost: float = 0.5
    cache_proxy_scores: bool = False
    ann_shortlist: Optional[int] = None

    def __post_init__(self) -> None:
        if self.top_k < 1:
            raise ConfigurationError("top_k must be >= 1")
        if self.ann_shortlist is not None and self.ann_shortlist < 1:
            raise ConfigurationError("ann_shortlist must be >= 1 when given")
        if self.max_proxy_samples is not None and self.max_proxy_samples < 1:
            raise ConfigurationError("max_proxy_samples must be >= 1 when given")
        if self.proxy_epoch_cost < 0:
            raise ConfigurationError("proxy_epoch_cost must be >= 0")


@dataclass(frozen=True)
class FineSelectionConfig:
    """Fine-selection settings (second online phase, Algorithm 1).

    Attributes
    ----------
    total_epochs:
        Full fine-tuning budget per model (5 for NLP, 4 for CV in the
        paper).
    validation_interval:
        Epochs trained between successive filtering stages (``s``).
    threshold:
        Minimum predicted-performance margin before a model with worse
        validation accuracy is filtered by the convergence-trend rule
        (Table IV sweeps 0 / 1 / 5 / 10 %).
    num_trends:
        Number of convergence-trend clusters mined per model.
    use_trend_filter:
        Disabling this turns Algorithm 1 back into plain successive halving
        (used by ablation benches).
    """

    total_epochs: int = 5
    validation_interval: int = 1
    threshold: float = 0.0
    num_trends: int = 4
    use_trend_filter: bool = True

    def __post_init__(self) -> None:
        if self.total_epochs < 1:
            raise ConfigurationError("total_epochs must be >= 1")
        if self.validation_interval < 1:
            raise ConfigurationError("validation_interval must be >= 1")
        if self.validation_interval > self.total_epochs:
            raise ConfigurationError(
                "validation_interval cannot exceed total_epochs"
            )
        if self.threshold < 0:
            raise ConfigurationError("threshold must be >= 0")
        if self.num_trends < 1:
            raise ConfigurationError("num_trends must be >= 1")


@dataclass(frozen=True)
class PipelineConfig:
    """End-to-end two-phase pipeline configuration.

    ``parallel`` selects the executor backend and worker count shared by
    the online hot paths (proxy scoring, stage training, batched per-task
    fan-out); the default is serial execution.  All backends return
    identical results — see ``docs/parallelism.md``.

    ``similarity`` sets the offline memory policy: once the dense Eq. 1
    matrix would cross :attr:`SimilarityConfig.spill_threshold_bytes`, the
    offline build/refresh runs out-of-core against the memory-mapped
    matrix store — bitwise-equal to the in-RAM path, with peak memory
    bounded by :attr:`SimilarityConfig.max_bytes_in_flight`.  See
    ``docs/scaling.md``.
    """

    clustering: ClusteringConfig = field(default_factory=ClusteringConfig)
    recall: RecallConfig = field(default_factory=RecallConfig)
    fine_selection: FineSelectionConfig = field(default_factory=FineSelectionConfig)
    offline_epochs: Optional[int] = None
    parallel: ParallelConfig = field(default_factory=ParallelConfig)
    similarity: SimilarityConfig = field(default_factory=SimilarityConfig)

    def __post_init__(self) -> None:
        if self.offline_epochs is not None and self.offline_epochs < 1:
            raise ConfigurationError("offline_epochs must be >= 1 when given")

    @classmethod
    def for_modality(cls, modality: str, **overrides) -> "PipelineConfig":
        """Paper defaults: 5 offline/online epochs for NLP, 4 for CV."""
        epochs = 5 if modality == "nlp" else 4
        fine_selection = overrides.pop(
            "fine_selection", FineSelectionConfig(total_epochs=epochs)
        )
        return cls(fine_selection=fine_selection, offline_epochs=epochs, **overrides)
