"""Convergence-trend mining (the paper's Eq. 5 and Eq. 6).

For a given checkpoint, the validation curves it produced on the benchmark
datasets fall into a small number of groups ("convergence trends", Fig. 4):
datasets on which the model converges fast to a high accuracy, datasets where
it plateaus low, and so on.  At fine-selection stage ``t`` the miner

1. clusters the benchmark datasets by the model's validation accuracy at
   stage ``t`` (:class:`TrendSet`);
2. matches the model's current validation accuracy on the *target* dataset to
   the nearest trend (Eq. 5);
3. predicts the final test accuracy as the matched trend's mean final test
   accuracy (Eq. 6).

The prediction lets Algorithm 1 filter more than half of the candidates at
early stages when their predicted ceiling is clearly below a competitor's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.cluster.kmeans import KMeans
from repro.utils.exceptions import DataError, SelectionError
from repro.zoo.finetune import LearningCurve


@dataclass(frozen=True)
class ConvergenceTrend:
    """One trend: mean validation accuracy at the stage and mean final test accuracy."""

    trend_id: int
    val_accuracy: float
    test_accuracy: float
    dataset_names: tuple

    @property
    def size(self) -> int:
        """Number of benchmark datasets forming the trend."""
        return len(self.dataset_names)


@dataclass
class TrendSet:
    """All convergence trends of one model at one validation stage."""

    model_name: str
    stage: int
    trends: List[ConvergenceTrend]

    def __post_init__(self) -> None:
        if not self.trends:
            raise DataError("a TrendSet requires at least one trend")

    def match(self, val_accuracy: float) -> ConvergenceTrend:
        """Eq. 5: the trend whose stage-``t`` validation accuracy is closest."""
        return min(self.trends, key=lambda trend: abs(trend.val_accuracy - val_accuracy))

    def predict(self, val_accuracy: float) -> float:
        """Eq. 6: predicted final test accuracy for a current validation accuracy."""
        return self.match(val_accuracy).test_accuracy

    def trend_labels(self) -> Dict[str, int]:
        """Dataset name -> trend id mapping."""
        labels: Dict[str, int] = {}
        for trend in self.trends:
            for name in trend.dataset_names:
                labels[name] = trend.trend_id
        return labels


class ConvergenceTrendMiner:
    """Mines convergence trends from a model's benchmark learning curves."""

    def __init__(self, *, num_trends: int = 4, seed: int = 0) -> None:
        if num_trends < 1:
            raise SelectionError("num_trends must be >= 1")
        self.num_trends = int(num_trends)
        self._seed = int(seed)

    # ------------------------------------------------------------------ #
    def mine(
        self,
        model_name: str,
        curves: Mapping[str, LearningCurve],
        *,
        stage: int,
        num_trends: Optional[int] = None,
    ) -> TrendSet:
        """Cluster ``curves`` (dataset -> curve) by validation accuracy at ``stage``.

        ``stage`` is 1-based: stage 1 corresponds to the first validation
        after ``validation_interval`` epochs.
        """
        if not curves:
            raise SelectionError(f"no benchmark curves available for {model_name!r}")
        if stage < 1:
            raise SelectionError("stage must be >= 1")
        dataset_names = sorted(curves.keys())
        val_values = np.array(
            [curves[name].val_at(stage) for name in dataset_names], dtype=float
        )
        final_tests = np.array(
            [curves[name].final_test for name in dataset_names], dtype=float
        )
        k = min(num_trends or self.num_trends, len(dataset_names))
        labels = self._cluster_values(val_values, k)
        trends: List[ConvergenceTrend] = []
        for trend_id in sorted(set(labels.tolist())):
            mask = labels == trend_id
            trends.append(
                ConvergenceTrend(
                    trend_id=int(trend_id),
                    val_accuracy=float(val_values[mask].mean()),
                    test_accuracy=float(final_tests[mask].mean()),
                    dataset_names=tuple(
                        name for name, keep in zip(dataset_names, mask) if keep
                    ),
                )
            )
        trends.sort(key=lambda trend: trend.val_accuracy)
        # Re-number trends by increasing validation accuracy for stable output.
        trends = [
            ConvergenceTrend(
                trend_id=index,
                val_accuracy=trend.val_accuracy,
                test_accuracy=trend.test_accuracy,
                dataset_names=trend.dataset_names,
            )
            for index, trend in enumerate(trends)
        ]
        return TrendSet(model_name=model_name, stage=stage, trends=trends)

    def _cluster_values(self, values: np.ndarray, k: int) -> np.ndarray:
        if k <= 1 or np.allclose(values, values[0]):
            return np.zeros(values.shape[0], dtype=int)
        kmeans = KMeans(k, rng=np.random.default_rng(self._seed), num_init=4)
        return kmeans.fit_predict(values.reshape(-1, 1))

    # ------------------------------------------------------------------ #
    def predict_final_accuracy(
        self,
        model_name: str,
        curves: Mapping[str, LearningCurve],
        current_val: float,
        *,
        stage: int,
    ) -> float:
        """Convenience wrapper: mine trends at ``stage`` and apply Eq. 5/6."""
        trend_set = self.mine(model_name, curves, stage=stage)
        return trend_set.predict(current_val)


def random_trend_labels(
    dataset_names: Sequence[str], num_trends: int, rng: np.random.Generator
) -> Dict[str, int]:
    """Random dataset->trend assignment (the Fig. 6 baseline)."""
    if num_trends < 1:
        raise SelectionError("num_trends must be >= 1")
    labels = rng.integers(0, num_trends, size=len(dataset_names))
    return {name: int(label) for name, label in zip(dataset_names, labels)}


def leave_one_out_prediction_error(
    curves: Mapping[str, LearningCurve],
    miner: ConvergenceTrendMiner,
    model_name: str,
    *,
    stage: int = 1,
) -> Dict[str, float]:
    """Fig. 6 (red bars): relative error of trend-based final-accuracy prediction.

    Every benchmark dataset is treated in turn as the "target": trends are
    mined from the remaining datasets, the held-out dataset's stage-``t``
    validation accuracy is matched, and the predicted final test accuracy is
    compared against the actual one.  Returns the mean relative error for the
    trend-based prediction and for the global-mean baseline.
    """
    names = sorted(curves.keys())
    if len(names) < 3:
        raise SelectionError("leave-one-out evaluation needs at least three datasets")
    trend_errors: List[float] = []
    mean_errors: List[float] = []
    for held_out in names:
        rest = {name: curve for name, curve in curves.items() if name != held_out}
        trend_set = miner.mine(model_name, rest, stage=stage)
        actual = curves[held_out].final_test
        if actual <= 0:
            continue
        predicted = trend_set.predict(curves[held_out].val_at(stage))
        global_mean = float(np.mean([curve.final_test for curve in rest.values()]))
        trend_errors.append(abs(predicted - actual) / actual)
        mean_errors.append(abs(global_mean - actual) / actual)
    return {
        "trend_prediction_error": float(np.mean(trend_errors)),
        "global_mean_error": float(np.mean(mean_errors)),
    }
