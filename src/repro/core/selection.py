"""Selection algorithms: brute force, successive halving, and fine-selection.

All three algorithms share the same contract: given a candidate model list
and a target task, fine-tune (subsets of) the candidates and return a
:class:`~repro.core.results.SelectionResult` whose ``runtime_epochs`` counts
every fine-tuning epoch spent — the cost unit of the paper's Tables V/VI.

* :class:`BruteForceSelection` fine-tunes every candidate for the full
  budget and keeps the best validation performer.
* :class:`SuccessiveHalving` trains every surviving candidate for one
  validation interval per stage and discards the worse half at each stage.
* :class:`FineSelection` (Algorithm 1) additionally predicts each survivor's
  final accuracy from its benchmark convergence trends and drops candidates
  whose predicted ceiling is below a better-validating competitor's by more
  than a threshold — allowing it to cut more than half per stage.

Each algorithm is a :class:`~repro.core.plan.StagePolicy` — the per-stage
filtering rule — and :meth:`run` drives a
:class:`~repro.core.plan.SelectionPlan` (the resumable state machine the
online phase decomposes into) to completion, stage by stage.  Within each
stage, the surviving candidates train independently (every session owns a
per-``(model, task)`` named random stream), so the stage's epoch training
fans out over an :class:`~repro.parallel.executor.Executor`; results are
collected in candidate order and all backends — serial, thread, process —
produce identical :class:`SelectionResult` records.  The same plan/policy
code also runs under :class:`~repro.sched.scheduler.EpochScheduler`, which
interleaves steps of many concurrent requests; a request's result is
bitwise-identical either way.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import FineSelectionConfig
from repro.core.convergence import ConvergenceTrendMiner
from repro.core.extrapolation import CurveExtrapolator, ExtrapolationConfig
from repro.core.performance import PerformanceMatrix
from repro.core.plan import SelectionPlan, SessionView, StagePolicy, TrainStep
from repro.core.results import SelectionResult, StageRecord
from repro.data.tasks import ClassificationTask
from repro.parallel.executor import Executor, get_executor
from repro.utils.exceptions import SelectionError
from repro.zoo.finetune import FineTuneSession, FineTuner
from repro.zoo.hub import ModelHub


class _SelectionBase(StagePolicy):
    """Shared plumbing: plan construction, session management, stage fan-out."""

    method = "base"

    def __init__(
        self,
        hub: ModelHub,
        fine_tuner: Optional[FineTuner] = None,
        *,
        config: Optional[FineSelectionConfig] = None,
        executor: Optional[Executor] = None,
    ) -> None:
        self.hub = hub
        self.fine_tuner = fine_tuner or FineTuner(seed=0)
        self.config = config or FineSelectionConfig()
        self._executor = get_executor(executor)

    # ------------------------------------------------------------------ #
    def _check_candidates(self, candidates: Sequence[str]) -> List[str]:
        names = list(candidates)
        if not names:
            raise SelectionError("candidate list must not be empty")
        unknown = [name for name in names if name not in self.hub]
        if unknown:
            raise SelectionError(f"unknown candidate model(s): {unknown[:3]}")
        return names

    def _fresh_view(self, name: str, task: ClassificationTask) -> SessionView:
        """A private (non-pooled) session view, as the serial path uses."""
        return SessionView(self.fine_tuner.start_session(self.hub.get(name), task))

    def build_plan(
        self, candidates: Sequence[str], task: ClassificationTask
    ) -> SelectionPlan:
        """The request's state machine over fresh per-request sessions."""
        names = self._check_candidates(candidates)
        return SelectionPlan(
            policy=self,
            task=task,
            candidates=names,
            view_factory=lambda name: self._fresh_view(name, task),
        )

    def run(self, candidates: Sequence[str], task: ClassificationTask) -> SelectionResult:
        """Select among ``candidates`` on ``task`` by driving a plan serially."""
        plan = self.build_plan(candidates, task)
        while not plan.done:
            self._run_stage(plan)
        return plan.result

    def _run_stage(self, plan: SelectionPlan) -> None:
        """Train one full stage of ``plan``, possibly in parallel.

        Sessions are independent (per-``(model, task)`` random streams), so
        the training order cannot influence the curves; results are
        reassigned in candidate order.  With the process backend the trained
        session objects are pickled back from the forked workers, which is
        what lets stage training cross process boundaries transparently.
        """
        steps = plan.claim_stage()

        def train_one(step: TrainStep) -> Tuple[TrainStep, FineTuneSession]:
            session = plan.views[step.model].session
            session.train_epochs(step.epochs)
            return step, session

        for step, session in self._executor.map(train_one, steps):
            plan.views[step.model].adopt(session, advance=step.epochs)
            plan.complete(step)


class BruteForceSelection(_SelectionBase):
    """Fine-tune every candidate for the full budget; keep the best validator."""

    method = "brute_force"

    def stage_schedule(self) -> List[int]:
        """A single stage spending the whole fine-tuning budget."""
        return [self.config.total_epochs]

    def filter_stage(
        self,
        stage_index: int,
        surviving: Sequence[str],
        validations: Dict[str, float],
        *,
        cohort_extra: int = 0,
    ) -> Tuple[List[str], StageRecord]:
        """Keep the best validator (earlier candidate wins ties)."""
        names = list(surviving)
        winner = max(names, key=lambda name: (validations[name], -names.index(name)))
        record = StageRecord(
            stage=stage_index,
            surviving_models=[winner],
            validation_accuracy=validations,
        )
        return [winner], record


class SuccessiveHalving(_SelectionBase):
    """Classic successive halving over fine-tuning epochs (the SH baseline)."""

    method = "successive_halving"

    def stage_schedule(self) -> List[int]:
        """One validation interval per stage across the full budget."""
        interval = self.config.validation_interval
        return [interval] * (self.config.total_epochs // interval)

    def filter_stage(
        self,
        stage_index: int,
        surviving: Sequence[str],
        validations: Dict[str, float],
        *,
        cohort_extra: int = 0,
    ) -> Tuple[List[str], StageRecord]:
        """Drop the worse half of the surviving candidates."""
        kept = list(surviving)
        removed: List[str] = []
        if len(kept) + cohort_extra > 1:
            keep = min(
                len(kept), max(1, (len(kept) + cohort_extra) // 2)
            )
            ordered = sorted(kept, key=lambda name: -validations[name])
            removed = ordered[keep:]
            kept = ordered[:keep]
        record = StageRecord(
            stage=stage_index,
            surviving_models=list(kept),
            validation_accuracy=validations,
            removed_by_halving=removed,
        )
        return kept, record


class FineSelection(_SelectionBase):
    """Algorithm 1: successive halving accelerated by convergence-trend prediction."""

    method = "fine_selection"

    def __init__(
        self,
        hub: ModelHub,
        matrix: PerformanceMatrix,
        fine_tuner: Optional[FineTuner] = None,
        *,
        config: Optional[FineSelectionConfig] = None,
        trend_miner: Optional[ConvergenceTrendMiner] = None,
        executor: Optional[Executor] = None,
        extrapolation: Optional[ExtrapolationConfig] = None,
    ) -> None:
        super().__init__(hub, fine_tuner, config=config, executor=executor)
        self.matrix = matrix
        self.trend_miner = trend_miner or ConvergenceTrendMiner(
            num_trends=self.config.num_trends
        )
        #: Speculative early-stopping config; ``None`` (or disabled) keeps
        #: the exact, paper-faithful path.  Mutable so the scheduler's
        #: per-request policy clone can override it without rebuilding the
        #: engine (mirrors the ``total_epochs`` budget override).
        self.extrapolation = extrapolation

    # ------------------------------------------------------------------ #
    def stage_schedule(self) -> List[int]:
        """One validation interval per stage across the full budget."""
        interval = self.config.validation_interval
        return [interval] * (self.config.total_epochs // interval)

    def filter_stage(
        self,
        stage_index: int,
        surviving: Sequence[str],
        validations: Dict[str, float],
        *,
        cohort_extra: int = 0,
    ) -> Tuple[List[str], StageRecord]:
        """Trend-filter then halve the stage's survivors (Algorithm 1)."""
        kept = list(surviving)
        predicted: Dict[str, float] = {}
        removed_by_trend: List[str] = []
        removed_by_halving: List[str] = []
        if len(kept) + cohort_extra > 1:
            stage_number = (stage_index + 1) * self.config.validation_interval
            if self.config.use_trend_filter:
                predicted = self._predict_final_accuracies(
                    kept, validations, stage_number
                )
                kept, removed_by_trend = self._trend_filter(
                    kept, validations, predicted
                )
            kept, removed_by_halving = self._halve(
                kept,
                validations,
                original_count=len(validations) + cohort_extra,
            )
        record = StageRecord(
            stage=stage_index,
            surviving_models=list(kept),
            validation_accuracy=validations,
            predicted_accuracy=predicted,
            removed_by_trend=removed_by_trend,
            removed_by_halving=removed_by_halving,
        )
        return kept, record

    # ------------------------------------------------------------------ #
    def prune_before_stage(
        self,
        stage_index: int,
        surviving: Sequence[str],
        views: Dict[str, SessionView],
        schedule: Sequence[int],
    ) -> Tuple[List[str], Dict[str, Dict[str, object]]]:
        """Retire arms whose extrapolated ceiling cannot beat the rung leader.

        Fires between stages, after the Algorithm 1 filter.  The current
        leader (best validator, earlier candidate breaking ties — the same
        rule every stage filter uses) is always kept; any other arm is
        pruned when its :class:`~repro.core.extrapolation.CurveBound` upper
        bound is *strictly below* the leader's trajectory — the max of its
        already-observed validation accuracy and its own Eq. 5/6 predicted
        final — i.e. even the optimistic reading of the arm's benchmark
        history cannot catch where the leader already is or is headed.
        Deterministic, so a journal replay re-derives the identical prune
        set.
        """
        config = self.extrapolation
        if config is None or not config.enabled or len(surviving) <= 1:
            return list(surviving), {}
        if stage_index < config.min_stages:
            return list(surviving), {}
        stage_epoch = sum(int(epochs) for epochs in schedule[:stage_index])
        if stage_epoch < 1:
            return list(surviving), {}
        budget = sum(int(epochs) for epochs in schedule)
        names = list(surviving)
        validations = {name: views[name].validation_accuracy() for name in names}
        leader = max(names, key=lambda name: (validations[name], -names.index(name)))
        extrapolator = self._extrapolator(config)
        leader_bound = extrapolator.bound(
            leader, validations[leader], stage_epoch=stage_epoch
        )
        bar = max(float(validations[leader]), leader_bound.predicted_final)
        kept: List[str] = []
        pruned: Dict[str, Dict[str, object]] = {}
        for name in names:
            if name == leader:
                kept.append(name)
                continue
            bound = extrapolator.bound(
                name, validations[name], stage_epoch=stage_epoch
            )
            if bound.upper_bound < bar:
                pruned[name] = {
                    "stage": int(stage_index),
                    "epoch": int(stage_epoch),
                    "observed_val": float(bound.observed_val),
                    "predicted_final": float(bound.predicted_final),
                    "upper_bound": float(bound.upper_bound),
                    "leader": leader,
                    "leader_val": float(validations[leader]),
                    "leader_predicted": float(bar),
                    "epochs_saved": int(budget - stage_epoch),
                }
            else:
                kept.append(name)
        return kept, pruned

    def _extrapolator(self, config: ExtrapolationConfig) -> CurveExtrapolator:
        """Per-config extrapolator, cached so shared plans rebuild nothing."""
        cached = getattr(self, "_extrapolator_cache", None)
        if cached is None or cached[0] is not config:
            cached = (config, CurveExtrapolator(self.matrix, config=config))
            self._extrapolator_cache = cached
        return cached[1]

    # ------------------------------------------------------------------ #
    def _predict_final_accuracies(
        self,
        surviving: Sequence[str],
        validations: Dict[str, float],
        stage_number: int,
    ) -> Dict[str, float]:
        """Eq. 5/6 prediction for every surviving candidate."""
        predictions: Dict[str, float] = {}
        for name in surviving:
            curves = self.matrix.curves_for_model(name)
            if not curves:
                # No offline convergence information (e.g. reduced matrix):
                # fall back to the current validation accuracy.
                predictions[name] = validations[name]
                continue
            trend_set = self.trend_miner.mine(name, curves, stage=stage_number)
            predictions[name] = trend_set.predict(validations[name])
        return predictions

    def _trend_filter(
        self,
        surviving: Sequence[str],
        validations: Dict[str, float],
        predicted: Dict[str, float],
    ) -> tuple[List[str], List[str]]:
        """Remove candidates dominated in both validation and predicted accuracy.

        Starting from the worst validator, a candidate is removed when some
        remaining candidate has strictly better validation accuracy *and* a
        predicted final accuracy that is better by more than the configured
        relative threshold.
        """
        threshold = self.config.threshold
        kept = list(surviving)
        removed: List[str] = []
        for name in sorted(surviving, key=lambda n: validations[n]):
            if len(kept) <= 1:
                break
            others = [other for other in kept if other != name]
            dominated = any(
                validations[other] > validations[name]
                and (predicted[other] - predicted[name]) > threshold * max(predicted[name], 1e-12)
                for other in others
            )
            if dominated:
                kept.remove(name)
                removed.append(name)
        return kept, removed

    @staticmethod
    def _halve(
        surviving: Sequence[str],
        validations: Dict[str, float],
        *,
        original_count: int,
    ) -> tuple[List[str], List[str]]:
        """Guarantee at least half of the stage's starting pool is dropped."""
        keep_limit = max(1, original_count // 2)
        ordered = sorted(surviving, key=lambda name: -validations[name])
        kept = ordered[:keep_limit]
        removed = ordered[keep_limit:]
        return kept, removed
