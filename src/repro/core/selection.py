"""Selection algorithms: brute force, successive halving, and fine-selection.

All three algorithms share the same contract: given a candidate model list
and a target task, fine-tune (subsets of) the candidates and return a
:class:`~repro.core.results.SelectionResult` whose ``runtime_epochs`` counts
every fine-tuning epoch spent — the cost unit of the paper's Tables V/VI.

* :class:`BruteForceSelection` fine-tunes every candidate for the full
  budget and keeps the best validation performer.
* :class:`SuccessiveHalving` trains every surviving candidate for one
  validation interval per stage and discards the worse half at each stage.
* :class:`FineSelection` (Algorithm 1) additionally predicts each survivor's
  final accuracy from its benchmark convergence trends and drops candidates
  whose predicted ceiling is below a better-validating competitor's by more
  than a threshold — allowing it to cut more than half per stage.

Within each stage, the surviving candidates train independently (every
session owns a per-``(model, task)`` named random stream), so the stage's
epoch training fans out over an :class:`~repro.parallel.executor.Executor`;
results are collected in candidate order and all backends — serial, thread,
process — produce identical :class:`SelectionResult` records.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import FineSelectionConfig
from repro.core.convergence import ConvergenceTrendMiner
from repro.core.performance import PerformanceMatrix
from repro.core.results import SelectionResult, StageRecord
from repro.data.tasks import ClassificationTask
from repro.parallel.executor import Executor, get_executor
from repro.utils.exceptions import SelectionError
from repro.zoo.finetune import FineTuneSession, FineTuner
from repro.zoo.hub import ModelHub


class _SelectionBase:
    """Shared plumbing: session management and epoch accounting."""

    method = "base"

    def __init__(
        self,
        hub: ModelHub,
        fine_tuner: Optional[FineTuner] = None,
        *,
        config: Optional[FineSelectionConfig] = None,
        executor: Optional[Executor] = None,
    ) -> None:
        self.hub = hub
        self.fine_tuner = fine_tuner or FineTuner(seed=0)
        self.config = config or FineSelectionConfig()
        self._executor = get_executor(executor)

    # ------------------------------------------------------------------ #
    def _check_candidates(self, candidates: Sequence[str]) -> List[str]:
        names = list(candidates)
        if not names:
            raise SelectionError("candidate list must not be empty")
        unknown = [name for name in names if name not in self.hub]
        if unknown:
            raise SelectionError(f"unknown candidate model(s): {unknown[:3]}")
        return names

    def run(self, candidates: Sequence[str], task: ClassificationTask) -> SelectionResult:
        """Select among ``candidates`` on ``task``; implemented by subclasses."""
        raise NotImplementedError

    def _start_sessions(
        self, candidates: Sequence[str], task: ClassificationTask
    ) -> Dict[str, FineTuneSession]:
        return {
            name: self.fine_tuner.start_session(self.hub.get(name), task)
            for name in candidates
        }

    def _train_stage(
        self,
        sessions: Dict[str, FineTuneSession],
        names: Sequence[str],
        epochs: int,
    ) -> int:
        """Advance every named session by ``epochs`` epochs, possibly in parallel.

        Sessions are independent (per-``(model, task)`` random streams), so
        the training order cannot influence the curves; results are
        reassigned in candidate order.  With the process backend the trained
        session objects are pickled back from the forked workers, which is
        what lets stage training cross process boundaries transparently.

        Returns the number of fine-tuning epochs spent.
        """
        ordered = list(names)

        def train_one(name: str) -> Tuple[str, FineTuneSession]:
            session = sessions[name]
            session.train_epochs(epochs)
            return name, session

        for name, session in self._executor.map(train_one, ordered):
            sessions[name] = session
        return epochs * len(ordered)

    @staticmethod
    def _result_from_sessions(
        *,
        method: str,
        task: ClassificationTask,
        sessions: Dict[str, FineTuneSession],
        winner: str,
        runtime_epochs: float,
        num_candidates: int,
        stages: List[StageRecord],
    ) -> SelectionResult:
        final_accuracies = {
            name: session.curve.final_test
            for name, session in sessions.items()
            if session.epochs_trained > 0
        }
        winner_session = sessions[winner]
        return SelectionResult(
            method=method,
            target_name=task.name,
            selected_model=winner,
            selected_accuracy=winner_session.curve.final_test,
            selected_val_accuracy=winner_session.curve.final_val,
            runtime_epochs=float(runtime_epochs),
            num_candidates=num_candidates,
            stages=stages,
            final_accuracies=final_accuracies,
        )


class BruteForceSelection(_SelectionBase):
    """Fine-tune every candidate for the full budget; keep the best validator."""

    method = "brute_force"

    def run(self, candidates: Sequence[str], task: ClassificationTask) -> SelectionResult:
        """Select among ``candidates`` on ``task`` by exhaustive fine-tuning."""
        names = self._check_candidates(candidates)
        sessions = self._start_sessions(names, task)
        total_epochs = self.config.total_epochs
        runtime = self._train_stage(sessions, names, total_epochs)
        validations = {name: sessions[name].curve.final_val for name in names}
        winner = max(names, key=lambda name: (validations[name], -names.index(name)))
        stage = StageRecord(
            stage=0,
            surviving_models=[winner],
            validation_accuracy=validations,
        )
        return self._result_from_sessions(
            method=self.method,
            task=task,
            sessions=sessions,
            winner=winner,
            runtime_epochs=runtime,
            num_candidates=len(names),
            stages=[stage],
        )


class SuccessiveHalving(_SelectionBase):
    """Classic successive halving over fine-tuning epochs (the SH baseline)."""

    method = "successive_halving"

    def run(self, candidates: Sequence[str], task: ClassificationTask) -> SelectionResult:
        """Select among ``candidates`` on ``task`` by successive halving."""
        names = self._check_candidates(candidates)
        sessions = self._start_sessions(names, task)
        interval = self.config.validation_interval
        num_stages = self.config.total_epochs // interval
        surviving = list(names)
        runtime = 0
        stages: List[StageRecord] = []
        for stage_index in range(num_stages):
            runtime += self._train_stage(sessions, surviving, interval)
            validations = {
                name: sessions[name].validation_accuracy() for name in surviving
            }
            removed: List[str] = []
            if len(surviving) > 1:
                keep = max(1, len(surviving) // 2)
                ordered = sorted(surviving, key=lambda name: -validations[name])
                removed = ordered[keep:]
                surviving = ordered[:keep]
            stages.append(
                StageRecord(
                    stage=stage_index,
                    surviving_models=list(surviving),
                    validation_accuracy=validations,
                    removed_by_halving=removed,
                )
            )
        winner = surviving[0]
        return self._result_from_sessions(
            method=self.method,
            task=task,
            sessions=sessions,
            winner=winner,
            runtime_epochs=runtime,
            num_candidates=len(names),
            stages=stages,
        )


class FineSelection(_SelectionBase):
    """Algorithm 1: successive halving accelerated by convergence-trend prediction."""

    method = "fine_selection"

    def __init__(
        self,
        hub: ModelHub,
        matrix: PerformanceMatrix,
        fine_tuner: Optional[FineTuner] = None,
        *,
        config: Optional[FineSelectionConfig] = None,
        trend_miner: Optional[ConvergenceTrendMiner] = None,
        executor: Optional[Executor] = None,
    ) -> None:
        super().__init__(hub, fine_tuner, config=config, executor=executor)
        self.matrix = matrix
        self.trend_miner = trend_miner or ConvergenceTrendMiner(
            num_trends=self.config.num_trends
        )

    # ------------------------------------------------------------------ #
    def run(self, candidates: Sequence[str], task: ClassificationTask) -> SelectionResult:
        """Select among ``candidates`` on ``task`` with Algorithm 1."""
        names = self._check_candidates(candidates)
        sessions = self._start_sessions(names, task)
        interval = self.config.validation_interval
        num_stages = self.config.total_epochs // interval
        surviving = list(names)
        runtime = 0
        stages: List[StageRecord] = []
        for stage_index in range(num_stages):
            runtime += self._train_stage(sessions, surviving, interval)
            validations = {
                name: sessions[name].validation_accuracy() for name in surviving
            }
            predicted: Dict[str, float] = {}
            removed_by_trend: List[str] = []
            removed_by_halving: List[str] = []
            if len(surviving) > 1:
                stage_number = (stage_index + 1) * interval
                if self.config.use_trend_filter:
                    predicted = self._predict_final_accuracies(
                        surviving, validations, stage_number
                    )
                    surviving, removed_by_trend = self._trend_filter(
                        surviving, validations, predicted
                    )
                surviving, removed_by_halving = self._halve(
                    surviving, validations, original_count=len(validations)
                )
            stages.append(
                StageRecord(
                    stage=stage_index,
                    surviving_models=list(surviving),
                    validation_accuracy=validations,
                    predicted_accuracy=predicted,
                    removed_by_trend=removed_by_trend,
                    removed_by_halving=removed_by_halving,
                )
            )
        winner = surviving[0]
        return self._result_from_sessions(
            method=self.method,
            task=task,
            sessions=sessions,
            winner=winner,
            runtime_epochs=runtime,
            num_candidates=len(names),
            stages=stages,
        )

    # ------------------------------------------------------------------ #
    def _predict_final_accuracies(
        self,
        surviving: Sequence[str],
        validations: Dict[str, float],
        stage_number: int,
    ) -> Dict[str, float]:
        """Eq. 5/6 prediction for every surviving candidate."""
        predictions: Dict[str, float] = {}
        for name in surviving:
            curves = self.matrix.curves_for_model(name)
            if not curves:
                # No offline convergence information (e.g. reduced matrix):
                # fall back to the current validation accuracy.
                predictions[name] = validations[name]
                continue
            trend_set = self.trend_miner.mine(name, curves, stage=stage_number)
            predictions[name] = trend_set.predict(validations[name])
        return predictions

    def _trend_filter(
        self,
        surviving: Sequence[str],
        validations: Dict[str, float],
        predicted: Dict[str, float],
    ) -> tuple[List[str], List[str]]:
        """Remove candidates dominated in both validation and predicted accuracy.

        Starting from the worst validator, a candidate is removed when some
        remaining candidate has strictly better validation accuracy *and* a
        predicted final accuracy that is better by more than the configured
        relative threshold.
        """
        threshold = self.config.threshold
        kept = list(surviving)
        removed: List[str] = []
        for name in sorted(surviving, key=lambda n: validations[n]):
            if len(kept) <= 1:
                break
            others = [other for other in kept if other != name]
            dominated = any(
                validations[other] > validations[name]
                and (predicted[other] - predicted[name]) > threshold * max(predicted[name], 1e-12)
                for other in others
            )
            if dominated:
                kept.remove(name)
                removed.append(name)
        return kept, removed

    @staticmethod
    def _halve(
        surviving: Sequence[str],
        validations: Dict[str, float],
        *,
        original_count: int,
    ) -> tuple[List[str], List[str]]:
        """Guarantee at least half of the stage's starting pool is dropped."""
        keep_limit = max(1, original_count // 2)
        ordered = sorted(surviving, key=lambda name: -validations[name])
        kept = ordered[:keep_limit]
        removed = ordered[keep_limit:]
        return kept, removed
