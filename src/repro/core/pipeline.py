"""End-to-end two-phase selector.

:class:`OfflineArtifacts` packages everything the online phases need and is
built once per model repository (the paper's offline phase): the performance
matrix and the model clustering.  :class:`TwoPhaseSelector` then answers
``select(target_task)`` queries by running coarse-recall followed by
fine-selection, returning a :class:`~repro.core.results.TwoPhaseResult` whose
cost accounting matches the paper's Table VI (proxy inference charged at half
an epoch per scored cluster plus the fine-tuning epochs actually spent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Union

from repro.core.batch import (
    BatchedSelectionRunner,
    BatchSelectionReport,
    build_phase_engines,
    resolve_target_task,
)
from repro.core.config import PipelineConfig
from repro.core.model_clustering import ModelClusterer, ModelClustering
from repro.core.performance import PerformanceMatrix, build_performance_matrix
from repro.core.results import TwoPhaseResult
from repro.data.tasks import ClassificationTask
from repro.data.workloads import WorkloadSuite
from repro.zoo.finetune import FineTuner
from repro.zoo.hub import ModelHub


@dataclass
class OfflineArtifacts:
    """Offline products shared by every online query against one repository."""

    hub: ModelHub
    suite: WorkloadSuite
    matrix: PerformanceMatrix
    clustering: ModelClustering
    config: PipelineConfig

    @classmethod
    def build(
        cls,
        hub: ModelHub,
        suite: Optional[WorkloadSuite] = None,
        *,
        config: Optional[PipelineConfig] = None,
        fine_tuner: Optional[FineTuner] = None,
    ) -> "OfflineArtifacts":
        """Run the offline phase: performance matrix + model clustering."""
        suite = suite or hub.suite
        config = config or PipelineConfig.for_modality(hub.modality)
        matrix = build_performance_matrix(
            hub,
            suite,
            fine_tuner=fine_tuner,
            epochs=config.offline_epochs,
        )
        clusterer = ModelClusterer(config.clustering)
        clustering = clusterer.cluster(matrix, model_cards=hub.model_cards())
        return cls(hub=hub, suite=suite, matrix=matrix, clustering=clustering, config=config)


class TwoPhaseSelector:
    """The paper's complete coarse-recall + fine-selection pipeline."""

    def __init__(
        self,
        artifacts: OfflineArtifacts,
        *,
        fine_tuner: Optional[FineTuner] = None,
        seed: int = 0,
        parallel=None,
    ) -> None:
        self.artifacts = artifacts
        self.fine_tuner = fine_tuner or FineTuner(seed=seed)
        self._parallel = parallel
        self._recall, self._fine_selection = build_phase_engines(
            artifacts, self.fine_tuner, parallel=parallel
        )

    # ------------------------------------------------------------------ #
    @classmethod
    def from_hub(
        cls,
        hub: ModelHub,
        suite: Optional[WorkloadSuite] = None,
        *,
        config: Optional[PipelineConfig] = None,
        fine_tuner: Optional[FineTuner] = None,
        seed: int = 0,
        parallel=None,
    ) -> "TwoPhaseSelector":
        """Build the offline artifacts and wrap them in a selector.

        ``parallel`` (an executor, :class:`~repro.parallel.ParallelConfig`
        or ``"backend[:workers]"`` spec) overrides the configuration's
        executor for the online hot paths.
        """
        artifacts = OfflineArtifacts.build(hub, suite, config=config, fine_tuner=fine_tuner)
        return cls(artifacts, fine_tuner=fine_tuner, seed=seed, parallel=parallel)

    # ------------------------------------------------------------------ #
    def _resolve_task(self, target: Union[str, ClassificationTask]) -> ClassificationTask:
        return resolve_target_task(self.artifacts.suite, target)

    def select(
        self,
        target: Union[str, ClassificationTask],
        *,
        top_k: Optional[int] = None,
    ) -> TwoPhaseResult:
        """Select the best checkpoint for ``target`` with the two-phase method."""
        task = self._resolve_task(target)
        recall_result = self._recall.recall(task, top_k=top_k)
        selection_result = self._fine_selection.run(recall_result.recalled_models, task)
        selection_result.extra_epoch_cost = recall_result.epoch_cost
        return TwoPhaseResult(
            target_name=task.name,
            recall=recall_result,
            selection=selection_result,
        )

    def select_many(
        self,
        targets: Sequence[Union[str, ClassificationTask]],
        *,
        top_k: Optional[int] = None,
    ) -> BatchSelectionReport:
        """Select checkpoints for a batch of targets off the shared clustering.

        Delegates to :class:`~repro.core.batch.BatchedSelectionRunner`
        borrowing this selector's offline artifacts, fine-tuner and online
        engines, so neither the offline phase nor the engine construction is
        repeated per target.
        """
        runner = BatchedSelectionRunner(
            self.artifacts,
            fine_tuner=self.fine_tuner,
            recall=self._recall,
            fine_selection=self._fine_selection,
            parallel=self._parallel,
        )
        return runner.run(targets, top_k=top_k)

    def recall_only(
        self, target: Union[str, ClassificationTask], *, top_k: Optional[int] = None
    ):
        """Run only the coarse-recall phase (used by Fig. 5 and Table VII)."""
        return self._recall.recall(self._resolve_task(target), top_k=top_k)

    def cluster_summary(self) -> Dict[str, float]:
        """Summary statistics of the offline model clustering."""
        return self.artifacts.clustering.summary()
