"""End-to-end two-phase selector.

:class:`OfflineArtifacts` packages everything the online phases need and is
built once per model-repository *version* (the paper's offline phase): the
performance matrix and the model clustering.  Past the
:class:`~repro.core.config.SimilarityConfig` spill threshold the build runs
out-of-core — similarity and distance live as memory-mapped files in the
:mod:`repro.store` matrix store, bitwise-equal to the in-RAM path (see
``docs/scaling.md``).  :class:`TwoPhaseSelector` then answers
``select(target_task)`` queries by running coarse-recall followed by
fine-selection, returning a :class:`~repro.core.results.TwoPhaseResult` whose
cost accounting matches the paper's Table VI (proxy inference charged at half
an epoch per scored cluster plus the fine-tuning epochs actually spent).

The repository underneath the artifacts is *mutable*:
:meth:`OfflineArtifacts.refresh` derives the artifacts of the next zoo
version (checkpoints added and/or removed) incrementally — fine-tuning only
the new models, updating only the changed rows of the similarity matrix and
patching the clustering in place (with a staleness-bounded fallback to a
full re-cluster) — instead of recomputing the whole offline phase.  See
``docs/zoo-updates.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.cache import (
    CacheLike,
    distance_key,
    fingerprint_matrix,
    resolve_cache,
    similarity_key,
)
from repro.cluster.distance import distance_memmap_for, similarity_to_distance
from repro.cluster.incremental import update_clustering
from repro.core.batch import (
    BatchedSelectionRunner,
    BatchSelectionReport,
    build_phase_engines,
    resolve_target_task,
)
from repro.core.config import PipelineConfig
from repro.core.model_clustering import ModelClusterer, ModelClustering
from repro.core.performance import (
    PerformanceMatrix,
    build_performance_matrix,
    update_performance_matrix,
)
from repro.core.results import TwoPhaseResult
from repro.core.similarity import (
    update_similarity_matrix,
    update_similarity_matrix_ooc,
)
from repro.data.tasks import ClassificationTask
from repro.data.workloads import WorkloadSuite
from repro.utils.exceptions import ConfigurationError
from repro.zoo.catalog import ModelCatalogEntry
from repro.zoo.finetune import FineTuner
from repro.zoo.hub import ModelHub, ZooVersion


def evict_spilled_artifacts(similarity_config, fragment: str) -> int:
    """Purge spilled (memory-mapped) artifacts matching ``fragment``.

    The matrix-store counterpart of ``ArtifactCache.evict_matching`` in the
    zoo-refresh invalidation sweep.  Touches only a store that already
    exists — evicting never *creates* a store directory as a side effect.
    Readers still holding a purged memmap keep a valid mapping (POSIX
    unlink semantics); only new opens miss.
    """
    from pathlib import Path

    from repro.store import MatrixStore, peek_store

    if similarity_config is not None and similarity_config.store_dir is not None:
        if not Path(similarity_config.store_dir).is_dir():
            return 0  # nothing was ever spilled there; don't mkdir it
        store = MatrixStore(similarity_config.store_dir)
    else:
        store = peek_store()
    return store.evict_matching(fragment) if store is not None else 0


@dataclass
class RefreshResult:
    """Outcome of one incremental :meth:`OfflineArtifacts.refresh`.

    Attributes
    ----------
    artifacts:
        The artifacts of the new zoo version (the old ones stay intact).
    old_version / new_version:
        Zoo versions before and after the update.
    added / removed:
        Checkpoint names that entered / left the repository.
    reclustered:
        Whether the staleness threshold forced a full re-cluster.
    staleness:
        Stale-model fraction of the new clustering (0.0 after a re-cluster).
    evicted_entries:
        Superseded-version artifacts purged on eviction: in-memory cache
        entries plus spilled matrix-store files.
    """

    artifacts: "OfflineArtifacts"
    old_version: ZooVersion
    new_version: ZooVersion
    added: List[str]
    removed: List[str]
    reclustered: bool
    staleness: float
    evicted_entries: int = 0

    def summary(self) -> Dict[str, object]:
        """JSON-friendly snapshot used by the CLI and service stats."""
        return {
            "old_version": self.old_version.key,
            "new_version": self.new_version.key,
            "added": list(self.added),
            "removed": list(self.removed),
            "num_models": len(self.artifacts.hub),
            "reclustered": self.reclustered,
            "staleness": self.staleness,
            "evicted_entries": self.evicted_entries,
        }


@dataclass
class OfflineArtifacts:
    """Offline products shared by every online query against one repository."""

    hub: ModelHub
    suite: WorkloadSuite
    matrix: PerformanceMatrix
    clustering: ModelClustering
    config: PipelineConfig
    version: Optional[ZooVersion] = None
    fine_tuner: Optional[FineTuner] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.version is None:
            self.version = self.hub.version

    @classmethod
    def build(
        cls,
        hub: ModelHub,
        suite: Optional[WorkloadSuite] = None,
        *,
        config: Optional[PipelineConfig] = None,
        fine_tuner: Optional[FineTuner] = None,
        cache: CacheLike = None,
    ) -> "OfflineArtifacts":
        """Run the offline phase: performance matrix + model clustering."""
        suite = suite or hub.suite
        config = config or PipelineConfig.for_modality(hub.modality)
        matrix = build_performance_matrix(
            hub,
            suite,
            fine_tuner=fine_tuner,
            epochs=config.offline_epochs,
        )
        clusterer = ModelClusterer(config.clustering)
        clustering = clusterer.cluster(
            matrix,
            model_cards=hub.model_cards(),
            cache=cache,
            similarity_config=getattr(config, "similarity", None),
        )
        return cls(
            hub=hub,
            suite=suite,
            matrix=matrix,
            clustering=clustering,
            config=config,
            version=hub.version,
            fine_tuner=fine_tuner,
        )

    def refresh(
        self,
        *,
        added: Iterable[Union[str, ModelCatalogEntry]] = (),
        removed: Iterable[str] = (),
        fine_tuner: Optional[FineTuner] = None,
        cache: CacheLike = None,
        evict_superseded: bool = True,
    ) -> RefreshResult:
        """Incrementally derive the artifacts of the next zoo version.

        Fine-tunes only the ``added`` checkpoints (surviving performance
        columns are copied), updates only the changed rows of the Eq. 1
        similarity matrix, and patches the clustering in place — falling
        back to a full re-cluster when the accumulated staleness exceeds
        ``config.clustering.staleness_threshold``.  The incremental matrix
        and similarity are provably bitwise-equal to their from-scratch
        counterparts; the clustering carries structural guarantees relative
        to the previous epoch plus the staleness budget (see
        :mod:`repro.cluster.incremental`), all enforced by the property
        suite.

        The new artifacts land in the artifact cache under the same keys a
        cold rebuild would use, and entries of the superseded version are
        evicted rather than left to age out.  ``self`` is not mutated, so a
        service can keep serving the old epoch until it swaps — a caller
        that keeps the old epoch live during the swap should pass
        ``evict_superseded=False`` and purge after the cut-over (as
        :meth:`repro.service.SelectionService.refresh` does), otherwise
        in-flight old-epoch requests can repopulate the purged entries.

        ``fine_tuner`` defaults to the tuner recorded at build time: added
        models must train under the *offline* tuner, not an online one, for
        the incremental result to match a from-scratch rebuild bitwise.
        """
        added = list(added)
        removed = list(removed)
        if not added and not removed:
            raise ConfigurationError("refresh requires at least one added or removed model")
        tuner = fine_tuner or self.fine_tuner
        old_version = self.hub.version
        new_hub = self.hub.with_changes(added=added, removed=removed)
        new_matrix = update_performance_matrix(
            self.matrix, new_hub, self.suite, fine_tuner=tuner
        )
        old_names = set(self.hub.model_names)
        new_names = set(new_hub.model_names)
        added_names = [name for name in new_hub.model_names if name not in old_names]
        removed_names = [name for name in self.hub.model_names if name not in new_names]

        clustering_config = self.config.clustering
        similarity_config = getattr(self.config, "similarity", None)
        if clustering_config.similarity == "performance":
            spill = similarity_config is not None and similarity_config.should_spill(
                len(new_hub.model_names)
            )
            if spill:
                # Out-of-core refresh: surviving tiles are copied and added
                # rows computed straight into the memory-mapped store under
                # the new epoch's canonical keys — still bitwise-equal to
                # the from-scratch oracle.
                new_similarity = update_similarity_matrix_ooc(
                    self.matrix,
                    self.clustering.similarity,
                    new_matrix,
                    top_k=clustering_config.top_k,
                    config=similarity_config,
                    cache=cache,
                )
                new_distance = distance_memmap_for(
                    new_matrix,
                    new_similarity,
                    top_k=clustering_config.top_k,
                    config=similarity_config,
                )
            else:
                new_similarity = update_similarity_matrix(
                    self.matrix,
                    self.clustering.similarity,
                    new_matrix,
                    top_k=clustering_config.top_k,
                    cache=cache,
                )
                new_distance = similarity_to_distance(new_similarity)
            update = update_clustering(
                self.clustering,
                new_matrix,
                new_similarity,
                config=clustering_config,
                distance=new_distance,
                similarity_config=similarity_config,
            )
            new_clustering = update.clustering
            reclustered, staleness = update.reclustered, update.staleness
            store = resolve_cache(cache)
            if store is not None and not spill:
                # Warm the distance entry under its canonical key too, so a
                # later cache-backed clustering of the new matrix resolves
                # with lookups only.  (Spilled matrices already live in the
                # matrix store under that key; copying them into the LRU
                # would defeat the memory budget.)
                sim_key = similarity_key(
                    new_matrix, method="performance", top_k=clustering_config.top_k
                )
                store.put(distance_key(sim_key), new_distance)
        else:
            # The text baseline keys on model-card content, which changes
            # with the catalogue — no incremental path, rebuild the
            # clustering outright.
            clusterer = ModelClusterer(clustering_config)
            new_clustering = clusterer.cluster(
                new_matrix, model_cards=new_hub.model_cards(), cache=cache
            )
            reclustered, staleness = True, 0.0

        evicted = 0
        if evict_superseded:
            store = resolve_cache(cache)
            if store is not None:
                evicted = store.evict_matching(fingerprint_matrix(self.matrix))
            evicted += evict_spilled_artifacts(
                similarity_config, fingerprint_matrix(self.matrix)
            )

        artifacts = OfflineArtifacts(
            hub=new_hub,
            suite=self.suite,
            matrix=new_matrix,
            clustering=new_clustering,
            config=self.config,
            version=new_hub.version,
            fine_tuner=tuner,
        )
        return RefreshResult(
            artifacts=artifacts,
            old_version=old_version,
            new_version=new_hub.version,
            added=added_names,
            removed=removed_names,
            reclustered=reclustered,
            staleness=staleness,
            evicted_entries=evicted,
        )


class TwoPhaseSelector:
    """The paper's complete coarse-recall + fine-selection pipeline."""

    def __init__(
        self,
        artifacts: OfflineArtifacts,
        *,
        fine_tuner: Optional[FineTuner] = None,
        seed: int = 0,
        parallel=None,
    ) -> None:
        self.artifacts = artifacts
        self.fine_tuner = fine_tuner or FineTuner(seed=seed)
        self._parallel = parallel
        self._recall, self._fine_selection = build_phase_engines(
            artifacts, self.fine_tuner, parallel=parallel
        )

    # ------------------------------------------------------------------ #
    @classmethod
    def from_hub(
        cls,
        hub: ModelHub,
        suite: Optional[WorkloadSuite] = None,
        *,
        config: Optional[PipelineConfig] = None,
        fine_tuner: Optional[FineTuner] = None,
        seed: int = 0,
        parallel=None,
    ) -> "TwoPhaseSelector":
        """Build the offline artifacts and wrap them in a selector.

        ``parallel`` (an executor, :class:`~repro.parallel.ParallelConfig`
        or ``"backend[:workers]"`` spec) overrides the configuration's
        executor for the online hot paths.
        """
        artifacts = OfflineArtifacts.build(hub, suite, config=config, fine_tuner=fine_tuner)
        return cls(artifacts, fine_tuner=fine_tuner, seed=seed, parallel=parallel)

    # ------------------------------------------------------------------ #
    def _resolve_task(self, target: Union[str, ClassificationTask]) -> ClassificationTask:
        return resolve_target_task(self.artifacts.suite, target)

    def select(
        self,
        target: Union[str, ClassificationTask],
        *,
        top_k: Optional[int] = None,
    ) -> TwoPhaseResult:
        """Select the best checkpoint for ``target`` with the two-phase method."""
        task = self._resolve_task(target)
        recall_result = self._recall.recall(task, top_k=top_k)
        selection_result = self._fine_selection.run(recall_result.recalled_models, task)
        selection_result.extra_epoch_cost = recall_result.epoch_cost
        return TwoPhaseResult(
            target_name=task.name,
            recall=recall_result,
            selection=selection_result,
        )

    def select_many(
        self,
        targets: Sequence[Union[str, ClassificationTask]],
        *,
        top_k: Optional[int] = None,
    ) -> BatchSelectionReport:
        """Select checkpoints for a batch of targets off the shared clustering.

        Delegates to :class:`~repro.core.batch.BatchedSelectionRunner`
        borrowing this selector's offline artifacts, fine-tuner and online
        engines, so neither the offline phase nor the engine construction is
        repeated per target.
        """
        runner = BatchedSelectionRunner(
            self.artifacts,
            fine_tuner=self.fine_tuner,
            recall=self._recall,
            fine_selection=self._fine_selection,
            parallel=self._parallel,
        )
        return runner.run(targets, top_k=top_k)

    def recall_only(
        self, target: Union[str, ClassificationTask], *, top_k: Optional[int] = None
    ):
        """Run only the coarse-recall phase (used by Fig. 5 and Table VII)."""
        return self._recall.recall(self._resolve_task(target), top_k=top_k)

    def cluster_summary(self) -> Dict[str, float]:
        """Summary statistics of the offline model clustering."""
        return self.artifacts.clustering.summary()
