"""Resumable state machine for one online selection request.

The paper's online phase — coarse recall followed by Algorithm 1's staged
halving — historically ran as one blocking loop inside each selection
algorithm.  :class:`SelectionPlan` decomposes that loop into an explicit
state machine whose unit of work is a single :class:`TrainStep` — "advance
model *m* by one validation interval for this request".  A driver claims
steps, trains the corresponding sessions (in any order, on any executor)
and reports completions; the plan advances a stage only once every step of
that stage has completed, applying the algorithm's filtering rule through
its :class:`StagePolicy`.

Two drivers exist:

* the selection algorithms in :mod:`repro.core.selection` drive a plan to
  completion stage by stage (the serial path — behaviourally identical to
  the pre-plan blocking loop);
* :class:`repro.sched.scheduler.EpochScheduler` interleaves the steps of
  *many* plans over a shared epoch budget, which is what lets concurrent
  selection requests share fine-tuning work.

Both produce bitwise-identical :class:`~repro.core.results.SelectionResult`
records because every stochastic quantity lives in the per-``(model, task)``
named random streams of the fine-tuning sessions, and the plan reads every
validation/test accuracy from the session's recorded learning curve at the
*request's own* epoch position (:class:`SessionView`) — never from the
mutable head state, which a shared session may have trained further.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.results import RecallResult, SelectionResult, StageRecord, TwoPhaseResult
from repro.data.tasks import ClassificationTask
from repro.persist.hooks import fire_crash_point
from repro.utils.exceptions import SelectionError
from repro.zoo.finetune import FineTuneSession


class SessionView:
    """One request's view on a (possibly shared) fine-tuning session.

    ``position`` is the number of epochs *this request* has trained the
    session through; the underlying session may be further along when
    another request shares it.  All accuracy reads index the recorded
    learning curve at ``position``, so a view is unaffected by later
    training — the property that makes session sharing bitwise-safe.
    """

    def __init__(self, session: FineTuneSession) -> None:
        self.session = session
        self.position = 0

    @property
    def curve(self):
        """Learning curve of the underlying session."""
        return self.session.curve

    def adopt(self, session: FineTuneSession, *, advance: int) -> None:
        """Advance the view by ``advance`` epochs over ``session``.

        ``session`` is the trained session object — the same object for
        in-process training, or the pickled copy returned by a process
        worker (mirroring how stage training crossed process boundaries
        before the plan refactor).
        """
        self.session = session
        self.position += int(advance)
        if self.session.epochs_trained < self.position:
            raise SelectionError(
                f"session for {session.curve.model_name!r} trained to epoch "
                f"{session.epochs_trained}, view requires {self.position}"
            )

    def _at_position(self, series: List[float]) -> float:
        if self.position < 1:
            raise SelectionError("view has not trained any epochs yet")
        return series[self.position - 1]

    def validation_accuracy(self) -> float:
        """Validation accuracy at the view's epoch position."""
        return self._at_position(self.curve.val_accuracy)

    def test_accuracy(self) -> float:
        """Test accuracy at the view's epoch position."""
        return self._at_position(self.curve.test_accuracy)


@dataclass(frozen=True)
class TrainStep:
    """Unit of schedulable work: advance one model by ``epochs`` epochs.

    Steps are request-scoped — the same ``(model, stage)`` pair of two
    concurrent requests is two distinct steps, even when both resolve to
    one shared pooled session underneath.
    """

    model: str
    epochs: int
    stage: int


class StagePolicy:
    """Filtering rule a :class:`SelectionPlan` applies between stages.

    Implemented by the selection algorithms in
    :mod:`repro.core.selection`: brute force (single full-budget stage,
    winner by final validation), successive halving and Algorithm 1's
    trend-filtered halving.  Policies are stateless with respect to any
    single request, so one policy instance can serve many concurrent
    plans.
    """

    method = "base"

    def stage_schedule(self) -> List[int]:
        """Epochs trained per stage, e.g. ``[1, 1, 1, 1, 1]`` or ``[5]``."""
        raise NotImplementedError

    def filter_stage(
        self,
        stage_index: int,
        surviving: Sequence[str],
        validations: Dict[str, float],
        *,
        cohort_extra: int = 0,
    ) -> Tuple[List[str], StageRecord]:
        """Apply the algorithm's stage filter; return survivors + record.

        ``cohort_extra`` is the number of speculatively pruned arms that
        would still occupy (bottom-ranked) slots of this stage's cohort in
        an exact run.  Halving-style policies must fold it into their
        keep-limit arithmetic so pruning an arm can never change the fate
        of the arms that were *kept* — it is always 0 in exact mode, and
        the plan only passes it when nonzero.
        """
        raise NotImplementedError

    def prune_before_stage(
        self,
        stage_index: int,
        surviving: Sequence[str],
        views: Dict[str, "SessionView"],
        schedule: Sequence[int],
    ) -> Tuple[List[str], Dict[str, Dict[str, object]]]:
        """Speculative early stopping before ``stage_index`` opens.

        Returns the arms to keep plus a JSON-friendly prune record per
        retired arm.  The default is a no-op — only
        :class:`~repro.core.selection.FineSelection` with an enabled
        :class:`~repro.core.extrapolation.ExtrapolationConfig` overrides
        it, so every other policy (and exact mode) is untouched.
        """
        return list(surviving), {}


class SelectionPlan:
    """Explicit, resumable state machine of one selection request.

    States: optional coarse **recall** (when built from a target rather
    than a candidate list), then one **train/filter** cycle per stage of
    the policy's schedule, then **done** (``result`` is set).  Between
    those transitions the plan is inert data — it never blocks, so a
    scheduler can hold hundreds of plans and advance whichever has
    runnable steps.

    Parameters
    ----------
    policy:
        The :class:`StagePolicy` applying the per-stage filtering rule.
    task:
        Target task of the request.
    view_factory:
        Maps a candidate model name to the :class:`SessionView` the plan
        trains and reads — fresh sessions for the serial path, pooled
        views for the scheduler.
    candidates:
        Candidate model names (skips the recall state).
    recall:
        Recall engine with a ``recall(task, top_k=...)`` method; used when
        ``candidates`` is not given.
    top_k:
        Forwarded to the recall engine.
    recall_result:
        A recall outcome computed elsewhere (e.g. batched with other
        requests' recalls by the scheduler); requires ``candidates`` and
        makes :meth:`two_phase_result` available as if the plan had run
        the recall itself.
    """

    def __init__(
        self,
        *,
        policy: StagePolicy,
        task: ClassificationTask,
        view_factory: Callable[[str], SessionView],
        candidates: Optional[Sequence[str]] = None,
        recall=None,
        top_k: Optional[int] = None,
        recall_result: Optional[RecallResult] = None,
    ) -> None:
        self._policy = policy
        self.task = task
        self._view_factory = view_factory
        self._recall = recall
        self._top_k = top_k
        self._stage_epochs = list(policy.stage_schedule())
        if not self._stage_epochs:
            raise SelectionError("stage schedule must not be empty")
        if recall_result is not None and candidates is None:
            raise SelectionError(
                "a precomputed recall_result requires explicit candidates"
            )
        self.recall_result = recall_result
        self.stage_index = 0
        self.runtime_epochs = 0.0
        self.stages: List[StageRecord] = []
        #: Arms retired by the speculative pruning hook, in decision order
        #: (insertion-ordered): model name -> JSON-friendly prune record.
        #: Always empty in exact mode.
        self.pruned: Dict[str, Dict[str, object]] = {}
        self.result: Optional[SelectionResult] = None
        self.views: Dict[str, SessionView] = {}
        self.candidates: List[str] = []
        self.surviving: List[str] = []
        self._unclaimed: List[TrainStep] = []
        self._inflight: set = set()
        self._stage_open = False
        if candidates is None:
            if recall is None:
                raise SelectionError("plan needs either candidates or a recall engine")
        else:
            self._init_candidates(candidates)

    # ------------------------------------------------------------------ #
    # state inspection
    # ------------------------------------------------------------------ #
    @property
    def needs_recall(self) -> bool:
        """Whether the plan is still in the coarse-recall state."""
        return not self.candidates

    @property
    def done(self) -> bool:
        """Whether the request has finished (``result`` is available)."""
        return self.result is not None

    @property
    def num_stages(self) -> int:
        """Total stages of the policy's schedule."""
        return len(self._stage_epochs)

    @property
    def stage_schedule(self) -> List[int]:
        """Epochs trained per stage (a copy of the policy's schedule).

        Journals record this with every request and result so a later
        budget raise — which reuses the same plan key — can tell which
        journaled steps belong to which schedule.
        """
        return list(self._stage_epochs)

    # ------------------------------------------------------------------ #
    # recall state
    # ------------------------------------------------------------------ #
    def run_recall(self) -> RecallResult:
        """Execute the coarse-recall phase and enter the first train stage."""
        if not self.needs_recall:
            raise SelectionError("plan has already recalled its candidates")
        self.recall_result = self._recall.recall(self.task, top_k=self._top_k)
        self._init_candidates(self.recall_result.recalled_models)
        return self.recall_result

    def _init_candidates(self, candidates: Sequence[str]) -> None:
        names = list(candidates)
        if not names:
            raise SelectionError("candidate list must not be empty")
        self.candidates = names
        self.surviving = list(names)
        # Candidate order fixes the iteration (and result-dict) order
        # everywhere downstream, exactly like the pre-plan session dict.
        self.views = {name: self._view_factory(name) for name in names}

    # ------------------------------------------------------------------ #
    # train/filter cycle
    # ------------------------------------------------------------------ #
    def _open_stage(self) -> None:
        if self._stage_open or self.done or self.needs_recall:
            return
        interval = self._stage_epochs[self.stage_index]
        self._unclaimed = [
            TrainStep(model=name, epochs=interval, stage=self.stage_index)
            for name in self.surviving
        ]
        self._inflight = set()
        self._stage_open = True

    def claim_next(self) -> Optional[TrainStep]:
        """Hand out one runnable step of the current stage (or ``None``)."""
        self._open_stage()
        if not self._unclaimed:
            return None
        step = self._unclaimed.pop(0)
        self._inflight.add(step)
        return step

    def claim_stage(self) -> List[TrainStep]:
        """Hand out every remaining step of the current stage at once."""
        self._open_stage()
        steps, self._unclaimed = self._unclaimed, []
        self._inflight.update(steps)
        return steps

    def claim_step(self, model: str) -> Optional[TrainStep]:
        """Claim the current stage's step for one specific model (or ``None``).

        The journal-replay path uses this to complete exactly the steps a
        previous process recorded, in journal order, regardless of where
        they sat in the unclaimed queue.
        """
        self._open_stage()
        for index, step in enumerate(self._unclaimed):
            if step.model == model:
                del self._unclaimed[index]
                self._inflight.add(step)
                return step
        return None

    def release(self, step: TrainStep) -> None:
        """Return a claimed-but-unexecuted step (e.g. on request failure)."""
        if step in self._inflight:
            self._inflight.discard(step)
            self._unclaimed.insert(0, step)

    def complete(self, step: TrainStep) -> None:
        """Record that ``step``'s training ran; advance when the stage is done."""
        if step not in self._inflight:
            raise SelectionError(f"completing a step that was never claimed: {step}")
        fire_crash_point("plan.step", model=step.model, stage=step.stage)
        self._inflight.discard(step)
        if not self._unclaimed and not self._inflight:
            self._advance_stage()

    def _advance_stage(self) -> None:
        interval = self._stage_epochs[self.stage_index]
        self.runtime_epochs += interval * len(self.surviving)
        validations = {
            name: self.views[name].validation_accuracy() for name in self.surviving
        }
        extra = self._cohort_extra(len(validations))
        if extra:
            self.surviving, record = self._policy.filter_stage(
                self.stage_index, self.surviving, validations,
                cohort_extra=extra,
            )
        else:
            self.surviving, record = self._policy.filter_stage(
                self.stage_index, self.surviving, validations
            )
        self.stages.append(record)
        self.stage_index += 1
        self._stage_open = False
        if self.stage_index >= len(self._stage_epochs):
            self._finalize()
            return
        self._prune_speculative()

    def _cohort_extra(self, live_count: int) -> int:
        """Bottom-ranked slots the pruned arms would still hold in exact mode.

        An exact halving run over ``N`` candidates enters stage ``s`` with
        at most ``max(1, N >> s)`` arms (iterated floor-halving), and every
        pruned arm ranks below the bar that retired it — so the exact
        cohort is bounded by ``min(N >> s, live + pruned)`` with the pruned
        arms filling the trailing slots.  Passing that surplus into
        :meth:`StagePolicy.filter_stage` keeps the keep-limit cadence of
        the exact run, so speculation can only ever retire the arms it
        explicitly pruned — never change which *kept* arms survive a
        filter.  Zero (exact behaviour) whenever nothing was pruned.
        """
        if not self.pruned:
            return 0
        ideal = max(1, len(self.candidates) >> self.stage_index)
        exact_cohort = min(ideal, live_count + len(self.pruned))
        return max(0, exact_cohort - live_count)

    def _prune_speculative(self) -> None:
        """Apply the policy's pre-stage pruning hook (no-op in exact mode).

        Runs after the stage filter, before the next stage opens, so a
        pruned arm never generates another :class:`TrainStep` — which is
        exactly why ``runtime_epochs`` (charged per stage for the arms
        that trained it) stays honest without any accounting change.
        The decision is a pure function of the recorded curves, so a
        crash/resume replay re-derives the identical prune set; the
        ``plan.prune`` crash point marks the decision boundary for the
        fault-injection harness.
        """
        if len(self.surviving) <= 1:
            return
        kept, pruned = self._policy.prune_before_stage(
            self.stage_index, self.surviving, self.views, self._stage_epochs
        )
        if not pruned:
            return
        fire_crash_point(
            "plan.prune", stage=self.stage_index, models=sorted(pruned)
        )
        self.surviving = kept
        self.pruned.update(pruned)

    def _finalize(self) -> None:
        winner = self.surviving[0]
        final_accuracies = {
            name: view.test_accuracy()
            for name, view in self.views.items()
            if view.position > 0
        }
        result = SelectionResult(
            method=self._policy.method,
            target_name=self.task.name,
            selected_model=winner,
            selected_accuracy=self.views[winner].test_accuracy(),
            selected_val_accuracy=self.views[winner].validation_accuracy(),
            runtime_epochs=float(self.runtime_epochs),
            num_candidates=len(self.candidates),
            stages=self.stages,
            final_accuracies=final_accuracies,
            extras=self._extrapolation_extras(winner),
        )
        if self.recall_result is not None:
            result.extra_epoch_cost = self.recall_result.epoch_cost
        self.result = result

    def _extrapolation_extras(self, winner: str) -> Dict[str, object]:
        """Budget-honesty report of the speculative prunes (``{}`` when exact).

        Per pruned arm: the observed/predicted accuracies behind the
        decision, plus — when the shared underlying session happens to
        have trained the arm to the full budget anyway (another request
        kept going) — the ``actual_final`` accuracy it would have reached
        and the realised ``actual_regret`` against the winner.  The
        request-level ``regret_bound`` is the guarantee the bounds gave at
        decision time: no pruned arm's ceiling exceeded the winner's final
        validation accuracy by more than this.  ``epochs_saved`` sums the
        full-budget epochs the pruned arms can no longer be charged — an
        upper bound on realised savings, since halving might have retired
        some of them earlier anyway.
        """
        if not self.pruned:
            return {}
        winner_val = self.views[winner].validation_accuracy()
        budget = sum(self._stage_epochs)
        pruned_payload: Dict[str, object] = {}
        regret_bound = 0.0
        for name, record in self.pruned.items():
            entry = dict(record)
            curve = self.views[name].curve
            if len(curve.val_accuracy) >= budget:
                actual = float(curve.val_accuracy[budget - 1])
                entry["actual_final"] = actual
                entry["actual_regret"] = max(0.0, actual - winner_val)
            regret_bound = max(
                regret_bound, float(record["upper_bound"]) - winner_val
            )
            pruned_payload[name] = entry
        return {
            "extrapolation": {
                "pruned": pruned_payload,
                "epochs_saved": float(
                    sum(float(r["epochs_saved"]) for r in self.pruned.values())
                ),
                "regret_bound": max(0.0, regret_bound),
            }
        }

    # ------------------------------------------------------------------ #
    # results
    # ------------------------------------------------------------------ #
    def two_phase_result(self) -> TwoPhaseResult:
        """Assemble the :class:`TwoPhaseResult` of a recall-started plan."""
        if not self.done:
            raise SelectionError("plan has not finished yet")
        if self.recall_result is None:
            raise SelectionError("plan was built from explicit candidates; "
                                 "it has no recall phase to report")
        return TwoPhaseResult(
            target_name=self.task.name,
            recall=self.recall_result,
            selection=self.result,
        )

    def best_so_far(self) -> Dict[str, object]:
        """Anytime answer: the current best candidates, confidence-ordered.

        Usable in every state — during recall it reports no candidates;
        after completion it agrees with the final result.  Candidates are
        ranked survivors-first, then by epochs trained (deeper evidence
        first), then by validation accuracy at the request's own position,
        with the deterministic candidate order breaking exact ties — the
        same tie-breaking the stage filters use.  ``confidence`` is the
        fraction of the request's total epoch budget already spent on the
        leading candidate.
        """
        budget = sum(self._stage_epochs)
        ranked = []
        for order, name in enumerate(self.candidates):
            view = self.views[name]
            if view.position < 1:
                continue
            ranked.append(
                (
                    name not in self.surviving,  # survivors sort first
                    -view.position,
                    -view.validation_accuracy(),
                    order,
                    name,
                )
            )
        ranked.sort()
        candidates = [
            {
                "model": name,
                "surviving": not eliminated,
                "epochs_trained": -neg_position,
                "val_accuracy": -neg_val,
                "confidence": (-neg_position) / budget if budget else 0.0,
            }
            for eliminated, neg_position, neg_val, _order, name in ranked
        ]
        best = candidates[0] if candidates else None
        return {
            "phase": (
                "recall" if self.needs_recall
                else "done" if self.done
                else f"stage {self.stage_index}"
            ),
            "final": self.done,
            "best": best,
            "candidates": candidates,
        }

    def progress(self) -> Dict[str, object]:
        """JSON-friendly snapshot of the plan's state (for ``poll``)."""
        return {
            "phase": (
                "recall" if self.needs_recall
                else "done" if self.done
                else f"stage {self.stage_index}"
            ),
            "stage": self.stage_index,
            "num_stages": self.num_stages,
            "surviving": list(self.surviving),
            "pruned": list(self.pruned),
            "runtime_epochs": self.runtime_epochs,
            "stages_completed": [
                {
                    "stage": record.stage,
                    "surviving": list(record.surviving_models),
                    "removed_by_trend": list(record.removed_by_trend),
                    "removed_by_halving": list(record.removed_by_halving),
                }
                for record in self.stages
            ],
        }
