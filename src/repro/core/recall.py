"""Coarse-recall phase (Section III of the paper).

Given the offline model clustering and performance matrix, the coarse-recall
phase scores the *representative model* of every non-singleton cluster on the
target dataset with a lightweight proxy score (LEEP by default) and combines
it with each model's prior average benchmark accuracy:

* Eq. 2/3 — models in non-singleton clusters inherit their cluster
  representative's proxy score:
  ``recall(T|m_j) = acc(m_j) * proxy(T|m(c(m_j)))``
* Eq. 4 — models in singleton clusters receive a propagated score, averaging
  the representatives' proxy scores weighted by the Eq. 1 similarity between
  the singleton model and each representative.

The top-K models by recall score move on to the fine-selection phase.

Proxy scoring is embarrassingly parallel across cluster representatives, so
:class:`CoarseRecall` accepts an :class:`~repro.parallel.executor.Executor`
and fans the per-representative scores out over it.  Scores are
order-independent by construction (subsampling is seeded from the proxy
cache key, never from a shared stream — see
:class:`repro.metrics.registry.CachedScorer`), so the serial, thread and
process backends return identical :class:`RecallResult` records.

At hub scale the Eq. 4 propagation itself becomes a full scan: every
propagated model sums over *all* representatives.
:attr:`~repro.core.config.RecallConfig.ann_shortlist` optionally restricts
that sum to the model's nearest representatives in performance space (IVF
index, :mod:`repro.ann`); the default ``None`` keeps the exact
all-representatives sum bitwise-unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import RecallConfig
from repro.core.model_clustering import ModelClustering
from repro.core.performance import PerformanceMatrix
from repro.core.results import RecallResult
from repro.data.tasks import ClassificationTask
from repro.metrics.normalization import min_max_normalize
from repro.metrics.registry import get_scorer
from repro.parallel.executor import Executor, get_executor
from repro.utils.exceptions import SelectionError
from repro.utils.rng import as_generator
from repro.zoo.hub import ModelHub


class CoarseRecall:
    """Recall a small set of promising checkpoints for a target task."""

    def __init__(
        self,
        hub: ModelHub,
        matrix: PerformanceMatrix,
        clustering: ModelClustering,
        *,
        config: Optional[RecallConfig] = None,
        rng=None,
        executor: Optional[Executor] = None,
    ) -> None:
        missing = [name for name in hub.model_names if name not in matrix.model_names]
        if missing:
            raise SelectionError(
                f"performance matrix does not cover hub models: {missing[:3]}..."
            )
        self.hub = hub
        self.matrix = matrix
        self.clustering = clustering
        self.config = config or RecallConfig()
        # ``deterministic=True`` seeds any proxy subsampling from the score's
        # content key, so scoring is independent of evaluation order and the
        # executor backends below all produce identical recall results.  As
        # a consequence ``rng`` no longer influences proxy scores; it is
        # kept (and normalised) only for signature compatibility.
        self._scorer = get_scorer(
            self.config.proxy_score,
            cached=self.config.cache_proxy_scores,
            deterministic=True,
        )
        self._rng = as_generator(rng)
        self._executor = get_executor(executor)
        # Lazily built per representative set; (names tuple, index) pair.
        self._ann_index: Optional[Tuple[Tuple[str, ...], object]] = None

    # ------------------------------------------------------------------ #
    def recall(self, task: ClassificationTask, *, top_k: Optional[int] = None) -> RecallResult:
        """Run the coarse-recall phase on ``task`` and return the top-K models."""
        k = top_k if top_k is not None else self.config.top_k
        if k < 1:
            raise SelectionError("top_k must be >= 1")
        representatives = self._representatives()
        raw_scores = self._score_representatives(representatives, task)
        normalised = self._normalise(raw_scores)
        recall_scores = self._combine_scores(normalised)
        ordered = sorted(recall_scores, key=recall_scores.get, reverse=True)
        recalled = ordered[: min(k, len(ordered))]
        epoch_cost = self.config.proxy_epoch_cost * len(raw_scores)
        return RecallResult(
            target_name=task.name,
            recalled_models=recalled,
            recall_scores=recall_scores,
            proxy_scores=normalised,
            raw_proxy_scores=raw_scores,
            epoch_cost=epoch_cost,
        )

    # ------------------------------------------------------------------ #
    def _representatives(self) -> Dict[int, str]:
        """Representative model per non-singleton cluster.

        When the clustering produced only singleton clusters (possible for
        tiny repositories), every model becomes its own representative so the
        recall phase degrades gracefully to per-model proxy scoring.
        """
        representatives = dict(self.clustering.representatives)
        if not representatives:
            return {
                cluster_id: members[0]
                for cluster_id, members in self.clustering.assignment.as_dict().items()
            }
        return representatives

    def _score_representatives(
        self, representatives: Dict[int, str], task: ClassificationTask
    ) -> Dict[str, float]:
        names = sorted(set(representatives.values()))
        # Materialise the checkpoints up front (hub construction is lazy),
        # so workers only run scorer inference.
        models = [self.hub.get(name) for name in names]

        def score_one(model) -> float:
            # No rng is passed: the deterministic scorer wrapper seeds any
            # subsampling from the score's content key.
            return self._scorer.score(
                model,
                task,
                max_samples=self.config.max_proxy_samples,
            )

        values = self._executor.map(score_one, models)
        return dict(zip(names, values))

    @staticmethod
    def _normalise(raw_scores: Dict[str, float]) -> Dict[str, float]:
        if not raw_scores:
            raise SelectionError("no representative models were scored")
        names = list(raw_scores.keys())
        normalised = min_max_normalize([raw_scores[name] for name in names])
        return {name: float(value) for name, value in zip(names, normalised)}

    def _combine_scores(self, proxy_by_representative: Dict[str, float]) -> Dict[str, float]:
        """Eq. 2-4: combine prior accuracy with (propagated) proxy scores."""
        averages = self.matrix.average_accuracies()
        non_singleton = self.clustering.non_singleton_clusters()
        representative_items = sorted(proxy_by_representative.items())
        recall_scores: Dict[str, float] = {}
        for model_name in self.hub.model_names:
            prior = averages[model_name]
            cluster_id = self.clustering.cluster_of(model_name)
            if cluster_id in non_singleton or not non_singleton:
                representative = self.clustering.representatives.get(cluster_id, model_name)
                proxy = proxy_by_representative.get(representative)
                if proxy is None:
                    proxy = self._propagated_score(model_name, representative_items)
                recall_scores[model_name] = prior * proxy
            else:
                recall_scores[model_name] = prior * self._propagated_score(
                    model_name, representative_items
                )
        return recall_scores

    def _propagated_score(self, model_name: str, representative_items) -> float:
        """Eq. 4: similarity-decayed average of the representatives' proxy scores.

        With :attr:`RecallConfig.ann_shortlist` set, the average runs over
        only the model's nearest representatives in performance space
        (exact Eq. 1 similarities of an ANN-shortlisted subset); otherwise
        — the default — over all representatives, exactly as Eq. 4 states.
        """
        if not representative_items:
            return 0.0
        items = self._shortlist_representatives(model_name, representative_items)
        total = 0.0
        for representative, proxy in items:
            similarity = self.clustering.similarity_between(model_name, representative)
            total += similarity * proxy
        return total / len(items)

    def _shortlist_representatives(self, model_name: str, representative_items):
        """The ``ann_shortlist`` nearest representatives, or all of them."""
        m = self.config.ann_shortlist
        if m is None or m >= len(representative_items):
            return representative_items
        names = tuple(name for name, _ in representative_items)
        if self._ann_index is None or self._ann_index[0] != names:
            from repro.ann import IVFIndex

            vectors = np.stack([self.matrix.model_vector(name) for name in names])
            self._ann_index = (names, IVFIndex(vectors, seed=0))
        index = self._ann_index[1]
        ids, _ = index.search(self.matrix.model_vector(model_name), m)
        return [representative_items[i] for i in ids.tolist()]


class RandomRecall:
    """Random-recall baseline used by the paper's Fig. 5 comparison."""

    def __init__(self, hub: ModelHub, *, rng=None) -> None:
        self.hub = hub
        self._rng = as_generator(rng)

    def recall(self, task: ClassificationTask, *, top_k: int = 10) -> RecallResult:
        """Return ``top_k`` models drawn uniformly at random (without replacement)."""
        if top_k < 1:
            raise SelectionError("top_k must be >= 1")
        names = list(self.hub.model_names)
        k = min(top_k, len(names))
        chosen_idx = self._rng.choice(len(names), size=k, replace=False)
        chosen = [names[int(i)] for i in chosen_idx]
        scores = {name: (1.0 if name in chosen else 0.0) for name in names}
        return RecallResult(
            target_name=task.name,
            recalled_models=chosen,
            recall_scores=scores,
            epoch_cost=0.0,
        )
