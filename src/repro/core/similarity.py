"""Model-similarity measures used for model clustering.

The paper's Eq. 1 defines the performance-based similarity between two
checkpoints as one minus the average of their ``k`` largest per-dataset
accuracy differences:

``sim(m_a, m_b) = 1 - avg( top_k |vec(m_a) - vec(m_b)| )``

The text-based baseline (Table I) instead embeds each checkpoint's model
card and uses cosine similarity.

:func:`performance_similarity_matrix` is the hot path of the offline phase
and is fully vectorized: the pairwise ``|a_i - a_j|`` differences are
broadcast into an ``(n, n, d)`` tensor and the top-``k`` selection uses
:func:`numpy.partition` instead of a full sort.  For large repositories the
computation falls back to row *chunks* that bound peak memory (see
:func:`similarity_chunk_rows`).  Results are additionally memoised in the
process-wide :mod:`repro.cache` keyed on the performance matrix's content
fingerprint, so repeated experiment runs reuse the work.

Past checkpoint-hub scale the dense ``(n, n)`` result itself stops fitting
in RAM; :func:`performance_similarity_matrix_ooc` (and its incremental
sibling :func:`update_similarity_matrix_ooc`) stream the same Eq. 1 tiles
through the same kernel but write them to a memory-mapped file in the
:mod:`repro.store` matrix store — bitwise-identical output, peak memory
bounded by :class:`~repro.core.config.SimilarityConfig.max_bytes_in_flight`.
See ``docs/scaling.md``.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.cache import (
    CacheLike,
    resolve_cache,
    similarity_key,
    text_similarity_key,
)
from repro.core.config import SimilarityConfig
from repro.core.performance import PerformanceMatrix
from repro.parallel.executor import get_executor
from repro.store import StoreLike, iter_row_blocks, resolve_store
from repro.text.embedding import TextEmbedder
from repro.utils.exceptions import ConfigurationError, DataError

#: Default bound (in bytes) on one broadcast difference block before the
#: vectorized path switches to row chunks.  16 MiB is deliberately small:
#: beyond bounding peak memory, blocks that fit the CPU cache hierarchy are
#: several times faster than one monolithic ``(n, n, d)`` tensor (measured
#: ~8x at n = 800, d = 40), while every repository the paper considers
#: (n <= 40) still runs as a single block.
DEFAULT_CHUNK_BUDGET_BYTES = 16 * 1024 * 1024


def performance_similarity(
    vector_a: np.ndarray, vector_b: np.ndarray, *, top_k: int = 5
) -> float:
    """Eq. 1 similarity between two benchmark-accuracy vectors.

    >>> import numpy as np
    >>> a = np.array([1.0, 0.5, 0.5])
    >>> b = np.array([0.5, 0.5, 0.5])
    >>> performance_similarity(a, b, top_k=1)   # 1 - max|a - b|
    0.5
    """
    a = np.asarray(vector_a, dtype=float)
    b = np.asarray(vector_b, dtype=float)
    if a.shape != b.shape or a.ndim != 1:
        raise DataError("performance vectors must be 1-d and aligned")
    if a.size == 0:
        raise DataError("performance vectors must be non-empty")
    if top_k < 1:
        raise ConfigurationError("top_k must be >= 1")
    differences = np.abs(a - b)
    k = min(top_k, differences.size)
    largest = np.sort(differences)[-k:]
    return float(1.0 - np.mean(largest))


# --------------------------------------------------------------------------- #
# Vectorized Eq. 1 matrix
# --------------------------------------------------------------------------- #
def _rows_per_block(
    num_columns: int, num_datasets: int, *, budget_bytes: int = DEFAULT_CHUNK_BUDGET_BYTES
) -> int:
    """Rows per broadcast block so ``(rows, num_columns, d)`` fits the budget.

    The single budget formula shared by the full matrix path and the
    incremental row/column blocks of :func:`update_similarity_matrix`.
    """
    bytes_per_row = max(1, num_columns * num_datasets * 8)
    return max(1, budget_bytes // bytes_per_row)


def similarity_chunk_rows(
    num_models: int, num_datasets: int, *, budget_bytes: int = DEFAULT_CHUNK_BUDGET_BYTES
) -> int:
    """Rows per chunk so one ``(rows, n, d)`` block stays within ``budget_bytes``.

    The chunked and single-shot paths produce bitwise-identical results —
    chunking only trades a little Python-loop overhead for a bounded peak
    memory footprint (``rows * n * d * 8`` bytes instead of ``n^2 * d * 8``).

    >>> similarity_chunk_rows(800, 40, budget_bytes=64 * 1024**2)
    262
    """
    return max(
        1,
        min(
            num_models,
            _rows_per_block(num_models, num_datasets, budget_bytes=budget_bytes),
        ),
    )


def _similarity_into(
    out: np.ndarray,
    row_vectors: np.ndarray,
    col_vectors: np.ndarray,
    k: int,
    rows: int,
) -> None:
    """Fill ``out`` with Eq. 1 similarities of ``row_vectors`` x ``col_vectors``.

    Row blocks of size ``rows`` broadcast ``|row_i - col_j|`` into a
    ``(rows, c, d)`` slab and select the top-``k`` differences with an
    in-place partition.  One slab buffer is allocated up front and reused by
    every block — the subtract/abs/partition pipeline runs entirely inside
    it, so the hot loop performs no allocations and stays cache-resident for
    small ``rows``.

    Every ``(i, j)`` lane is processed independently (elementwise ops plus a
    per-lane partition and mean), so the value written for a pair depends
    only on that pair's vectors, ``k`` and ``d`` — never on which other
    pairs share the block.  This is the property the incremental
    :func:`update_similarity_matrix` relies on to be bitwise-identical to a
    full recompute.
    """
    r, d = row_vectors.shape
    c = col_vectors.shape[0]
    buffer = np.empty((min(rows, r), c, d))
    for start in range(0, r, rows):
        stop = min(start + rows, r)
        block = buffer[: stop - start]
        np.subtract(row_vectors[start:stop, None, :], col_vectors[None, :, :], out=block)
        np.abs(block, out=block)
        if k < d:
            block.partition(d - k, axis=-1)
            top = block[..., d - k :]
        else:
            top = block
        out[start:stop] = 1.0 - top.mean(axis=-1)


def _similarity_blocks(vectors: np.ndarray, k: int, rows: int) -> np.ndarray:
    """Eq. 1 similarity matrix computed in row blocks of size ``rows``."""
    n = vectors.shape[0]
    similarity = np.empty((n, n))
    _similarity_into(similarity, vectors, vectors, k, rows)
    return similarity


def performance_similarity_matrix(
    matrix: PerformanceMatrix,
    *,
    top_k: int = 5,
    chunk_rows: Optional[int] = None,
    cache: CacheLike = None,
) -> np.ndarray:
    """Pairwise Eq. 1 similarities of every model in ``matrix``.

    Fully vectorized: broadcasts all pairwise accuracy differences into an
    ``(n, n, d)`` tensor and selects the ``top_k`` largest per pair with a
    linear-time partition.  When the tensor would exceed
    :data:`DEFAULT_CHUNK_BUDGET_BYTES` the rows are processed in chunks,
    bounding peak memory without changing any output value.

    Results are memoised in the process-wide artifact cache under the
    matrix's content fingerprint; pass ``cache=False`` to bypass caching or
    an explicit :class:`~repro.cache.ArtifactCache` to use a private one.

    Parameters
    ----------
    matrix:
        Offline performance matrix (models x benchmark datasets).
    top_k:
        Number of largest per-dataset differences averaged (paper: k = 5).
    chunk_rows:
        Explicit rows-per-chunk override; ``None`` picks the largest chunk
        that fits the default memory budget.
    cache:
        ``None``/``True`` for the process default cache, ``False`` to
        disable, or a specific :class:`~repro.cache.ArtifactCache`.

    >>> import numpy as np
    >>> from repro.core.performance import PerformanceMatrix
    >>> pm = PerformanceMatrix(
    ...     dataset_names=["d0", "d1"],
    ...     model_names=["a", "b"],
    ...     values=np.array([[1.0, 0.5], [0.2, 0.2]]),
    ... )
    >>> performance_similarity_matrix(pm, top_k=1, cache=False)
    array([[1. , 0.5],
           [0.5, 1. ]])
    """
    if top_k < 1:
        raise ConfigurationError("top_k must be >= 1")
    store = resolve_cache(cache)
    key = similarity_key(matrix, method="performance", top_k=top_k) if store else None
    if store is not None:
        cached = store.get(key)
        if cached is not None:
            return cached

    vectors = np.ascontiguousarray(matrix.values.T, dtype=float)
    n, d = vectors.shape
    if n > 1 and d == 0:
        raise DataError("performance vectors must be non-empty")
    k = min(top_k, d) if d else 0
    if n == 0:
        similarity = np.ones((0, 0))
    elif n == 1 or d == 0:
        similarity = np.ones((n, n))
    else:
        rows = chunk_rows if chunk_rows is not None else similarity_chunk_rows(n, d)
        if rows < 1:
            raise ConfigurationError("chunk_rows must be >= 1")
        similarity = _similarity_blocks(vectors, k, rows)
        np.fill_diagonal(similarity, 1.0)

    if store is not None:
        store.put(key, similarity)
    return similarity


def _validate_incremental_update(
    old_matrix: PerformanceMatrix,
    old_similarity: np.ndarray,
    new_matrix: PerformanceMatrix,
    *,
    top_k: int,
):
    """Shared preconditions of the incremental update paths.

    Returns ``(old_similarity, kept_new, kept_old, added_new)`` — the
    validated previous similarity plus the index bookkeeping both the
    in-RAM and the out-of-core incremental writers consume.
    """
    if top_k < 1:
        raise ConfigurationError("top_k must be >= 1")
    old_names = old_matrix.model_names
    old_similarity = np.asarray(old_similarity, dtype=float)
    if old_similarity.shape != (len(old_names), len(old_names)):
        raise DataError(
            f"old_similarity shape {old_similarity.shape} does not match the "
            f"{len(old_names)} models of old_matrix"
        )
    if list(old_matrix.dataset_names) != list(new_matrix.dataset_names):
        raise DataError(
            "incremental similarity updates require unchanged benchmark "
            "datasets; rebuild from scratch instead"
        )
    old_index = {name: i for i, name in enumerate(old_names)}
    new_names = new_matrix.model_names
    kept_new = [j for j, name in enumerate(new_names) if name in old_index]
    kept_old = [old_index[new_names[j]] for j in kept_new]
    added_new = [j for j, name in enumerate(new_names) if name not in old_index]
    if kept_new and not np.array_equal(
        new_matrix.values[:, kept_new], old_matrix.values[:, kept_old]
    ):
        raise DataError(
            "surviving models' accuracy columns changed; the cached "
            "similarity rows are stale — rebuild from scratch instead"
        )
    if len(kept_new) >= 2 and old_matrix.values.shape[0] > 0:
        # Spot-check that old_similarity really was computed with this
        # top_k: recompute one surviving pair through the shared kernel
        # (bitwise-deterministic per lane) and compare.  Without this, a
        # mismatched top_k would silently mix regimes and poison the cache
        # under the new matrix's canonical key.
        probe_vectors = np.ascontiguousarray(
            old_matrix.values[:, [kept_old[0], kept_old[1]]].T, dtype=float
        )
        probe_k = min(top_k, probe_vectors.shape[1])
        probe = np.empty((1, 1))
        _similarity_into(probe, probe_vectors[:1], probe_vectors[1:], probe_k, 1)
        if probe[0, 0] != old_similarity[kept_old[0], kept_old[1]]:
            raise DataError(
                "old_similarity does not match old_matrix under this top_k; "
                "it was computed with different settings — rebuild from "
                "scratch instead"
            )
    return old_similarity, kept_new, kept_old, added_new


def update_similarity_matrix(
    old_matrix: PerformanceMatrix,
    old_similarity: np.ndarray,
    new_matrix: PerformanceMatrix,
    *,
    top_k: int = 5,
    chunk_rows: Optional[int] = None,
    cache: CacheLike = None,
) -> np.ndarray:
    """Incrementally updated Eq. 1 similarity after a zoo add/remove.

    Given the similarity matrix of ``old_matrix`` (computed with the same
    ``top_k``), produces the similarity matrix of ``new_matrix`` touching
    only the rows/columns of *changed* models: pairs of surviving models are
    copied from ``old_similarity`` and only ``added x all`` blocks are
    recomputed.  Removals are free (a submatrix copy).  The cost is
    ``O((n_added) * n * d)`` instead of the full ``O(n^2 * d)`` broadcast.

    The result is **bitwise-identical** to
    ``performance_similarity_matrix(new_matrix, top_k=top_k)``: every Eq. 1
    entry depends only on its own pair of accuracy vectors (elementwise
    difference, per-lane partition, per-lane mean), so copied and freshly
    computed entries coincide exactly.  The property suite under
    ``tests/property/`` enforces this for randomized add/remove sequences,
    and :func:`performance_similarity_matrix` remains the from-scratch
    oracle.

    Preconditions (validated): the benchmark datasets are unchanged, the
    surviving models' accuracy columns are bitwise-unchanged, and
    ``old_similarity`` is square and aligned with ``old_matrix``.  The
    result is stored in the artifact cache under the *same* key a full
    recompute of ``new_matrix`` would use, so downstream consumers
    (distance conversion, clustering) hit the warm entry either way.

    >>> import numpy as np
    >>> from repro.core.performance import PerformanceMatrix
    >>> old = PerformanceMatrix(
    ...     dataset_names=["d0"], model_names=["a", "b"],
    ...     values=np.array([[1.0, 0.5]]),
    ... )
    >>> old_sim = performance_similarity_matrix(old, top_k=1, cache=False)
    >>> new = PerformanceMatrix(
    ...     dataset_names=["d0"], model_names=["a", "b", "c"],
    ...     values=np.array([[1.0, 0.5, 0.25]]),
    ... )
    >>> update_similarity_matrix(old, old_sim, new, top_k=1, cache=False)
    array([[1.  , 0.5 , 0.25],
           [0.5 , 1.  , 0.75],
           [0.25, 0.75, 1.  ]])
    """
    if chunk_rows is not None and chunk_rows < 1:
        raise ConfigurationError("chunk_rows must be >= 1")
    old_similarity, kept_new, kept_old, added_new = _validate_incremental_update(
        old_matrix, old_similarity, new_matrix, top_k=top_k
    )

    store = resolve_cache(cache)
    key = similarity_key(new_matrix, method="performance", top_k=top_k) if store else None
    if store is not None:
        cached = store.get(key)
        if cached is not None:
            return cached

    vectors = np.ascontiguousarray(new_matrix.values.T, dtype=float)
    n, d = vectors.shape
    if n > 1 and d == 0:
        raise DataError("performance vectors must be non-empty")
    k = min(top_k, d) if d else 0
    if n == 0:
        similarity = np.ones((0, 0))
    elif n == 1 or d == 0:
        similarity = np.ones((n, n))
    else:
        similarity = np.empty((n, n))
        if kept_new:
            similarity[np.ix_(kept_new, kept_new)] = old_similarity[
                np.ix_(kept_old, kept_old)
            ]
        if added_new:
            added_vectors = np.ascontiguousarray(vectors[added_new])
            rows = chunk_rows if chunk_rows is not None else _rows_per_block(n, d)
            # New rows: added models against the whole repository.
            block = np.empty((len(added_new), n))
            _similarity_into(block, added_vectors, vectors, k, rows)
            similarity[added_new, :] = block
            if kept_new:
                # New columns are the mirror of the rows just computed.
                # This is still bitwise-faithful to a full recompute: IEEE
                # subtraction is exactly antisymmetric, so the |a - b| lane
                # of pair (i, j) is identical to the (j, i) lane, and the
                # per-lane partition + mean of identical content is
                # deterministic (the property suite pins this down).
                similarity[np.ix_(kept_new, added_new)] = block[
                    :, kept_new
                ].T
        np.fill_diagonal(similarity, 1.0)

    if store is not None:
        store.put(key, similarity)
    return similarity


# --------------------------------------------------------------------------- #
# Out-of-core Eq. 1 matrix (memory-mapped, shard-addressable)
# --------------------------------------------------------------------------- #
def _write_trivial_similarity(writer, n: int) -> np.ndarray:
    """Commit the degenerate ``n <= 1`` / ``d == 0`` all-ones similarity."""
    if n:
        writer.array[:] = 1.0
    return writer.commit()


def _publish_dense(matrix_store, key: str, value: np.ndarray) -> np.ndarray:
    """Write an already-computed dense matrix into the store (write-through).

    Used when the in-memory cache holds the artifact under the same key:
    out-of-core callers still get a memory-mapped result — the backing of
    a spilled build must not depend on what some earlier dense run left in
    the LRU — without recomputing anything.
    """
    writer = matrix_store.create(key, value.shape)
    try:
        writer.array[:] = value
        return writer.commit()
    except BaseException:
        writer.abort()
        raise


def _fill_similarity_tile(
    out: np.ndarray, vectors: np.ndarray, start: int, stop: int, k: int, rows: int
) -> None:
    """Compute one ``(stop - start, n)`` Eq. 1 row tile into ``out``.

    ``out`` is the tile's slice of the destination (typically a writable
    memmap); the unit diagonal is set in place, so tiles are final once
    written.  Identical to the in-RAM path entry-for-entry: both stream the
    same ``(rows, n, d)`` slabs through :func:`_similarity_into`, and every
    Eq. 1 lane is independent of its block mates.
    """
    _similarity_into(out, vectors[start:stop], vectors, k, rows)
    local = np.arange(stop - start)
    out[local, local + start] = 1.0


def performance_similarity_matrix_ooc(
    matrix: PerformanceMatrix,
    *,
    top_k: int = 5,
    config: Optional[SimilarityConfig] = None,
    cache: CacheLike = None,
    store: StoreLike = None,
    parallel=None,
) -> np.ndarray:
    """Eq. 1 similarity computed out-of-core into a memory-mapped store.

    The result is **bitwise-identical** to
    :func:`performance_similarity_matrix` — same kernel, same per-lane
    independence — but lives in a read-only :class:`numpy.memmap` inside the
    matrix store instead of RAM: peak memory is bounded by
    ``config.max_bytes_in_flight`` (one broadcast slab) plus one row tile,
    regardless of ``n``.  The file is addressed by the *same* content-hash
    key the in-RAM cache uses, so repeated builds of the same repository
    reuse the spilled artifact, and the zoo-refresh eviction sweep purges it
    together with the in-memory entries.

    Row tiles are independent, so they can be fanned out over a
    :mod:`repro.parallel` executor (``parallel`` or ``config.parallel``);
    every backend writes identical bytes.

    Parameters
    ----------
    matrix:
        Offline performance matrix (models x benchmark datasets).
    top_k:
        Eq. 1 parameter (paper: k = 5).
    config:
        Memory policy; defaults to :class:`SimilarityConfig` defaults.
    cache:
        In-memory artifact cache consulted on a store miss: a dense entry
        under the shared key is written through to the store (no
        recompute) so the result is memmapped either way.  The out-of-core
        result is deliberately **not** copied into the in-memory cache.
    store:
        Matrix store override; defaults to ``config.store_dir`` or the
        process default store.
    parallel:
        Executor (or spec) for parallel tile workers; overrides
        ``config.parallel``.
    """
    if top_k < 1:
        raise ConfigurationError("top_k must be >= 1")
    config = config or SimilarityConfig()
    key = similarity_key(matrix, method="performance", top_k=top_k)
    matrix_store = resolve_store(store if store is not None else config.store_dir)
    n = len(matrix.model_names)
    existing = matrix_store.open(key)
    if existing is not None and existing.shape == (n, n):
        return existing
    memory = resolve_cache(cache)
    if memory is not None:
        cached = memory.get(key)
        if cached is not None:
            # A dense run already computed this artifact; spill it instead
            # of recomputing so the result is memmapped either way.
            return _publish_dense(matrix_store, key, cached)

    vectors = np.ascontiguousarray(matrix.values.T, dtype=float)
    d = vectors.shape[1]
    if n > 1 and d == 0:
        raise DataError("performance vectors must be non-empty")
    writer = matrix_store.create(key, (n, n))
    try:
        if n <= 1 or d == 0:
            return _write_trivial_similarity(writer, n)
        k = min(top_k, d)
        executor = get_executor(parallel if parallel is not None else config.parallel)
        # The in-flight budget bounds the *total* transient slab memory:
        # concurrent tile workers each allocate their own (rows, n, d)
        # buffer, so the per-worker share shrinks with the worker count.
        workers = max(1, executor.resolved_workers())
        slab_budget = max(4096, config.max_bytes_in_flight // workers)
        rows = _rows_per_block(n, d, budget_bytes=slab_budget)
        tile_rows = config.tile_rows or max(rows, 1)
        spans = list(iter_row_blocks(n, tile_rows))
        out = writer.array

        def _fill(span) -> None:
            start, stop = span
            _fill_similarity_tile(out[start:stop], vectors, start, stop, k, rows)

        executor.map(_fill, spans)
        return writer.commit()
    except BaseException:
        writer.abort()
        raise


def update_similarity_matrix_ooc(
    old_matrix: PerformanceMatrix,
    old_similarity: np.ndarray,
    new_matrix: PerformanceMatrix,
    *,
    top_k: int = 5,
    config: Optional[SimilarityConfig] = None,
    cache: CacheLike = None,
    store: StoreLike = None,
) -> np.ndarray:
    """Incremental Eq. 1 update written out-of-core (memmapped result).

    The out-of-core sibling of :func:`update_similarity_matrix`: surviving
    pairs are copied row-block by row-block from ``old_similarity`` (which
    may itself be a memmap — reads stream through it), only ``added x all``
    tiles are recomputed, and the result is published in the matrix store
    under the same canonical key a cold rebuild of ``new_matrix`` would
    use.  Bitwise-identical to both the in-RAM incremental path and the
    from-scratch oracle; peak memory is bounded by
    ``config.max_bytes_in_flight`` regardless of repository size.
    """
    config = config or SimilarityConfig()
    old_similarity, kept_new, kept_old, added_new = _validate_incremental_update(
        old_matrix, old_similarity, new_matrix, top_k=top_k
    )
    key = similarity_key(new_matrix, method="performance", top_k=top_k)
    matrix_store = resolve_store(store if store is not None else config.store_dir)
    n = len(new_matrix.model_names)
    existing = matrix_store.open(key)
    if existing is not None and existing.shape == (n, n):
        return existing
    memory = resolve_cache(cache)
    if memory is not None:
        cached = memory.get(key)
        if cached is not None:
            return _publish_dense(matrix_store, key, cached)

    vectors = np.ascontiguousarray(new_matrix.values.T, dtype=float)
    d = vectors.shape[1]
    if n > 1 and d == 0:
        raise DataError("performance vectors must be non-empty")
    writer = matrix_store.create(key, (n, n))
    try:
        if n <= 1 or d == 0:
            return _write_trivial_similarity(writer, n)
        k = min(top_k, d)
        out = writer.array
        kept_new_arr = np.asarray(kept_new, dtype=int)
        kept_old_arr = np.asarray(kept_old, dtype=int)
        copy_rows = max(1, config.max_bytes_in_flight // max(1, n * 8))
        for start, stop in iter_row_blocks(len(kept_new), copy_rows):
            out[np.ix_(kept_new_arr[start:stop], kept_new_arr)] = old_similarity[
                np.ix_(kept_old_arr[start:stop], kept_old_arr)
            ]
        rows = _rows_per_block(n, d, budget_bytes=config.max_bytes_in_flight)
        tile_rows = config.tile_rows or max(rows, 1)
        for start, stop in iter_row_blocks(len(added_new), tile_rows):
            added_idx = np.asarray(added_new[start:stop], dtype=int)
            added_vectors = np.ascontiguousarray(vectors[added_idx])
            block = np.empty((added_idx.size, n))
            _similarity_into(block, added_vectors, vectors, k, rows)
            out[added_idx, :] = block
            if kept_new:
                # Mirror columns of the freshly computed rows — exact, as
                # in the in-RAM incremental path (IEEE |a - b| symmetry).
                out[np.ix_(kept_new_arr, added_idx)] = block[:, kept_new_arr].T
        diagonal = np.arange(n)
        out[diagonal, diagonal] = 1.0
        return writer.commit()
    except BaseException:
        writer.abort()
        raise


def _performance_similarity_matrix_loop(
    matrix: PerformanceMatrix, *, top_k: int = 5
) -> np.ndarray:
    """Reference O(n^2) pairwise loop (pre-vectorization implementation).

    Kept as the ground truth for the property tests and the
    ``bench_similarity_scaling`` microbenchmark; library code should call
    :func:`performance_similarity_matrix` instead.
    """
    vectors = [matrix.model_vector(name) for name in matrix.model_names]
    n = len(vectors)
    similarity = np.ones((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            similarity[i, j] = similarity[j, i] = performance_similarity(
                vectors[i], vectors[j], top_k=top_k
            )
    return similarity


# --------------------------------------------------------------------------- #
# Text baseline and dispatch
# --------------------------------------------------------------------------- #
def text_similarity_matrix(
    model_cards: Dict[str, str], *, cache: CacheLike = False
) -> np.ndarray:
    """Pairwise cosine similarity of model-card TF-IDF embeddings.

    The row/column order follows the insertion order of ``model_cards``
    (callers should pass an ordered mapping aligned with their model list).
    Caching is opt-in here (``cache=None`` uses the process default) since
    the key must hash every card's full text.
    """
    if not model_cards:
        raise DataError("model_cards must not be empty")
    store = resolve_cache(cache)
    key = text_similarity_key(model_cards) if store else None
    if store is not None:
        cached = store.get(key)
        if cached is not None:
            return cached
    embedder = TextEmbedder().fit(model_cards)
    similarity = embedder.similarity_matrix()
    # Cosine similarity of TF-IDF vectors is non-negative; clip defensively
    # and force an exact unit diagonal for distance conversion downstream.
    similarity = np.clip(similarity, 0.0, 1.0)
    np.fill_diagonal(similarity, 1.0)
    if store is not None:
        store.put(key, similarity)
    return similarity


def similarity_matrix_for(
    matrix: PerformanceMatrix,
    *,
    method: str = "performance",
    top_k: int = 5,
    model_cards: Dict[str, str] | None = None,
    cache: CacheLike = None,
) -> np.ndarray:
    """Dispatch between the performance-based and text-based similarities.

    For ``method="text"`` the ``model_cards`` key set must match
    ``matrix.model_names`` exactly and any mismatch raises
    :class:`~repro.utils.exceptions.ConfigurationError`: a missing card
    previously surfaced as a bare ``KeyError``, and extra cards — while
    formerly ignored — almost always mean the cards belong to a different
    hub or matrix than the one being clustered, which is worth failing
    loudly over.
    """
    if method == "performance":
        return performance_similarity_matrix(matrix, top_k=top_k, cache=cache)
    if method == "text":
        if model_cards is None:
            raise ConfigurationError("text similarity requires model_cards")
        expected, provided = set(matrix.model_names), set(model_cards)
        if expected != provided:
            missing = sorted(expected - provided)
            extra = sorted(provided - expected)
            raise ConfigurationError(
                "model_cards keys must match matrix.model_names exactly; "
                f"missing: {missing[:3]}, unexpected: {extra[:3]}"
            )
        ordered = {name: model_cards[name] for name in matrix.model_names}
        return text_similarity_matrix(ordered, cache=cache)
    raise ConfigurationError(f"unknown similarity method {method!r}")


def pairwise_model_similarity(
    matrix: PerformanceMatrix, model_a: str, model_b: str, *, top_k: int = 5
) -> float:
    """Eq. 1 similarity between two named models."""
    return performance_similarity(
        matrix.model_vector(model_a), matrix.model_vector(model_b), top_k=top_k
    )
