"""Model-similarity measures used for model clustering.

The paper's Eq. 1 defines the performance-based similarity between two
checkpoints as one minus the average of their ``k`` largest per-dataset
accuracy differences:

``sim(m_a, m_b) = 1 - avg( top_k |vec(m_a) - vec(m_b)| )``

The text-based baseline (Table I) instead embeds each checkpoint's model
card and uses cosine similarity.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.core.performance import PerformanceMatrix
from repro.text.embedding import TextEmbedder
from repro.utils.exceptions import ConfigurationError, DataError


def performance_similarity(
    vector_a: np.ndarray, vector_b: np.ndarray, *, top_k: int = 5
) -> float:
    """Eq. 1 similarity between two benchmark-accuracy vectors."""
    a = np.asarray(vector_a, dtype=float)
    b = np.asarray(vector_b, dtype=float)
    if a.shape != b.shape or a.ndim != 1:
        raise DataError("performance vectors must be 1-d and aligned")
    if a.size == 0:
        raise DataError("performance vectors must be non-empty")
    if top_k < 1:
        raise ConfigurationError("top_k must be >= 1")
    differences = np.abs(a - b)
    k = min(top_k, differences.size)
    largest = np.sort(differences)[-k:]
    return float(1.0 - np.mean(largest))


def performance_similarity_matrix(
    matrix: PerformanceMatrix, *, top_k: int = 5
) -> np.ndarray:
    """Pairwise Eq. 1 similarities of every model in ``matrix``."""
    vectors = [matrix.model_vector(name) for name in matrix.model_names]
    n = len(vectors)
    similarity = np.ones((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            similarity[i, j] = similarity[j, i] = performance_similarity(
                vectors[i], vectors[j], top_k=top_k
            )
    return similarity


def text_similarity_matrix(model_cards: Dict[str, str]) -> np.ndarray:
    """Pairwise cosine similarity of model-card TF-IDF embeddings.

    The row/column order follows the insertion order of ``model_cards``
    (callers should pass an ordered mapping aligned with their model list).
    """
    if not model_cards:
        raise DataError("model_cards must not be empty")
    embedder = TextEmbedder().fit(model_cards)
    similarity = embedder.similarity_matrix()
    # Cosine similarity of TF-IDF vectors is non-negative; clip defensively
    # and force an exact unit diagonal for distance conversion downstream.
    similarity = np.clip(similarity, 0.0, 1.0)
    np.fill_diagonal(similarity, 1.0)
    return similarity


def similarity_matrix_for(
    matrix: PerformanceMatrix,
    *,
    method: str = "performance",
    top_k: int = 5,
    model_cards: Dict[str, str] | None = None,
) -> np.ndarray:
    """Dispatch between the performance-based and text-based similarities."""
    if method == "performance":
        return performance_similarity_matrix(matrix, top_k=top_k)
    if method == "text":
        if model_cards is None:
            raise ConfigurationError("text similarity requires model_cards")
        ordered = {name: model_cards[name] for name in matrix.model_names}
        return text_similarity_matrix(ordered)
    raise ConfigurationError(f"unknown similarity method {method!r}")


def pairwise_model_similarity(
    matrix: PerformanceMatrix, model_a: str, model_b: str, *, top_k: int = 5
) -> float:
    """Eq. 1 similarity between two named models."""
    return performance_similarity(
        matrix.model_vector(model_a), matrix.model_vector(model_b), top_k=top_k
    )
