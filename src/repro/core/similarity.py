"""Model-similarity measures used for model clustering.

The paper's Eq. 1 defines the performance-based similarity between two
checkpoints as one minus the average of their ``k`` largest per-dataset
accuracy differences:

``sim(m_a, m_b) = 1 - avg( top_k |vec(m_a) - vec(m_b)| )``

The text-based baseline (Table I) instead embeds each checkpoint's model
card and uses cosine similarity.

:func:`performance_similarity_matrix` is the hot path of the offline phase
and is fully vectorized: the pairwise ``|a_i - a_j|`` differences are
broadcast into an ``(n, n, d)`` tensor and the top-``k`` selection uses
:func:`numpy.partition` instead of a full sort.  For large repositories the
computation falls back to row *chunks* that bound peak memory (see
:func:`similarity_chunk_rows`).  Results are additionally memoised in the
process-wide :mod:`repro.cache` keyed on the performance matrix's content
fingerprint, so repeated experiment runs reuse the work.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.cache import (
    CacheLike,
    resolve_cache,
    similarity_key,
    text_similarity_key,
)
from repro.core.performance import PerformanceMatrix
from repro.text.embedding import TextEmbedder
from repro.utils.exceptions import ConfigurationError, DataError

#: Default bound (in bytes) on one broadcast difference block before the
#: vectorized path switches to row chunks.  16 MiB is deliberately small:
#: beyond bounding peak memory, blocks that fit the CPU cache hierarchy are
#: several times faster than one monolithic ``(n, n, d)`` tensor (measured
#: ~8x at n = 800, d = 40), while every repository the paper considers
#: (n <= 40) still runs as a single block.
DEFAULT_CHUNK_BUDGET_BYTES = 16 * 1024 * 1024


def performance_similarity(
    vector_a: np.ndarray, vector_b: np.ndarray, *, top_k: int = 5
) -> float:
    """Eq. 1 similarity between two benchmark-accuracy vectors.

    >>> import numpy as np
    >>> a = np.array([1.0, 0.5, 0.5])
    >>> b = np.array([0.5, 0.5, 0.5])
    >>> performance_similarity(a, b, top_k=1)   # 1 - max|a - b|
    0.5
    """
    a = np.asarray(vector_a, dtype=float)
    b = np.asarray(vector_b, dtype=float)
    if a.shape != b.shape or a.ndim != 1:
        raise DataError("performance vectors must be 1-d and aligned")
    if a.size == 0:
        raise DataError("performance vectors must be non-empty")
    if top_k < 1:
        raise ConfigurationError("top_k must be >= 1")
    differences = np.abs(a - b)
    k = min(top_k, differences.size)
    largest = np.sort(differences)[-k:]
    return float(1.0 - np.mean(largest))


# --------------------------------------------------------------------------- #
# Vectorized Eq. 1 matrix
# --------------------------------------------------------------------------- #
def similarity_chunk_rows(
    num_models: int, num_datasets: int, *, budget_bytes: int = DEFAULT_CHUNK_BUDGET_BYTES
) -> int:
    """Rows per chunk so one ``(rows, n, d)`` block stays within ``budget_bytes``.

    The chunked and single-shot paths produce bitwise-identical results —
    chunking only trades a little Python-loop overhead for a bounded peak
    memory footprint (``rows * n * d * 8`` bytes instead of ``n^2 * d * 8``).

    >>> similarity_chunk_rows(800, 40, budget_bytes=64 * 1024**2)
    262
    """
    bytes_per_row = max(1, num_models * num_datasets * 8)
    return max(1, min(num_models, budget_bytes // bytes_per_row))


def _similarity_blocks(vectors: np.ndarray, k: int, rows: int) -> np.ndarray:
    """Eq. 1 similarity matrix computed in row blocks of size ``rows``.

    Each block broadcasts ``|vectors_i - vectors_j|`` into a ``(rows, n, d)``
    slab and selects the top-``k`` differences with an in-place partition.
    One slab buffer is allocated up front and reused by every block — the
    subtract/abs/partition pipeline runs entirely inside it, so the hot loop
    performs no allocations and stays cache-resident for small ``rows``.
    """
    n, d = vectors.shape
    similarity = np.empty((n, n))
    buffer = np.empty((min(rows, n), n, d))
    for start in range(0, n, rows):
        stop = min(start + rows, n)
        block = buffer[: stop - start]
        np.subtract(vectors[start:stop, None, :], vectors[None, :, :], out=block)
        np.abs(block, out=block)
        if k < d:
            block.partition(d - k, axis=-1)
            top = block[..., d - k :]
        else:
            top = block
        similarity[start:stop] = 1.0 - top.mean(axis=-1)
    return similarity


def performance_similarity_matrix(
    matrix: PerformanceMatrix,
    *,
    top_k: int = 5,
    chunk_rows: Optional[int] = None,
    cache: CacheLike = None,
) -> np.ndarray:
    """Pairwise Eq. 1 similarities of every model in ``matrix``.

    Fully vectorized: broadcasts all pairwise accuracy differences into an
    ``(n, n, d)`` tensor and selects the ``top_k`` largest per pair with a
    linear-time partition.  When the tensor would exceed
    :data:`DEFAULT_CHUNK_BUDGET_BYTES` the rows are processed in chunks,
    bounding peak memory without changing any output value.

    Results are memoised in the process-wide artifact cache under the
    matrix's content fingerprint; pass ``cache=False`` to bypass caching or
    an explicit :class:`~repro.cache.ArtifactCache` to use a private one.

    Parameters
    ----------
    matrix:
        Offline performance matrix (models x benchmark datasets).
    top_k:
        Number of largest per-dataset differences averaged (paper: k = 5).
    chunk_rows:
        Explicit rows-per-chunk override; ``None`` picks the largest chunk
        that fits the default memory budget.
    cache:
        ``None``/``True`` for the process default cache, ``False`` to
        disable, or a specific :class:`~repro.cache.ArtifactCache`.

    >>> import numpy as np
    >>> from repro.core.performance import PerformanceMatrix
    >>> pm = PerformanceMatrix(
    ...     dataset_names=["d0", "d1"],
    ...     model_names=["a", "b"],
    ...     values=np.array([[1.0, 0.5], [0.2, 0.2]]),
    ... )
    >>> performance_similarity_matrix(pm, top_k=1, cache=False)
    array([[1. , 0.5],
           [0.5, 1. ]])
    """
    if top_k < 1:
        raise ConfigurationError("top_k must be >= 1")
    store = resolve_cache(cache)
    key = similarity_key(matrix, method="performance", top_k=top_k) if store else None
    if store is not None:
        cached = store.get(key)
        if cached is not None:
            return cached

    vectors = np.ascontiguousarray(matrix.values.T, dtype=float)
    n, d = vectors.shape
    if n > 1 and d == 0:
        raise DataError("performance vectors must be non-empty")
    k = min(top_k, d) if d else 0
    if n == 0:
        similarity = np.ones((0, 0))
    elif n == 1 or d == 0:
        similarity = np.ones((n, n))
    else:
        rows = chunk_rows if chunk_rows is not None else similarity_chunk_rows(n, d)
        if rows < 1:
            raise ConfigurationError("chunk_rows must be >= 1")
        similarity = _similarity_blocks(vectors, k, rows)
        np.fill_diagonal(similarity, 1.0)

    if store is not None:
        store.put(key, similarity)
    return similarity


def _performance_similarity_matrix_loop(
    matrix: PerformanceMatrix, *, top_k: int = 5
) -> np.ndarray:
    """Reference O(n^2) pairwise loop (pre-vectorization implementation).

    Kept as the ground truth for the property tests and the
    ``bench_similarity_scaling`` microbenchmark; library code should call
    :func:`performance_similarity_matrix` instead.
    """
    vectors = [matrix.model_vector(name) for name in matrix.model_names]
    n = len(vectors)
    similarity = np.ones((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            similarity[i, j] = similarity[j, i] = performance_similarity(
                vectors[i], vectors[j], top_k=top_k
            )
    return similarity


# --------------------------------------------------------------------------- #
# Text baseline and dispatch
# --------------------------------------------------------------------------- #
def text_similarity_matrix(
    model_cards: Dict[str, str], *, cache: CacheLike = False
) -> np.ndarray:
    """Pairwise cosine similarity of model-card TF-IDF embeddings.

    The row/column order follows the insertion order of ``model_cards``
    (callers should pass an ordered mapping aligned with their model list).
    Caching is opt-in here (``cache=None`` uses the process default) since
    the key must hash every card's full text.
    """
    if not model_cards:
        raise DataError("model_cards must not be empty")
    store = resolve_cache(cache)
    key = text_similarity_key(model_cards) if store else None
    if store is not None:
        cached = store.get(key)
        if cached is not None:
            return cached
    embedder = TextEmbedder().fit(model_cards)
    similarity = embedder.similarity_matrix()
    # Cosine similarity of TF-IDF vectors is non-negative; clip defensively
    # and force an exact unit diagonal for distance conversion downstream.
    similarity = np.clip(similarity, 0.0, 1.0)
    np.fill_diagonal(similarity, 1.0)
    if store is not None:
        store.put(key, similarity)
    return similarity


def similarity_matrix_for(
    matrix: PerformanceMatrix,
    *,
    method: str = "performance",
    top_k: int = 5,
    model_cards: Dict[str, str] | None = None,
    cache: CacheLike = None,
) -> np.ndarray:
    """Dispatch between the performance-based and text-based similarities.

    For ``method="text"`` the ``model_cards`` key set must match
    ``matrix.model_names`` exactly and any mismatch raises
    :class:`~repro.utils.exceptions.ConfigurationError`: a missing card
    previously surfaced as a bare ``KeyError``, and extra cards — while
    formerly ignored — almost always mean the cards belong to a different
    hub or matrix than the one being clustered, which is worth failing
    loudly over.
    """
    if method == "performance":
        return performance_similarity_matrix(matrix, top_k=top_k, cache=cache)
    if method == "text":
        if model_cards is None:
            raise ConfigurationError("text similarity requires model_cards")
        expected, provided = set(matrix.model_names), set(model_cards)
        if expected != provided:
            missing = sorted(expected - provided)
            extra = sorted(provided - expected)
            raise ConfigurationError(
                "model_cards keys must match matrix.model_names exactly; "
                f"missing: {missing[:3]}, unexpected: {extra[:3]}"
            )
        ordered = {name: model_cards[name] for name in matrix.model_names}
        return text_similarity_matrix(ordered, cache=cache)
    raise ConfigurationError(f"unknown similarity method {method!r}")


def pairwise_model_similarity(
    matrix: PerformanceMatrix, model_a: str, model_b: str, *, top_k: int = 5
) -> float:
    """Eq. 1 similarity between two named models."""
    return performance_similarity(
        matrix.model_vector(model_a), matrix.model_vector(model_b), top_k=top_k
    )
