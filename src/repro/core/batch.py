"""Batched multi-task selection: one offline phase, many online queries.

The paper's offline artifacts (performance matrix + model clustering) are
independent of the target task, so a production deployment serving many
selection queries should build them once and amortise them.
:class:`BatchedSelectionRunner` does exactly that: it accepts a batch of
target tasks, shares a single clustering and a single
:class:`~repro.core.selection.FineSelection` engine across all of them,
and submits every task as one request to a batch-scoped
:class:`~repro.sched.scheduler.EpochScheduler`, which interleaves their
epoch steps over a shared training budget and session pool before the
per-task :class:`~repro.core.results.SelectionResult` records are
aggregated into one :class:`BatchSelectionReport`.

Typical use::

    from repro.core import BatchedSelectionRunner
    from repro.data import nlp_suite
    from repro.zoo import ModelHub

    suite = nlp_suite(seed=0)
    hub = ModelHub(suite, seed=0)
    runner = BatchedSelectionRunner.from_hub(hub, suite)
    report = runner.run(["mnli", "boolq"])
    report.selected_models()            # {'mnli': ..., 'boolq': ...}
    report.totals()["total_cost"]       # summed epoch-equivalent cost
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.core.recall import CoarseRecall
from repro.core.results import (
    SelectionResult,
    TwoPhaseResult,
    aggregate_epoch_accounting,
)
from repro.core.selection import FineSelection
from repro.data.tasks import ClassificationTask
from repro.parallel.config import ParallelConfig
from repro.parallel.executor import Executor, ExecutorLike, get_executor
from repro.utils.exceptions import SelectionError
from repro.zoo.finetune import FineTuner

TargetLike = Union[str, ClassificationTask]


def build_phase_engines(
    artifacts, fine_tuner: FineTuner, *, parallel: ExecutorLike = None,
    extrapolation=None,
):
    """Construct the online-phase engine pair for one set of offline artifacts.

    Shared by :class:`BatchedSelectionRunner` and
    :class:`~repro.core.pipeline.TwoPhaseSelector` so the two entry points
    can never drift in how they wire :class:`CoarseRecall` and
    :class:`FineSelection`.  ``parallel`` (an executor, config or spec
    string) overrides ``artifacts.config.parallel`` as the executor both
    engines fan their inner loops out over.  ``extrapolation`` (an
    :class:`~repro.core.extrapolation.ExtrapolationConfig`) sets the fine
    selection's default speculative early-stopping mode; ``None`` is exact.
    """
    config = artifacts.config
    executor = get_executor(
        parallel if parallel is not None else getattr(config, "parallel", None)
    )
    recall = CoarseRecall(
        artifacts.hub,
        artifacts.matrix,
        artifacts.clustering,
        config=config.recall,
        executor=executor,
    )
    fine_selection = FineSelection(
        artifacts.hub,
        artifacts.matrix,
        fine_tuner,
        config=config.fine_selection,
        executor=executor,
        extrapolation=extrapolation,
    )
    return recall, fine_selection


def resolve_target_task(suite, target: TargetLike) -> ClassificationTask:
    """Resolve a target given by name or task object against ``suite``.

    Shared by :class:`BatchedSelectionRunner` and
    :class:`~repro.core.pipeline.TwoPhaseSelector`.
    """
    if isinstance(target, ClassificationTask):
        return target
    if target not in suite.dataset_names:
        raise SelectionError(
            f"unknown target dataset {target!r}; known: {suite.dataset_names}"
        )
    return suite.task(target)


@dataclass
class BatchSelectionReport:
    """Outcome of one batched multi-task selection run.

    Attributes
    ----------
    results:
        Per-target :class:`TwoPhaseResult`, keyed by target name in the
        order the targets were submitted.
    """

    results: Dict[str, TwoPhaseResult] = field(default_factory=dict)

    @property
    def target_names(self) -> List[str]:
        """Targets in submission order."""
        return list(self.results)

    def result_for(self, target_name: str) -> TwoPhaseResult:
        """Full two-phase result of one target."""
        if target_name not in self.results:
            raise SelectionError(
                f"no batch result for target {target_name!r}; "
                f"known: {self.target_names}"
            )
        return self.results[target_name]

    def selected_models(self) -> Dict[str, str]:
        """Selected checkpoint per target."""
        return {name: result.selected_model for name, result in self.results.items()}

    def selection_results(self) -> List[SelectionResult]:
        """The per-task fine-selection records (carrying the epoch accounting)."""
        return [result.selection for result in self.results.values()]

    def totals(self) -> Dict[str, float]:
        """Aggregated epoch accounting across every task in the batch.

        The proxy-inference cost of each task's recall phase is folded into
        its ``SelectionResult.extra_epoch_cost`` before aggregation, so
        ``totals()["total_cost"]`` is the batch's full epoch-equivalent bill.
        """
        return aggregate_epoch_accounting(self.selection_results())

    def summary(self) -> Dict[str, float]:
        """Compact numeric summary (totals plus the mean selected accuracy)."""
        totals = self.totals()
        if self.results:
            totals["mean_selected_accuracy"] = sum(
                result.selected_accuracy for result in self.results.values()
            ) / len(self.results)
        return totals


class BatchedSelectionRunner:
    """Run the two-phase pipeline for many target tasks off one clustering.

    Parameters
    ----------
    artifacts:
        Offline products (:class:`~repro.core.pipeline.OfflineArtifacts`)
        shared by every task in the batch — hub, suite, performance matrix,
        clustering and configuration.
    fine_tuner:
        Optional fine-tuning engine shared across tasks (a fresh seeded one
        is created otherwise).
    recall, fine_selection:
        Optional prebuilt engines (both or neither) — passed by
        :meth:`~repro.core.pipeline.TwoPhaseSelector.select_many` so batched
        queries reuse the selector's existing engines instead of
        constructing fresh ones per call.
    parallel:
        Executor, :class:`~repro.parallel.config.ParallelConfig` or spec
        string the batch's scheduler fans each round's training ops out
        over (and the engines their inner loops).  Defaults to
        ``artifacts.config.parallel``.  Every training step draws from a
        named per-``(model, task)`` random stream, so all backends return
        reports identical to the serial path.

    One :class:`~repro.core.recall.CoarseRecall` and one
    :class:`~repro.core.selection.FineSelection` instance are shared by
    every task, so the batch pays the offline cost exactly once regardless
    of its size.
    """

    def __init__(
        self,
        artifacts,
        *,
        fine_tuner: Optional[FineTuner] = None,
        seed: int = 0,
        recall: Optional[CoarseRecall] = None,
        fine_selection: Optional[FineSelection] = None,
        parallel: ExecutorLike = None,
    ) -> None:
        self.artifacts = artifacts
        self.fine_tuner = fine_tuner or FineTuner(seed=seed)
        if parallel is None:
            parallel = getattr(artifacts.config, "parallel", None)
        self._executor = get_executor(parallel)
        if (recall is None) != (fine_selection is None):
            raise SelectionError(
                "recall and fine_selection must be supplied together"
            )
        if recall is None:
            recall, fine_selection = build_phase_engines(
                artifacts, self.fine_tuner, parallel=self._executor
            )
        self._recall = recall
        self._fine_selection = fine_selection

    # ------------------------------------------------------------------ #
    @classmethod
    def from_hub(
        cls,
        hub,
        suite=None,
        *,
        config=None,
        fine_tuner: Optional[FineTuner] = None,
        seed: int = 0,
    ) -> "BatchedSelectionRunner":
        """Build the offline artifacts once and wrap them in a batch runner."""
        from repro.core.pipeline import OfflineArtifacts

        artifacts = OfflineArtifacts.build(
            hub, suite, config=config, fine_tuner=fine_tuner
        )
        return cls(artifacts, fine_tuner=fine_tuner, seed=seed)

    # ------------------------------------------------------------------ #
    def _resolve_task(self, target: TargetLike) -> ClassificationTask:
        return resolve_target_task(self.artifacts.suite, target)

    def run(
        self, targets: Sequence[TargetLike], *, top_k: Optional[int] = None
    ) -> BatchSelectionReport:
        """Select a checkpoint for every target task in the batch.

        The runner is a thin client of the epoch scheduler: every target is
        submitted as one request to a batch-scoped
        :class:`~repro.sched.scheduler.EpochScheduler` sharing this
        runner's engines, and the scheduler interleaves their epoch steps
        over the configured executor — so overlapping requests share
        partially-trained sessions through the
        :class:`~repro.sched.pool.SessionPool` instead of each training
        privately.  Results are collected in submission order and every
        per-target record is bitwise-identical to a serial
        :meth:`~repro.core.pipeline.TwoPhaseSelector.select` run; each
        task's recall proxy cost is recorded on its
        ``SelectionResult.extra_epoch_cost`` exactly as before.
        """
        from repro.sched.config import SchedulerConfig
        from repro.sched.scheduler import EpochScheduler

        tasks = [self._resolve_task(target) for target in targets]
        if not tasks:
            raise SelectionError("target batch must not be empty")
        seen: Dict[str, None] = {}
        for task in tasks:
            if task.name in seen:
                raise SelectionError(f"duplicate target {task.name!r} in batch")
            seen[task.name] = None

        # A bulk batch wants the fewest, fattest scheduling rounds: every
        # request is admitted at once and the unbounded epoch budget makes
        # each round one full stage wave — a single executor dispatch per
        # stage across the whole batch (fairness between requests that all
        # arrived together is moot).
        scheduler = EpochScheduler.for_artifacts(
            self.artifacts,
            fine_tuner=self.fine_tuner,
            recall=self._recall,
            fine_selection=self._fine_selection,
            config=SchedulerConfig(
                max_concurrent=len(tasks),
                max_queue=len(tasks),
                epoch_budget=None,
            ),
            parallel=self._executor,
        )
        requests = [scheduler.submit(task, top_k=top_k) for task in tasks]
        scheduler.run_until_idle()

        report = BatchSelectionReport()
        for task, request in zip(tasks, requests):
            report.results[task.name] = scheduler.result(request)
        return report
