"""Core two-phase recall-and-select framework (the paper's contribution).

The public API follows the paper's structure:

* **Offline** — :func:`~repro.core.performance.build_performance_matrix`
  fine-tunes every hub checkpoint on the benchmark datasets and records the
  :class:`~repro.core.performance.PerformanceMatrix` (final accuracies plus
  full convergence processes);
  :class:`~repro.core.model_clustering.ModelClusterer` groups checkpoints by
  the Eq. 1 performance similarity.
* **Coarse-recall** — :class:`~repro.core.recall.CoarseRecall` computes the
  per-cluster proxy score on the target dataset and the Eq. 2–4 recall
  scores, returning the top-K candidate checkpoints.
* **Fine-selection** — :class:`~repro.core.selection.FineSelection`
  (Algorithm 1) fine-tunes the recalled checkpoints with successive halving
  accelerated by convergence-trend prediction
  (:mod:`repro.core.convergence`); plain
  :class:`~repro.core.selection.SuccessiveHalving` and
  :class:`~repro.core.selection.BruteForceSelection` are the baselines.
* **End-to-end** — :class:`~repro.core.pipeline.TwoPhaseSelector` wires both
  phases behind one ``select(target)`` call;
  :class:`~repro.core.batch.BatchedSelectionRunner` answers a whole batch of
  target tasks off one shared clustering with aggregated epoch accounting.
"""

from repro.core.batch import BatchedSelectionRunner, BatchSelectionReport
from repro.core.config import (
    ClusteringConfig,
    FineSelectionConfig,
    PipelineConfig,
    RecallConfig,
    SimilarityConfig,
)
from repro.core.convergence import (
    ConvergenceTrend,
    ConvergenceTrendMiner,
    TrendSet,
)
from repro.core.extrapolation import (
    CurveBound,
    CurveExtrapolator,
    ExtrapolationConfig,
    resolve_extrapolation,
)
from repro.core.model_clustering import ModelClusterer, ModelClustering
from repro.core.performance import (
    PerformanceMatrix,
    build_performance_matrix,
    update_performance_matrix,
)
from repro.core.pipeline import OfflineArtifacts, RefreshResult, TwoPhaseSelector
from repro.core.plan import SelectionPlan, SessionView, StagePolicy, TrainStep
from repro.core.recall import CoarseRecall, RandomRecall
from repro.core.results import (
    RecallResult,
    SelectionResult,
    TwoPhaseResult,
    aggregate_epoch_accounting,
)
from repro.core.selection import (
    BruteForceSelection,
    FineSelection,
    SuccessiveHalving,
)
from repro.core.similarity import (
    performance_similarity,
    performance_similarity_matrix,
    performance_similarity_matrix_ooc,
    text_similarity_matrix,
    update_similarity_matrix,
    update_similarity_matrix_ooc,
)

__all__ = [
    "BatchSelectionReport",
    "BatchedSelectionRunner",
    "aggregate_epoch_accounting",
    "ClusteringConfig",
    "FineSelectionConfig",
    "PipelineConfig",
    "RecallConfig",
    "SimilarityConfig",
    "ConvergenceTrend",
    "ConvergenceTrendMiner",
    "TrendSet",
    "CurveBound",
    "CurveExtrapolator",
    "ExtrapolationConfig",
    "resolve_extrapolation",
    "ModelClusterer",
    "ModelClustering",
    "PerformanceMatrix",
    "build_performance_matrix",
    "update_performance_matrix",
    "OfflineArtifacts",
    "RefreshResult",
    "TwoPhaseSelector",
    "SelectionPlan",
    "SessionView",
    "StagePolicy",
    "TrainStep",
    "CoarseRecall",
    "RandomRecall",
    "RecallResult",
    "SelectionResult",
    "TwoPhaseResult",
    "BruteForceSelection",
    "FineSelection",
    "SuccessiveHalving",
    "performance_similarity",
    "performance_similarity_matrix",
    "performance_similarity_matrix_ooc",
    "text_similarity_matrix",
    "update_similarity_matrix",
    "update_similarity_matrix_ooc",
]
