"""Performance matrix: offline fine-tuning records of every checkpoint.

``Matrix(D, M)[i][j]`` is the test accuracy of model ``m_j`` fine-tuned on
benchmark dataset ``d_i`` (the paper's Section II definition).  Besides the
final accuracies, the builder keeps every full learning curve because the
fine-selection phase mines convergence trends from the same offline runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.workloads import WorkloadSuite
from repro.utils.exceptions import DataError, SelectionError
from repro.zoo.finetune import FineTuneConfig, FineTuner, LearningCurve
from repro.zoo.hub import ModelHub


@dataclass
class PerformanceMatrix:
    """Offline training record of a model repository on benchmark datasets.

    Attributes
    ----------
    dataset_names:
        Benchmark dataset names (rows).
    model_names:
        Checkpoint names (columns).
    values:
        ``(num_datasets, num_models)`` final test accuracies.
    curves:
        Full learning curves keyed by ``(model_name, dataset_name)``.
    epochs:
        Number of offline fine-tuning epochs per cell.
    train_fraction:
        Fraction of each benchmark training split the offline runs used
        (recorded so incremental updates can refuse to mix subsampled and
        full-data columns).
    """

    dataset_names: List[str]
    model_names: List[str]
    values: np.ndarray
    curves: Dict[Tuple[str, str], LearningCurve] = field(default_factory=dict)
    epochs: int = 5
    train_fraction: float = 1.0

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=float)
        expected = (len(self.dataset_names), len(self.model_names))
        if self.values.shape != expected:
            raise DataError(
                f"performance matrix shape {self.values.shape} does not match "
                f"datasets x models {expected}"
            )

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    def dataset_index(self, dataset_name: str) -> int:
        """Row index of ``dataset_name``."""
        try:
            return self.dataset_names.index(dataset_name)
        except ValueError:
            raise DataError(f"unknown benchmark dataset {dataset_name!r}") from None

    def model_index(self, model_name: str) -> int:
        """Column index of ``model_name``."""
        try:
            return self.model_names.index(model_name)
        except ValueError:
            raise DataError(f"unknown model {model_name!r}") from None

    def value(self, dataset_name: str, model_name: str) -> float:
        """``p(d_i | m_j)`` — accuracy of ``model_name`` on ``dataset_name``."""
        return float(
            self.values[self.dataset_index(dataset_name), self.model_index(model_name)]
        )

    def model_vector(self, model_name: str) -> np.ndarray:
        """``vec(m_j)``: the model's accuracies across all benchmark datasets."""
        return self.values[:, self.model_index(model_name)].copy()

    def average_accuracy(self, model_name: str) -> float:
        """``acc(m_j)``: mean benchmark accuracy (the Eq. 2 prior term)."""
        return float(np.mean(self.model_vector(model_name)))

    def average_accuracies(self) -> Dict[str, float]:
        """``acc(m_j)`` for every model."""
        return {name: self.average_accuracy(name) for name in self.model_names}

    def best_model_for(self, dataset_name: str) -> str:
        """Model with the maximum accuracy on ``dataset_name``."""
        row = self.values[self.dataset_index(dataset_name)]
        return self.model_names[int(np.argmax(row))]

    def curve(self, model_name: str, dataset_name: str) -> LearningCurve:
        """Full learning curve of ``(model, dataset)``."""
        key = (model_name, dataset_name)
        if key not in self.curves:
            raise DataError(f"no learning curve recorded for {key}")
        return self.curves[key]

    def curves_for_model(self, model_name: str) -> Dict[str, LearningCurve]:
        """All benchmark learning curves of ``model_name`` keyed by dataset."""
        if model_name not in self.model_names:
            raise DataError(f"unknown model {model_name!r}")
        return {
            dataset: self.curves[(model, dataset)]
            for (model, dataset) in self.curves
            if model == model_name
        }

    def submatrix(self, model_names: Sequence[str]) -> "PerformanceMatrix":
        """Restriction of the matrix to ``model_names`` (keeping all datasets)."""
        indices = [self.model_index(name) for name in model_names]
        curves = {
            key: curve for key, curve in self.curves.items() if key[0] in set(model_names)
        }
        return PerformanceMatrix(
            dataset_names=list(self.dataset_names),
            model_names=list(model_names),
            values=self.values[:, indices].copy(),
            curves=curves,
            epochs=self.epochs,
            train_fraction=self.train_fraction,
        )

    # ------------------------------------------------------------------ #
    # (de)serialisation — lets the expensive offline phase be cached on disk
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """JSON-serialisable representation (including learning curves)."""
        return {
            "dataset_names": list(self.dataset_names),
            "model_names": list(self.model_names),
            "values": self.values.tolist(),
            "epochs": self.epochs,
            "train_fraction": self.train_fraction,
            "curves": [
                {
                    "model": model,
                    "dataset": dataset,
                    "val_accuracy": curve.val_accuracy,
                    "test_accuracy": curve.test_accuracy,
                    "train_loss": curve.train_loss,
                }
                for (model, dataset), curve in self.curves.items()
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PerformanceMatrix":
        """Inverse of :meth:`to_dict`."""
        curves = {}
        for record in payload.get("curves", []):
            curve = LearningCurve(
                model_name=record["model"],
                dataset_name=record["dataset"],
                val_accuracy=list(record["val_accuracy"]),
                test_accuracy=list(record["test_accuracy"]),
                train_loss=list(record.get("train_loss", [])),
            )
            curves[(curve.model_name, curve.dataset_name)] = curve
        return cls(
            dataset_names=list(payload["dataset_names"]),
            model_names=list(payload["model_names"]),
            values=np.asarray(payload["values"], dtype=float),
            curves=curves,
            epochs=int(payload.get("epochs", 5)),
            train_fraction=float(payload.get("train_fraction", 1.0)),
        )

    def to_json(self) -> str:
        """JSON string of :meth:`to_dict`."""
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "PerformanceMatrix":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))


def build_performance_matrix(
    hub: ModelHub,
    suite: Optional[WorkloadSuite] = None,
    *,
    fine_tuner: Optional[FineTuner] = None,
    epochs: Optional[int] = None,
    train_fraction: float = 1.0,
    benchmark_names: Optional[Sequence[str]] = None,
) -> PerformanceMatrix:
    """Fine-tune every hub checkpoint on every benchmark dataset.

    This is the paper's offline phase (40x24 runs for NLP, 30x10 for CV).
    ``train_fraction`` optionally subsamples each benchmark training split,
    matching the paper's observation that a subset of the training data is
    enough to compare relative accuracies.
    """
    suite = suite or hub.suite
    if suite.modality != hub.modality:
        raise SelectionError(
            f"hub modality {hub.modality!r} does not match suite {suite.modality!r}"
        )
    tuner = fine_tuner or FineTuner(FineTuneConfig(), seed=0)
    num_epochs = epochs if epochs is not None else (5 if hub.modality == "nlp" else 4)
    dataset_names = list(benchmark_names) if benchmark_names else list(suite.benchmark_names)
    model_names = hub.model_names

    values = np.zeros((len(dataset_names), len(model_names)))
    curves: Dict[Tuple[str, str], LearningCurve] = {}
    subsample_rng = np.random.default_rng(0)
    for column, model_name in enumerate(model_names):
        model = hub.get(model_name)
        for row, dataset_name in enumerate(dataset_names):
            task = suite.task(dataset_name)
            if train_fraction < 1.0:
                task = _with_subsampled_train(task, train_fraction, subsample_rng)
            curve = tuner.fine_tune(model, task, epochs=num_epochs)
            values[row, column] = curve.final_test
            curves[(model_name, dataset_name)] = curve
    return PerformanceMatrix(
        dataset_names=dataset_names,
        model_names=model_names,
        values=values,
        curves=curves,
        epochs=num_epochs,
        train_fraction=float(train_fraction),
    )


def update_performance_matrix(
    old: PerformanceMatrix,
    hub: ModelHub,
    suite: Optional[WorkloadSuite] = None,
    *,
    fine_tuner: Optional[FineTuner] = None,
    epochs: Optional[int] = None,
) -> PerformanceMatrix:
    """Performance matrix of an updated ``hub``, fine-tuning only new models.

    ``hub`` is the repository *after* an add/remove update
    (:meth:`~repro.zoo.hub.ModelHub.with_changes`); ``old`` is the matrix of
    the previous epoch.  Columns of surviving models are copied, columns of
    removed models are dropped, and only the added models are fine-tuned on
    the benchmarks — ``O(n_added * d)`` runs instead of ``O(n * d)``.

    Fine-tuning randomness is keyed per ``(model, dataset)`` pair (named
    random streams), so the result is bitwise-identical to
    :func:`build_performance_matrix` over the updated hub with the same
    ``fine_tuner`` seed; the property suite enforces this.  Matrices built
    with ``train_fraction < 1`` are rejected: their offline runs subsampled
    the training splits with a *sequential* (order-dependent) stream, so
    copied and fresh columns could not be comparable — rebuild from scratch
    instead.
    """
    suite = suite or hub.suite
    if suite.modality != hub.modality:
        raise SelectionError(
            f"hub modality {hub.modality!r} does not match suite {suite.modality!r}"
        )
    if old.train_fraction != 1.0:
        raise SelectionError(
            f"incremental update requires a full-data offline matrix, got "
            f"train_fraction={old.train_fraction}; rebuild from scratch instead"
        )
    num_epochs = epochs if epochs is not None else old.epochs
    if num_epochs != old.epochs:
        raise SelectionError(
            f"incremental update must keep the offline budget ({old.epochs} "
            f"epochs), got {num_epochs}; rebuild from scratch instead"
        )
    dataset_names = list(old.dataset_names)
    model_names = hub.model_names
    old_index = {name: i for i, name in enumerate(old.model_names)}

    tuner = fine_tuner or FineTuner(FineTuneConfig(), seed=0)
    values = np.zeros((len(dataset_names), len(model_names)))
    curves: Dict[Tuple[str, str], LearningCurve] = {}
    kept = set()
    for column, model_name in enumerate(model_names):
        if model_name in old_index:
            values[:, column] = old.values[:, old_index[model_name]]
            kept.add(model_name)
            continue
        model = hub.get(model_name)
        for row, dataset_name in enumerate(dataset_names):
            task = suite.task(dataset_name)
            curve = tuner.fine_tune(model, task, epochs=num_epochs)
            values[row, column] = curve.final_test
            curves[(model_name, dataset_name)] = curve
    curves.update(
        {key: curve for key, curve in old.curves.items() if key[0] in kept}
    )
    return PerformanceMatrix(
        dataset_names=dataset_names,
        model_names=model_names,
        values=values,
        curves=curves,
        epochs=num_epochs,
    )


def _with_subsampled_train(task, fraction: float, rng: np.random.Generator):
    """Clone ``task`` with a subsampled training split (val/test untouched)."""
    from repro.data.tasks import ClassificationTask

    return ClassificationTask(
        task.spec,
        train=task.train.subsample(fraction, rng),
        val=task.val,
        test=task.test,
    )
