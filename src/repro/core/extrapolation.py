"""Speculative early stopping via learning-curve extrapolation.

The exact online phase spends ``total_epochs`` on every arm that survives
halving.  But the offline phase already recorded how each candidate's
validation curves *behave*: :mod:`repro.core.convergence` clusters them
into trends (Eq. 5/6) and predicts final accuracy from an early reading.
:class:`CurveExtrapolator` turns that machinery into a conservative
**upper bound** on where an arm's curve can still go, and the plan's
pre-stage pruning hook (:meth:`repro.core.plan.StagePolicy
.prune_before_stage`) retires arms whose bound cannot beat the current
rung leader — charging only the epochs actually trained.

The bound intersects two independent ceiling estimates.  For an arm
observed at validation accuracy ``v`` after ``t`` epochs it is::

    upper(v, t) = max(v, min(trend_predict(v),           # Eq. 5/6 ceiling
                             v + max_remaining_gain(t))) # benchmark gain cap
                  + slack

where ``max_remaining_gain(t)`` is the largest future improvement any of
the model's *benchmark* curves ever achieved after epoch ``t``.  The
``min`` keeps whichever estimator is tighter at this rung (the gain cap
shrinks as ``t`` grows, the trend ceiling as the rung leader pulls away);
the outer ``max`` floors the bound at the already-observed value so it is
monotone — speculation can never claim an arm will *lose* accuracy it has
already banked.  ``slack`` is the one-sided safety margin: an arm is only
retired when even its slack-padded ceiling falls strictly below the
leader's trajectory, and the realised regret of every such call is
recorded in ``SelectionResult.extras`` (the budget-honesty layer) rather
than assumed to be zero.  A model with no offline curves is never pruned
(its bound is infinite).

Everything here is deterministic: bounds are pure functions of the
recorded curves, so a crash/resume replay re-derives the identical prune
set (see ``tests/faultinject/test_crash_resume.py``).  Speculation is
**off by default**; the ``--exact`` mode is simply this config absent,
which keeps results bitwise-identical to the paper-faithful path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.core.convergence import ConvergenceTrendMiner
from repro.utils.exceptions import ConfigurationError
from repro.zoo.finetune import LearningCurve


@dataclass(frozen=True)
class ExtrapolationConfig:
    """Knobs of the speculative early-stopping layer.

    Attributes
    ----------
    enabled:
        Master switch.  ``False`` (the default) is exact mode: no pruning
        hook fires and every result is bitwise-identical to the
        paper-faithful path.
    min_stages:
        Number of *completed* stages required before pruning may fire —
        at least one validation reading must exist.
    slack:
        Additive safety margin on the upper bound.  Larger values prune
        less and bound the achievable regret more tightly (an arm is only
        pruned when its slack-padded ceiling is strictly below the
        leader's trajectory — ``max(observed, predicted)`` accuracy).
    num_trends:
        Trend count for the Eq. 5/6 miner backing the bound.
    """

    enabled: bool = False
    min_stages: int = 1
    slack: float = 0.01
    num_trends: int = 4

    def __post_init__(self) -> None:
        if self.min_stages < 1:
            raise ConfigurationError("min_stages must be >= 1")
        if self.slack < 0:
            raise ConfigurationError("slack must be >= 0")
        if self.num_trends < 1:
            raise ConfigurationError("num_trends must be >= 1")

    def fingerprint(self) -> str:
        """Stable identity string (part of the plan key when enabled)."""
        return (
            f"extrap:v1:min={self.min_stages}:slack={self.slack!r}:"
            f"trends={self.num_trends}"
        )


@dataclass(frozen=True)
class CurveBound:
    """Conservative ceiling of one arm's curve at one decision point."""

    model: str
    stage_epoch: int
    observed_val: float
    predicted_final: float
    upper_bound: float


def max_remaining_gain(
    curves: Mapping[str, LearningCurve], stage_epoch: int
) -> float:
    """Largest validation gain any benchmark curve achieved after ``stage_epoch``.

    ``stage_epoch`` is 1-based (like :meth:`LearningCurve.val_at`); curves
    shorter than it contribute nothing — their future is already recorded
    as flat.  The result is clipped at zero so a universally declining
    model still gets a monotone (non-negative) remaining-gain bound.
    """
    gain = 0.0
    for curve in curves.values():
        values = curve.val_accuracy
        if not values:
            continue
        index = min(max(int(stage_epoch), 1), len(values)) - 1
        here = values[index]
        future = max(values[index:])
        gain = max(gain, future - here)
    return max(0.0, gain)


class CurveExtrapolator:
    """Upper-bounds an arm's final accuracy from its offline benchmark curves.

    Stateless with respect to any single request (bounds are pure
    functions of the performance matrix), so one extrapolator can serve
    many concurrent plans — mirroring :class:`~repro.core.plan.StagePolicy`.
    """

    def __init__(
        self,
        matrix,
        *,
        config: Optional[ExtrapolationConfig] = None,
        trend_miner: Optional[ConvergenceTrendMiner] = None,
    ) -> None:
        self.matrix = matrix
        self.config = config or ExtrapolationConfig(enabled=True)
        self.trend_miner = trend_miner or ConvergenceTrendMiner(
            num_trends=self.config.num_trends
        )

    def bound(
        self, model: str, observed_val: float, *, stage_epoch: int
    ) -> CurveBound:
        """Conservative ceiling for ``model`` observed at ``observed_val``.

        ``stage_epoch`` is the 1-based number of epochs the requesting plan
        has trained the arm through.  Without offline curves the bound is
        infinite — no evidence, no speculation.
        """
        curves = self.matrix.curves_for_model(model)
        if not curves:
            return CurveBound(
                model=model,
                stage_epoch=int(stage_epoch),
                observed_val=float(observed_val),
                predicted_final=float(observed_val),
                upper_bound=float("inf"),
            )
        trend_set = self.trend_miner.mine(model, curves, stage=stage_epoch)
        predicted = float(trend_set.predict(observed_val))
        gain_cap = float(observed_val) + max_remaining_gain(curves, stage_epoch)
        ceiling = max(float(observed_val), min(predicted, gain_cap))
        return CurveBound(
            model=model,
            stage_epoch=int(stage_epoch),
            observed_val=float(observed_val),
            predicted_final=predicted,
            upper_bound=ceiling + self.config.slack,
        )


def resolve_extrapolation(value=None) -> Optional[ExtrapolationConfig]:
    """Normalise the per-request ``extrapolate`` argument.

    Accepts ``None`` (inherit the caller's default), booleans (``True`` →
    a default-knobs enabled config, ``False`` → exact mode) or an explicit
    :class:`ExtrapolationConfig`.
    """
    if value is None or isinstance(value, ExtrapolationConfig):
        return value
    if value is True:
        return ExtrapolationConfig(enabled=True)
    if value is False:
        return ExtrapolationConfig(enabled=False)
    raise ConfigurationError(
        f"extrapolate must be None, a bool or an ExtrapolationConfig, "
        f"got {value!r}"
    )


def prune_payload(records: Dict[str, Dict[str, object]]) -> Dict[str, object]:
    """Aggregate per-arm prune records into the ``extras`` payload shape."""
    return {
        "pruned": {name: dict(record) for name, record in records.items()},
        "epochs_saved": float(
            sum(float(record["epochs_saved"]) for record in records.values())
        ),
    }
