"""Model clustering and representative selection (coarse-recall, offline part).

Checkpoints are clustered on their performance-matrix row vectors using the
Eq. 1 similarity (or the text baseline) with either hierarchical clustering
(paper default) or k-means.  Each non-singleton cluster elects the member
with the highest average benchmark accuracy as its *representative model*;
the coarse-recall phase computes proxy scores only for these representatives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.cache import CacheLike, resolve_cache
from repro.cluster.assignments import ClusterAssignment
from repro.cluster.distance import (
    distance_matrix_for,
    distance_memmap_for,
    similarity_to_distance,
    upper_triangle_values,
)
from repro.cluster.hierarchical import AgglomerativeClustering
from repro.cluster.kmeans import KMeans
from repro.cluster.nnchain import NNChainClustering
from repro.cluster.silhouette import silhouette_score
from repro.core.config import ClusteringConfig, SimilarityConfig
from repro.core.performance import PerformanceMatrix
from repro.core.similarity import (
    performance_similarity_matrix_ooc,
    similarity_matrix_for,
)
from repro.store import resolve_store
from repro.utils.exceptions import DataError, SelectionError

#: Silhouette diagnostics are skipped past this repository size: the score
#: is an ``O(n^2 x clusters)`` reporting extra, not an input of selection,
#: and at out-of-core scale it would dominate the offline phase.  The cap
#: applies identically to the in-RAM and out-of-core paths so their
#: clusterings stay comparable field-for-field.
SILHOUETTE_MAX_MODELS = 2048


@dataclass
class ModelClustering:
    """Result of clustering a model repository.

    Attributes
    ----------
    assignment:
        Cluster membership of every model.
    similarity:
        The model-similarity matrix the clustering was computed from
        (aligned with ``assignment.item_names``).
    representatives:
        Representative model per non-singleton cluster id.
    config:
        The clustering configuration used.
    """

    assignment: ClusterAssignment
    similarity: np.ndarray
    representatives: Dict[int, str]
    config: ClusteringConfig
    silhouette: Optional[float] = None
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def model_names(self) -> List[str]:
        """Clustered model names."""
        return list(self.assignment.item_names)

    def cluster_of(self, model_name: str) -> int:
        """Cluster id of ``model_name``."""
        return self.assignment.cluster_of(model_name)

    def cluster_members(self, cluster_id: int) -> List[str]:
        """Members of ``cluster_id``."""
        return self.assignment.members(cluster_id)

    def non_singleton_clusters(self) -> Dict[int, List[str]]:
        """Clusters with more than one member."""
        return self.assignment.non_singleton_clusters()

    def singleton_models(self) -> List[str]:
        """Models alone in their cluster."""
        return self.assignment.singleton_items()

    def representative_of(self, cluster_id: int) -> str:
        """Representative model of a non-singleton cluster."""
        if cluster_id not in self.representatives:
            raise SelectionError(
                f"cluster {cluster_id} has no representative (singleton cluster?)"
            )
        return self.representatives[cluster_id]

    def is_singleton(self, model_name: str) -> bool:
        """Whether ``model_name`` sits in a singleton cluster."""
        cluster_id = self.cluster_of(model_name)
        return len(self.cluster_members(cluster_id)) == 1

    def similarity_between(self, model_a: str, model_b: str) -> float:
        """Similarity of two models as used by the clustering."""
        names = self.model_names
        try:
            index_a, index_b = names.index(model_a), names.index(model_b)
        except ValueError as error:
            raise DataError(f"unknown model: {error}") from None
        return float(self.similarity[index_a, index_b])

    def summary(self) -> Dict[str, float]:
        """Small numeric summary used by experiments and logging."""
        non_singleton = self.non_singleton_clusters()
        return {
            "num_models": float(len(self.model_names)),
            "num_clusters": float(self.assignment.num_clusters),
            "num_non_singleton_clusters": float(len(non_singleton)),
            "num_models_in_non_singleton": float(
                sum(len(members) for members in non_singleton.values())
            ),
            "silhouette": float(self.silhouette) if self.silhouette is not None else float("nan"),
        }


class ModelClusterer:
    """Clusters a model repository from its performance matrix."""

    def __init__(self, config: Optional[ClusteringConfig] = None, *, seed: int = 0) -> None:
        self.config = config or ClusteringConfig()
        self._seed = int(seed)

    def cluster(
        self,
        matrix: PerformanceMatrix,
        *,
        model_cards: Optional[Dict[str, str]] = None,
        similarity: Optional[np.ndarray] = None,
        distance: Optional[np.ndarray] = None,
        cache: CacheLike = None,
        similarity_config: Optional[SimilarityConfig] = None,
    ) -> ModelClustering:
        """Cluster the models of ``matrix`` according to the configuration.

        Both the similarity matrix and its distance conversion are served
        from the artifact cache when available (``cache=False`` opts out).
        A precomputed ``similarity`` (aligned with ``matrix.model_names``,
        e.g. from an incremental update) skips the similarity computation
        and the cache entirely; ``distance`` optionally supplies its
        (possibly memmapped) conversion so no caller-side work is repeated.

        When ``similarity_config`` is given and the repository crosses its
        spill threshold, the similarity and distance matrices are computed
        **out-of-core**: streamed tile-by-tile into memory-mapped files in
        the matrix store and clustered without ever densifying — the
        resulting clustering is bitwise-identical to the in-RAM path (see
        ``docs/scaling.md``), and ``extras["ooc"]`` records the spill.

        The returned clustering records the effective hierarchical merge
        threshold and a zeroed incremental-staleness counter in ``extras``;
        :func:`repro.cluster.incremental.update_clustering` consumes both.
        """
        if len(matrix.model_names) < 2:
            raise SelectionError("model clustering requires at least two models")
        work_store = None
        spilled = False
        if similarity is not None:
            spilled = isinstance(similarity, np.memmap)
            if distance is None:
                if (
                    spilled
                    and similarity_config is not None
                    and self._is_canonical_spill(similarity, matrix, similarity_config)
                ):
                    # Keep a memmapped similarity out-of-core end to end:
                    # the dense 1 - s conversion would allocate the full
                    # 8 n^2 bytes the spill exists to avoid.  Guarded to
                    # the canonical store entry so a *custom* similarity
                    # can never populate the canonical distance key.
                    distance = distance_memmap_for(
                        matrix,
                        similarity,
                        top_k=self.config.top_k,
                        config=similarity_config,
                    )
                else:
                    distance = similarity_to_distance(similarity)
            if similarity_config is not None and isinstance(distance, np.memmap):
                work_store = resolve_store(similarity_config.store_dir)
        elif (
            similarity_config is not None
            and self.config.similarity == "performance"
            and similarity_config.should_spill(len(matrix.model_names))
        ):
            similarity = performance_similarity_matrix_ooc(
                matrix,
                top_k=self.config.top_k,
                config=similarity_config,
                cache=cache,
            )
            distance = distance_memmap_for(
                matrix,
                similarity,
                top_k=self.config.top_k,
                config=similarity_config,
            )
            work_store = resolve_store(similarity_config.store_dir)
            spilled = True
        else:
            similarity = similarity_matrix_for(
                matrix,
                method=self.config.similarity,
                top_k=self.config.top_k,
                model_cards=model_cards,
                cache=cache,
            )
            if resolve_cache(cache) is not None:
                # Cache-backed path: the conversion is memoised under its own
                # key, so a repeat clustering resolves with one lookup.
                distance = distance_matrix_for(
                    matrix,
                    method=self.config.similarity,
                    top_k=self.config.top_k,
                    model_cards=model_cards,
                    cache=cache,
                )
            else:
                distance = similarity_to_distance(similarity)
        labels, threshold = self._run_algorithm(distance, work_store=work_store)
        assignment = ClusterAssignment.from_labels(matrix.model_names, labels)
        representatives = self._elect_representatives(assignment, matrix)
        extras: Dict[str, float] = {"stale_models": 0.0}
        score = self._safe_silhouette(distance, assignment.labels, extras=extras)
        if threshold is not None:
            extras["distance_threshold"] = float(threshold)
        if spilled:
            extras["ooc"] = 1.0
        return ModelClustering(
            assignment=assignment,
            similarity=similarity,
            representatives=representatives,
            config=self.config,
            silhouette=score,
            extras=extras,
        )

    def _is_canonical_spill(
        self,
        similarity: np.memmap,
        matrix: PerformanceMatrix,
        similarity_config: SimilarityConfig,
    ) -> bool:
        """Whether ``similarity`` is the store's canonical Eq. 1 entry."""
        from pathlib import Path

        from repro.cache import similarity_key

        store = resolve_store(similarity_config.store_dir)
        canonical = store.path_for(
            similarity_key(matrix, method="performance", top_k=self.config.top_k)
        )
        filename = getattr(similarity, "filename", None)
        try:
            return filename is not None and Path(filename).resolve() == canonical.resolve()
        except OSError:  # pragma: no cover - unresolvable paths
            return False

    # ------------------------------------------------------------------ #
    def _run_algorithm(self, distance: np.ndarray, *, work_store=None):
        """Run the configured algorithm; returns ``(labels, merge_threshold)``.

        The effective merge threshold (explicit or quantile-derived) is
        surfaced so incremental updates can reuse the exact same join
        criterion; it is ``None`` for k-means and count-capped hierarchies.
        """
        if self.config.method == "hierarchical":
            threshold = self.config.distance_threshold
            if threshold is None and self.config.num_clusters is None:
                # Data-driven default: merge pairs closer than the configured
                # quantile of all pairwise distances.  This yields the
                # paper-like mix of non-singleton and singleton clusters on
                # both the NLP and CV repositories without hand tuning.
                # (upper_triangle_values streams memmapped matrices and is
                # value- and order-identical to the triu indexing it
                # replaced, so the quantile is bitwise-stable.)
                off_diagonal = upper_triangle_values(distance)
                threshold = float(np.quantile(off_diagonal, self.config.threshold_quantile))
            engine = (
                NNChainClustering
                if self.config.algorithm == "nnchain"
                else AgglomerativeClustering
            )
            algorithm = engine(
                num_clusters=self.config.num_clusters,
                distance_threshold=threshold,
                linkage=self.config.linkage,
            )
            return algorithm.fit_predict(distance, work_store=work_store), threshold
        # k-means operates on vector embeddings; use the rows of the distance
        # matrix as embedding coordinates (classical MDS-free shortcut that
        # preserves the neighbourhood structure well enough for Table I).
        num_clusters = self.config.num_clusters or max(2, distance.shape[0] // 4)
        kmeans = KMeans(num_clusters, rng=np.random.default_rng(self._seed))
        return kmeans.fit_predict(distance), None

    @staticmethod
    def _elect_representatives(
        assignment: ClusterAssignment, matrix: PerformanceMatrix
    ) -> Dict[int, str]:
        """Pick the member with the highest average benchmark accuracy."""
        representatives: Dict[int, str] = {}
        for cluster_id, members in assignment.non_singleton_clusters().items():
            best = max(members, key=matrix.average_accuracy)
            representatives[cluster_id] = best
        return representatives

    @staticmethod
    def _safe_silhouette(
        distance: np.ndarray,
        labels: np.ndarray,
        *,
        extras: Optional[Dict[str, float]] = None,
    ) -> Optional[float]:
        """Silhouette score, or ``None`` when it cannot / should not run.

        Past :data:`SILHOUETTE_MAX_MODELS` the skip is recorded as
        ``extras["silhouette_skipped"] = 1.0`` (when a dict is supplied)
        so an out-of-core clustering reports *why* its silhouette is
        missing instead of silently dropping the diagnostic; degenerate
        label sets (fewer than two clusters, or all singletons) stay a
        plain ``None`` — there the score is undefined, not skipped.
        """
        if distance.shape[0] > SILHOUETTE_MAX_MODELS:
            if extras is not None:
                extras["silhouette_skipped"] = 1.0
            return None
        if extras is not None:
            extras.pop("silhouette_skipped", None)
        unique = set(labels.tolist())
        if len(unique) < 2 or len(unique) >= distance.shape[0]:
            return None
        return silhouette_score(distance, labels)
