"""Result records returned by the recall and selection phases.

:class:`RecallResult` carries the Eq. 2–4 recall scores of the paper's
coarse-recall phase; :class:`SelectionResult` and :class:`TwoPhaseResult`
carry the epoch accounting of Algorithm 1 in the cost unit of the paper's
Tables V/VI (fine-tuning epochs, plus proxy inference charged at half an
epoch per scored representative in ``extra_epoch_cost``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional


@dataclass
class RecallResult:
    """Outcome of the coarse-recall phase for one target task.

    Attributes
    ----------
    target_name:
        Target dataset name.
    recalled_models:
        Top-K model names ordered by decreasing recall score.
    recall_scores:
        Eq. 2-4 recall score per model (all repository models).
    proxy_scores:
        Normalised proxy score per *representative* model actually scored.
    raw_proxy_scores:
        Unnormalised proxy scores per representative model.
    epoch_cost:
        Epoch-equivalent cost charged for the proxy computations.
    """

    target_name: str
    recalled_models: List[str]
    recall_scores: Dict[str, float]
    proxy_scores: Dict[str, float] = field(default_factory=dict)
    raw_proxy_scores: Dict[str, float] = field(default_factory=dict)
    epoch_cost: float = 0.0

    @property
    def top_model(self) -> str:
        """Highest-scoring recalled model."""
        return self.recalled_models[0]

    def rank_of(self, model_name: str) -> Optional[int]:
        """0-based rank of ``model_name`` among the recalled models (None if absent)."""
        try:
            return self.recalled_models.index(model_name)
        except ValueError:
            return None


@dataclass
class StageRecord:
    """One filtering stage of a selection run."""

    stage: int
    surviving_models: List[str]
    validation_accuracy: Dict[str, float]
    predicted_accuracy: Dict[str, float] = field(default_factory=dict)
    removed_by_trend: List[str] = field(default_factory=list)
    removed_by_halving: List[str] = field(default_factory=list)


@dataclass
class SelectionResult:
    """Outcome of one selection algorithm (BF / SH / FS) on one target task.

    ``runtime_epochs`` counts fine-tuning epochs exactly as the paper's
    Tables V/VI do; ``extra_epoch_cost`` carries non-training costs such as
    the proxy-score inference of the coarse-recall phase.  ``extras`` holds
    optional, JSON-friendly side records — today the speculative
    early-stopping layer's prune/regret accounting (see
    :mod:`repro.core.extrapolation`); it stays empty on the exact path, so
    exact-mode results are unchanged by its existence.
    """

    method: str
    target_name: str
    selected_model: str
    selected_accuracy: float
    selected_val_accuracy: float
    runtime_epochs: float
    num_candidates: int
    stages: List[StageRecord] = field(default_factory=list)
    final_accuracies: Dict[str, float] = field(default_factory=dict)
    extra_epoch_cost: float = 0.0
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def total_cost(self) -> float:
        """Fine-tuning epochs plus any extra epoch-equivalent cost."""
        return float(self.runtime_epochs) + float(self.extra_epoch_cost)

    def speedup_over(self, other: "SelectionResult") -> float:
        """How many times cheaper this run is than ``other``."""
        if self.total_cost <= 0:
            return float("inf")
        return other.total_cost / self.total_cost


@dataclass
class TwoPhaseResult:
    """End-to-end outcome of the two-phase (coarse-recall + fine-selection) run."""

    target_name: str
    recall: RecallResult
    selection: SelectionResult

    @property
    def selected_model(self) -> str:
        """Final selected checkpoint."""
        return self.selection.selected_model

    @property
    def selected_accuracy(self) -> float:
        """Test accuracy of the selected checkpoint after full fine-tuning."""
        return self.selection.selected_accuracy

    @property
    def total_cost(self) -> float:
        """Total epoch-equivalent cost (proxy inference + fine-tuning)."""
        return self.selection.runtime_epochs + self.recall.epoch_cost


def aggregate_epoch_accounting(results: Iterable[SelectionResult]) -> Dict[str, float]:
    """Sum the epoch accounting of several :class:`SelectionResult` records.

    Returns the totals a batch run reports (the cost unit of the paper's
    Tables V/VI): fine-tuning epochs, extra epoch-equivalent costs (proxy
    inference), their sum, and the number of tasks aggregated.
    """
    totals = {
        "num_tasks": 0.0,
        "runtime_epochs": 0.0,
        "extra_epoch_cost": 0.0,
        "total_cost": 0.0,
    }
    for result in results:
        totals["num_tasks"] += 1.0
        totals["runtime_epochs"] += float(result.runtime_epochs)
        totals["extra_epoch_cost"] += float(result.extra_epoch_cost)
        totals["total_cost"] += result.total_cost
    return totals
