"""repro — reproduction of the two-phase recall-and-select model-selection framework.

The package reproduces *"A Two-Phase Recall-and-Select Framework for Fast
Model Selection"* (ICDE 2024) end to end on a simulated, laptop-scale model
zoo:

* :mod:`repro.data` — synthetic benchmark/target task suites,
* :mod:`repro.zoo` — the simulated pre-trained checkpoint hub and the
  fine-tuning engine,
* :mod:`repro.metrics` — LEEP and other transferability proxy scores,
* :mod:`repro.cluster` / :mod:`repro.text` — clustering and text-embedding
  substrates,
* :mod:`repro.core` — the two-phase framework itself (performance matrix,
  model clustering, coarse-recall, convergence-trend mining, fine-selection,
  baselines, end-to-end pipeline),
* :mod:`repro.experiments` — harnesses regenerating every table and figure
  of the paper's evaluation section,
* :mod:`repro.parallel` — executor backends (serial/thread/process) the
  online hot paths fan out over,
* :mod:`repro.sched` — the epoch-granular scheduler multiplexing concurrent
  selection requests over a shared training budget with pooled
  fine-tuning sessions (see ``docs/serving.md``),
* :mod:`repro.store` — memory-mapped matrix store backing the out-of-core
  offline phase once zoos outgrow RAM (see ``docs/scaling.md``),
* :mod:`repro.service` — the long-lived :class:`~repro.service.SelectionService`
  answering many requests off one warm offline phase (the CLI front-end is
  ``python -m repro``, see ``docs/cli.md``).

Quickstart::

    from repro.data import nlp_suite
    from repro.zoo import ModelHub
    from repro.core import TwoPhaseSelector

    suite = nlp_suite(seed=0)
    hub = ModelHub(suite, seed=0)
    selector = TwoPhaseSelector.from_hub(hub, suite)
    result = selector.select("mnli")
    print(result.selected_model, result.selected_accuracy, result.total_cost)
"""

from repro.core import (
    BatchedSelectionRunner,
    BatchSelectionReport,
    BruteForceSelection,
    CoarseRecall,
    FineSelection,
    OfflineArtifacts,
    PerformanceMatrix,
    PipelineConfig,
    SimilarityConfig,
    SuccessiveHalving,
    TwoPhaseResult,
    TwoPhaseSelector,
    build_performance_matrix,
)
from repro.data import DataScale, WorkloadSuite, cv_suite, nlp_suite
from repro.parallel import ParallelConfig
from repro.sched import EpochScheduler, SchedulerConfig, SessionPool
from repro.service import SelectionService
from repro.store import MatrixStore
from repro.zoo import FineTuner, ModelHub

__version__ = "1.2.0"

__all__ = [
    "BatchSelectionReport",
    "BatchedSelectionRunner",
    "BruteForceSelection",
    "CoarseRecall",
    "FineSelection",
    "OfflineArtifacts",
    "PerformanceMatrix",
    "PipelineConfig",
    "SimilarityConfig",
    "SuccessiveHalving",
    "TwoPhaseResult",
    "TwoPhaseSelector",
    "build_performance_matrix",
    "DataScale",
    "WorkloadSuite",
    "cv_suite",
    "nlp_suite",
    "FineTuner",
    "MatrixStore",
    "ModelHub",
    "ParallelConfig",
    "SelectionService",
    "__version__",
]
