"""MLP classifier with mini-batch training and epoch-level evaluation.

This is the workhorse used by :mod:`repro.zoo.finetune` to attach a new
classification head on top of a pre-trained encoder and fine-tune it on a
target dataset, recording a per-epoch validation/test curve (the paper's
"convergence process").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.nn.layers import Dropout, Linear, Relu, Sequential, Tanh
from repro.nn.losses import softmax, softmax_cross_entropy_stats
from repro.nn.metrics import accuracy
from repro.nn.optim import Optimizer, build_optimizer
from repro.utils.exceptions import ConfigurationError, DataError
from repro.utils.rng import as_generator


@dataclass
class TrainingHistory:
    """Per-epoch record of a single training run."""

    train_loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    val_accuracy: List[float] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        """Number of completed epochs."""
        return len(self.train_loss)


class MLPClassifier:
    """Multi-layer perceptron with a softmax output layer.

    Parameters
    ----------
    input_dim:
        Dimensionality of the input features.
    num_classes:
        Number of output classes.
    hidden_dims:
        Sizes of hidden layers (empty tuple gives a linear/softmax model).
    activation:
        ``"relu"`` or ``"tanh"``.
    dropout:
        Dropout rate applied after each hidden activation.
    l2:
        L2 penalty applied to linear-layer weights.
    optimizer / learning_rate:
        Optimiser name (``sgd``/``momentum``/``adam``) and step size.
    rng:
        Seed or generator controlling initialisation, shuffling and dropout.
    """

    def __init__(
        self,
        input_dim: int,
        num_classes: int,
        *,
        hidden_dims: Sequence[int] = (),
        activation: str = "relu",
        dropout: float = 0.0,
        l2: float = 0.0,
        optimizer: str = "adam",
        learning_rate: float = 1e-2,
        rng=None,
    ) -> None:
        if input_dim <= 0 or num_classes <= 1:
            raise ConfigurationError(
                "input_dim must be positive and num_classes must be >= 2"
            )
        self.input_dim = int(input_dim)
        self.num_classes = int(num_classes)
        self._rng = as_generator(rng)
        layers = []
        previous = input_dim
        for width in hidden_dims:
            layers.append(Linear(previous, int(width), rng=self._rng, l2=l2))
            layers.append(self._make_activation(activation))
            if dropout:
                layers.append(Dropout(dropout, rng=self._rng))
            previous = int(width)
        layers.append(Linear(previous, num_classes, rng=self._rng, l2=l2))
        self.net = Sequential(layers)
        self.optimizer: Optimizer = build_optimizer(optimizer, learning_rate)
        self.history = TrainingHistory()

    @staticmethod
    def _make_activation(name: str):
        if name == "relu":
            return Relu()
        if name == "tanh":
            return Tanh()
        raise ConfigurationError(f"unknown activation {name!r}")

    # ------------------------------------------------------------------ #
    # inference
    # ------------------------------------------------------------------ #
    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Raw logits for ``x`` of shape ``(n, input_dim)``."""
        x = self._check_features(x)
        return self.net.forward(x, training=False)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Softmax class probabilities."""
        return softmax(self.decision_function(x), axis=1)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard class predictions."""
        return np.argmax(self.decision_function(x), axis=1)

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Classification accuracy on ``(x, y)``."""
        return accuracy(np.asarray(y), self.predict(x))

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #
    def fit_epoch(
        self,
        x: np.ndarray,
        y: np.ndarray,
        *,
        batch_size: int = 32,
        x_val: Optional[np.ndarray] = None,
        y_val: Optional[np.ndarray] = None,
    ) -> float:
        """Train for a single epoch; returns the mean batch loss.

        Validation accuracy is appended to :attr:`history` when a
        validation split is supplied, which is what the fine-tuning engine
        uses to build convergence processes.
        """
        x = self._check_features(x)
        y = np.asarray(y, dtype=int)
        if y.shape[0] != x.shape[0]:
            raise DataError("x and y must have the same number of rows")
        if batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        order = self._rng.permutation(x.shape[0])
        losses = []
        correct = 0
        for start in range(0, x.shape[0], batch_size):
            idx = order[start : start + batch_size]
            batch_x, batch_y = x[idx], y[idx]
            logits = self.net.forward(batch_x, training=True)
            loss, grad, predictions = softmax_cross_entropy_stats(logits, batch_y)
            losses.append(loss)
            correct += int(np.sum(predictions == batch_y))
            self.net.backward(grad)
            self.optimizer.step(self.net.params(), self.net.grads())
        mean_loss = float(np.mean(losses))
        self.history.train_loss.append(mean_loss)
        self.history.train_accuracy.append(correct / x.shape[0])
        if x_val is not None and y_val is not None:
            self.history.val_accuracy.append(self.score(x_val, y_val))
        return mean_loss

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        *,
        epochs: int = 10,
        batch_size: int = 32,
        x_val: Optional[np.ndarray] = None,
        y_val: Optional[np.ndarray] = None,
    ) -> TrainingHistory:
        """Train for ``epochs`` epochs and return the accumulated history."""
        if epochs <= 0:
            raise ConfigurationError("epochs must be positive")
        for _ in range(epochs):
            self.fit_epoch(
                x, y, batch_size=batch_size, x_val=x_val, y_val=y_val
            )
        return self.history

    # ------------------------------------------------------------------ #
    def _check_features(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != self.input_dim:
            raise DataError(
                f"expected features of shape (n, {self.input_dim}), got {x.shape}"
            )
        return x
