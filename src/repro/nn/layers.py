"""Dense layers and activations with explicit forward/backward passes.

The layers follow a tiny "module" protocol:

* ``forward(x, training)`` returns the layer output and caches what the
  backward pass needs;
* ``backward(grad_output)`` returns the gradient w.r.t. the layer input and
  stores parameter gradients on the layer;
* ``params()`` / ``grads()`` expose parameter and gradient arrays in the
  same order, so optimisers can update them generically.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.nn.initializers import get_initializer, zeros
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import as_generator


class Layer:
    """Base class of the layer protocol."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def params(self) -> List[np.ndarray]:
        """Trainable parameter arrays (empty for stateless layers)."""
        return []

    def grads(self) -> List[np.ndarray]:
        """Gradient arrays aligned with :meth:`params`."""
        return []


class Linear(Layer):
    """Affine transform ``y = x @ W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        init: str = "glorot",
        rng=None,
        l2: float = 0.0,
    ) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ConfigurationError("Linear layer dimensions must be positive")
        generator = as_generator(rng)
        self.weight = get_initializer(init)(generator, in_features, out_features)
        self.bias = zeros(out_features)
        self.l2 = float(l2)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._input: Optional[np.ndarray] = None

    @property
    def in_features(self) -> int:
        return self.weight.shape[0]

    @property
    def out_features(self) -> int:
        return self.weight.shape[1]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._input = x if training else None
        return x @ self.weight + self.bias

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise ConfigurationError("backward called before a training forward pass")
        self.grad_weight = self._input.T @ grad_output
        if self.l2:
            self.grad_weight += self.l2 * self.weight
        self.grad_bias = grad_output.sum(axis=0)
        return grad_output @ self.weight.T

    def params(self) -> List[np.ndarray]:
        return [self.weight, self.bias]

    def grads(self) -> List[np.ndarray]:
        return [self.grad_weight, self.grad_bias]


class Relu(Layer):
    """Rectified linear activation."""

    def __init__(self) -> None:
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        mask = x > 0
        if training:
            self._mask = mask
        return x * mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ConfigurationError("backward called before a training forward pass")
        return grad_output * self._mask


class Tanh(Layer):
    """Hyperbolic-tangent activation."""

    def __init__(self) -> None:
        self._output: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = np.tanh(x)
        if training:
            self._output = out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise ConfigurationError("backward called before a training forward pass")
        return grad_output * (1.0 - self._output**2)


class Dropout(Layer):
    """Inverted dropout; a no-op at inference time."""

    def __init__(self, rate: float, *, rng=None) -> None:
        if not 0.0 <= rate < 1.0:
            raise ConfigurationError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self._rng = as_generator(rng)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask


class Sequential(Layer):
    """A simple container applying layers in order."""

    def __init__(self, layers: Sequence[Layer]) -> None:
        self.layers = list(layers)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def params(self) -> List[np.ndarray]:
        collected: List[np.ndarray] = []
        for layer in self.layers:
            collected.extend(layer.params())
        return collected

    def grads(self) -> List[np.ndarray]:
        collected: List[np.ndarray] = []
        for layer in self.layers:
            collected.extend(layer.grads())
        return collected
