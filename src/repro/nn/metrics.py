"""Classification metrics shared by the fine-tuning engine and experiments."""

from __future__ import annotations

import numpy as np

from repro.utils.exceptions import DataError


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exact label matches."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise DataError(
            f"y_true and y_pred shapes differ ({y_true.shape} vs {y_pred.shape})"
        )
    if y_true.size == 0:
        raise DataError("cannot compute accuracy on empty arrays")
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray, num_classes: int) -> np.ndarray:
    """``(num_classes, num_classes)`` confusion counts (rows = true labels)."""
    y_true = np.asarray(y_true, dtype=int)
    y_pred = np.asarray(y_pred, dtype=int)
    if y_true.shape != y_pred.shape:
        raise DataError("y_true and y_pred must have the same shape")
    matrix = np.zeros((num_classes, num_classes), dtype=int)
    for true, pred in zip(y_true, y_pred):
        matrix[true, pred] += 1
    return matrix


def macro_f1(y_true: np.ndarray, y_pred: np.ndarray, num_classes: int) -> float:
    """Macro-averaged F1 score (classes absent from ``y_true`` are skipped)."""
    matrix = confusion_matrix(y_true, y_pred, num_classes)
    scores = []
    for cls in range(num_classes):
        tp = matrix[cls, cls]
        fp = matrix[:, cls].sum() - tp
        fn = matrix[cls, :].sum() - tp
        if tp + fn == 0:
            continue
        precision = tp / (tp + fp) if (tp + fp) else 0.0
        recall = tp / (tp + fn)
        if precision + recall == 0:
            scores.append(0.0)
        else:
            scores.append(2 * precision * recall / (precision + recall))
    if not scores:
        raise DataError("macro_f1 requires at least one class present in y_true")
    return float(np.mean(scores))


def top_k_accuracy(y_true: np.ndarray, scores: np.ndarray, k: int) -> float:
    """Fraction of rows whose true label is within the top-``k`` scores."""
    y_true = np.asarray(y_true, dtype=int)
    scores = np.asarray(scores, dtype=float)
    if scores.ndim != 2 or scores.shape[0] != y_true.shape[0]:
        raise DataError("scores must be (n, c) aligned with y_true")
    if k <= 0:
        raise DataError("k must be positive")
    k = min(k, scores.shape[1])
    top = np.argsort(-scores, axis=1)[:, :k]
    hits = (top == y_true[:, None]).any(axis=1)
    return float(np.mean(hits))
