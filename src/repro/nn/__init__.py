"""Minimal numpy neural-network substrate used for fine-tuning.

The paper fine-tunes transformer checkpoints on a GPU; this substrate
provides the same *interface contract* — a trainable classifier head (and
optionally a trainable encoder) producing epoch-level validation/test
accuracy curves — implemented as plain numpy multilayer perceptrons so the
whole reproduction runs on a laptop CPU.

Public API:

* :class:`~repro.nn.network.MLPClassifier` — dense softmax classifier.
* Layers (:class:`~repro.nn.layers.Linear`, activations, dropout).
* Losses (:func:`~repro.nn.losses.softmax_cross_entropy`).
* Optimisers (:class:`~repro.nn.optim.SGD`, :class:`~repro.nn.optim.Adam`).
* Metrics (:func:`~repro.nn.metrics.accuracy`, macro-F1 ...).
* Fused multi-session training (:class:`~repro.nn.batched.StackedHeads`,
  :class:`~repro.nn.batched.FusedSessionGroup`) — stacked-parameter
  kernels advancing many same-geometry sessions per round, bitwise
  identical to the serial path.
"""

from repro.nn.batched import (
    FusedAdvanceReport,
    FusedSessionGroup,
    StackedHeads,
    StackedOptimizer,
    fused_fit_epoch,
    heads_compatible,
    stacked_predictions,
)
from repro.nn.layers import Dropout, Linear, Relu, Sequential, Tanh
from repro.nn.losses import (
    l2_penalty,
    softmax,
    softmax_cross_entropy,
    softmax_cross_entropy_stats,
)
from repro.nn.metrics import accuracy, confusion_matrix, macro_f1
from repro.nn.network import MLPClassifier, TrainingHistory
from repro.nn.optim import SGD, Adam, Momentum, Optimizer

__all__ = [
    "Dropout",
    "Linear",
    "Relu",
    "Sequential",
    "Tanh",
    "l2_penalty",
    "softmax",
    "softmax_cross_entropy",
    "softmax_cross_entropy_stats",
    "accuracy",
    "confusion_matrix",
    "macro_f1",
    "MLPClassifier",
    "TrainingHistory",
    "SGD",
    "Adam",
    "Momentum",
    "Optimizer",
    "FusedAdvanceReport",
    "FusedSessionGroup",
    "StackedHeads",
    "StackedOptimizer",
    "fused_fit_epoch",
    "heads_compatible",
    "stacked_predictions",
]
