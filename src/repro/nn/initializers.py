"""Weight initialisation schemes for the numpy NN substrate."""

from __future__ import annotations

import numpy as np

from repro.utils.exceptions import ConfigurationError


def glorot_uniform(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for a ``(fan_in, fan_out)`` matrix."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def he_normal(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """He normal initialisation, suited to ReLU activations."""
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=(fan_in, fan_out))


def zeros(fan_out: int) -> np.ndarray:
    """Zero bias vector."""
    return np.zeros(fan_out)


def get_initializer(name: str):
    """Look up an initialiser by name (``glorot`` or ``he``)."""
    table = {"glorot": glorot_uniform, "he": he_normal}
    if name not in table:
        raise ConfigurationError(
            f"unknown initializer {name!r}; expected one of {sorted(table)}"
        )
    return table[name]
