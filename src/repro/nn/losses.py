"""Losses and probability utilities for the NN substrate."""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.utils.exceptions import DataError


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically-stable softmax along ``axis``."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically-stable log-softmax along ``axis``."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> Tuple[float, np.ndarray]:
    """Mean cross-entropy loss and its gradient w.r.t. the logits.

    Parameters
    ----------
    logits:
        ``(n, c)`` unnormalised scores.
    labels:
        ``(n,)`` integer class labels in ``[0, c)``.

    Returns
    -------
    tuple
        ``(loss, grad)`` where ``grad`` has the shape of ``logits``.
    """
    logits = np.asarray(logits, dtype=float)
    labels = np.asarray(labels, dtype=int)
    if logits.ndim != 2:
        raise DataError(f"logits must be 2-dimensional, got shape {logits.shape}")
    if labels.ndim != 1 or labels.shape[0] != logits.shape[0]:
        raise DataError("labels must be a 1-d array aligned with logits rows")
    n = logits.shape[0]
    if n == 0:
        raise DataError("cannot compute cross-entropy on an empty batch")
    log_probs = log_softmax(logits, axis=1)
    loss = -float(np.mean(log_probs[np.arange(n), labels]))
    grad = softmax(logits, axis=1)
    grad[np.arange(n), labels] -= 1.0
    grad /= n
    return loss, grad


def softmax_cross_entropy_stats(
    logits: np.ndarray, labels: np.ndarray
) -> Tuple[float, np.ndarray, np.ndarray]:
    """Mean cross-entropy loss, its gradient, and the hard predictions.

    Single-pass variant of :func:`softmax_cross_entropy` for training
    loops that also need the batch's predicted classes (to accumulate a
    training accuracy): the row maximum is taken from the ``argmax``
    gather instead of a second ``max`` scan, and the exponentials are
    shared between the log-softmax (loss) and softmax (gradient) instead
    of being computed twice.  Bitwise-identical to calling
    :func:`softmax_cross_entropy` and ``np.argmax`` separately — the same
    shift, exponential and reduction are applied in the same order.

    Returns
    -------
    tuple
        ``(loss, grad, predictions)`` where ``grad`` has the shape of
        ``logits`` and ``predictions`` is the ``(n,)`` row argmax.
    """
    logits = np.asarray(logits, dtype=float)
    labels = np.asarray(labels, dtype=int)
    if logits.ndim != 2:
        raise DataError(f"logits must be 2-dimensional, got shape {logits.shape}")
    if labels.ndim != 1 or labels.shape[0] != logits.shape[0]:
        raise DataError("labels must be a 1-d array aligned with logits rows")
    n = logits.shape[0]
    if n == 0:
        raise DataError("cannot compute cross-entropy on an empty batch")
    predictions = np.argmax(logits, axis=1)
    top = np.take_along_axis(logits, predictions[:, None], axis=1)
    shifted = logits - top
    exp = np.exp(shifted)
    sum_exp = np.sum(exp, axis=1, keepdims=True)
    log_probs = shifted - np.log(sum_exp)
    loss = -float(np.mean(log_probs[np.arange(n), labels]))
    grad = exp / sum_exp
    grad[np.arange(n), labels] -= 1.0
    grad /= n
    return loss, grad, predictions


def l2_penalty(params: Iterable[np.ndarray], weight: float) -> float:
    """L2 regularisation term ``weight/2 * sum(||p||^2)``."""
    if weight == 0.0:
        return 0.0
    return 0.5 * weight * float(sum(np.sum(p * p) for p in params))
