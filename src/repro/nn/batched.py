"""Fused multi-session training: stacked-head kernels for same-geometry heads.

The online phase's hot path is ``S`` independent mini-batch loops — one
:meth:`~repro.nn.network.MLPClassifier.fit_epoch` per fine-tuning session,
driven one session at a time by the epoch scheduler's round executor.  On a
single-CPU host, thread or process fan-out cannot buy that loop anything;
what can is *kernel fusion*: sessions fine-tuning different checkpoints on
the same task share every shape that matters — ``(n, d)`` feature slabs,
``(d, c)`` heads, batch size, optimiser and learning rate — so one
scheduling round is naturally a batched ``(S, b, d) @ (S, d, c)`` problem,
the same shape as multi-adapter batched serving in production inference
stacks.

This module provides that engine:

* :class:`StackedHeads` adopts ``S`` compatible classifier heads into
  stacked parameter tensors (``(S, d_in, d_out)`` weights, ``(S, d_out)``
  biases) with a stacked forward/backward through ``np.matmul`` over
  ``(S, b, d)`` slabs, and a :class:`StackedOptimizer` mirroring the
  per-head SGD/Momentum/Adam state as ``(S, ...)`` moment tensors.
* :func:`fused_fit_epoch` replicates ``fit_epoch`` exactly for every slice:
  per-session shuffle permutations are **pre-drawn from each session's own
  RNG in the serial draw order**, the stacked softmax-cross-entropy applies
  the same shift/exp/reduce sequence per slice, and the per-batch losses
  are accumulated per slice exactly as the serial loop accumulates them.
* :class:`FusedSessionGroup` drives whole fine-tuning sessions: it advances
  every member one epoch at a time with the fused kernels, scores the
  per-epoch validation/test accuracies as **one** stacked forward over the
  concatenated ``[val; test]`` slab (instead of ``2·S`` separate ``score``
  passes), and writes parameters, optimiser state and curve records back
  into the member sessions so they are indistinguishable from serially
  trained ones.

Correctness contract — every numpy kernel used here is bitwise-identical
per slice to its 2-D counterpart (stacked ``matmul`` dispatches the same
BLAS call per slice; elementwise optimiser updates and last-axis reductions
are order-identical), and the engine *proves* it per group instead of
assuming it: the first fused epoch of an unverified geometry runs the
serial oracle alongside and compares the full float trajectory (parameters,
optimiser moments, losses, accuracies).  Any slice that diverges delegates
the whole group to the per-session path — nnchain-style delegation: the
serial epoch already computed is kept, so a failed probe wastes nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.layers import Dropout, Linear, Relu, Tanh
from repro.nn.network import MLPClassifier
from repro.nn.optim import SGD, Adam, Momentum
from repro.utils.exceptions import ConfigurationError

__all__ = [
    "StackedHeads",
    "StackedOptimizer",
    "FusedSessionGroup",
    "FusedAdvanceReport",
    "fused_fit_epoch",
    "stacked_predictions",
    "heads_compatible",
]


def _layer_structure(head: MLPClassifier) -> Tuple:
    """Hashable description of a head's layer stack (shapes + activations)."""
    parts: List[Tuple] = []
    for layer in head.net.layers:
        if isinstance(layer, Linear):
            parts.append(("linear", layer.in_features, layer.out_features, layer.l2))
        elif isinstance(layer, Relu):
            parts.append(("relu",))
        elif isinstance(layer, Tanh):
            parts.append(("tanh",))
        elif isinstance(layer, Dropout):
            # Dropout consumes per-batch RNG draws inside the forward pass;
            # supporting it would interleave mask draws with the shuffle
            # stream.  The fine-tuning engine never uses it, so heads with
            # dropout simply stay on the serial path.
            parts.append(("dropout", layer.rate))
        else:  # pragma: no cover - no other layer types exist today
            parts.append((type(layer).__name__,))
    return tuple(parts)


def _optimizer_signature(head: MLPClassifier) -> Tuple:
    """Hashable description of a head's optimiser type, hypers and clock."""
    opt = head.optimizer
    if isinstance(opt, Adam):
        return ("adam", opt.learning_rate, opt.beta1, opt.beta2, opt.epsilon, opt._t)
    if isinstance(opt, Momentum):
        return (
            "momentum",
            opt.learning_rate,
            opt.momentum,
            opt._velocity is None,
        )
    if isinstance(opt, SGD):
        return ("sgd", opt.learning_rate)
    return ("unknown", type(opt).__name__)


def heads_compatible(heads: Sequence[MLPClassifier]) -> bool:
    """Whether ``heads`` can train as one stacked group.

    Requires identical layer structure (shapes, activations, L2), no
    dropout, and identical optimiser type, hyper-parameters and step
    count — everything :class:`StackedHeads` broadcasts over.
    """
    if not heads:
        return False
    structure = _layer_structure(heads[0])
    if any(part[0] == "dropout" and part[1] > 0.0 for part in structure):
        return False
    if any(part[0] == "unknown" for part in (_optimizer_signature(heads[0]),)):
        return False
    opt = _optimizer_signature(heads[0])
    return all(
        _layer_structure(head) == structure and _optimizer_signature(head) == opt
        for head in heads[1:]
    )


class StackedOptimizer:
    """Stacked SGD/Momentum/Adam state over ``S`` aligned per-head optimisers.

    Mirrors :mod:`repro.nn.optim` exactly, but every parameter, gradient
    and moment tensor carries a leading stack axis: the update arithmetic
    is elementwise (or broadcast by scalars), so each slice follows the
    identical float trajectory the per-head optimiser would.
    """

    def __init__(self, heads: Sequence[MLPClassifier]) -> None:
        if not heads:
            raise ConfigurationError("cannot stack an empty optimizer group")
        signature = _optimizer_signature(heads[0])
        for head in heads[1:]:
            if _optimizer_signature(head) != signature:
                raise ConfigurationError(
                    "optimizer mismatch in fused group: "
                    f"{signature} != {_optimizer_signature(head)}"
                )
        self.kind = signature[0]
        if self.kind == "unknown":
            raise ConfigurationError(
                f"cannot stack optimizer type {signature[1]!r}"
            )
        template = heads[0].optimizer
        self.learning_rate = template.learning_rate
        self._heads = list(heads)
        self._momentum = getattr(template, "momentum", 0.0)
        self._beta1 = getattr(template, "beta1", 0.0)
        self._beta2 = getattr(template, "beta2", 0.0)
        self._epsilon = getattr(template, "epsilon", 0.0)
        self._t = getattr(template, "_t", 0)
        #: Stacked moment tensors, aligned with the stacked param list.
        self._velocity: Optional[List[np.ndarray]] = None
        self._m: Optional[List[np.ndarray]] = None
        self._v: Optional[List[np.ndarray]] = None
        self._adopt_state()

    def _adopt_state(self) -> None:
        """Stack the per-head moment tensors (zeros where still lazy)."""

        def stack(attribute: str) -> Optional[List[np.ndarray]]:
            states = [getattr(head.optimizer, attribute) for head in self._heads]
            if all(state is None for state in states):
                return None
            params = [head.net.params() for head in self._heads]
            return [
                np.stack(
                    [
                        states[s][i]
                        if states[s] is not None
                        else np.zeros_like(params[s][i])
                        for s in range(len(self._heads))
                    ]
                )
                for i in range(len(params[0]))
            ]

        if self.kind == "momentum":
            self._velocity = stack("_velocity")
        elif self.kind == "adam":
            self._m = stack("_m")
            self._v = stack("_v")

    def step(self, params: List[np.ndarray], grads: List[np.ndarray]) -> None:
        """One stacked update, elementwise-identical per slice to the serial one."""
        if len(params) != len(grads):
            raise ConfigurationError(
                f"params and grads must align ({len(params)} != {len(grads)})"
            )
        if self.kind == "sgd":
            for param, grad in zip(params, grads):
                param -= self.learning_rate * grad
            return
        if self.kind == "momentum":
            if self._velocity is None:
                self._velocity = [np.zeros_like(p) for p in params]
            for param, grad, vel in zip(params, grads, self._velocity):
                vel *= self._momentum
                vel -= self.learning_rate * grad
                param += vel
            return
        # adam
        if self._m is None or self._v is None:
            self._m = [np.zeros_like(p) for p in params]
            self._v = [np.zeros_like(p) for p in params]
        self._t += 1
        bias1 = 1.0 - self._beta1**self._t
        bias2 = 1.0 - self._beta2**self._t
        for param, grad, m, v in zip(params, grads, self._m, self._v):
            m *= self._beta1
            m += (1.0 - self._beta1) * grad
            v *= self._beta2
            v += (1.0 - self._beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self._epsilon)

    def writeback(self) -> None:
        """Copy the stacked moments (and step clock) back into each head."""
        for s, head in enumerate(self._heads):
            opt = head.optimizer
            if self.kind == "momentum" and self._velocity is not None:
                opt._velocity = [vel[s].copy() for vel in self._velocity]
            elif self.kind == "adam":
                opt._t = self._t
                if self._m is not None and self._v is not None:
                    opt._m = [m[s].copy() for m in self._m]
                    opt._v = [v[s].copy() for v in self._v]

    def state_slice(self, s: int) -> Dict[str, object]:
        """Stacked moment slices of member ``s`` (probe comparisons)."""
        state: Dict[str, object] = {"t": self._t}
        if self._velocity is not None:
            state["velocity"] = [vel[s] for vel in self._velocity]
        if self._m is not None:
            state["m"] = [m[s] for m in self._m]
        if self._v is not None:
            state["v"] = [v[s] for v in self._v]
        return state


class StackedHeads:
    """``S`` compatible classifier heads as one stacked-parameter model.

    Construction copies every head's parameters into ``(S, ...)`` tensors;
    training then runs entirely in stacked space; :meth:`writeback` copies
    parameters and optimiser state back into the heads **in place** (the
    heads' existing arrays are overwritten, so views held by layer objects
    stay valid).
    """

    def __init__(self, heads: Sequence[MLPClassifier]) -> None:
        heads = list(heads)
        if not heads:
            raise ConfigurationError("cannot stack an empty head group")
        if not heads_compatible(heads):
            raise ConfigurationError(
                "heads are not fusion-compatible (layer structure, dropout "
                "or optimizer state mismatch)"
            )
        self.heads = heads
        self.size = len(heads)
        self.input_dim = heads[0].input_dim
        self.num_classes = heads[0].num_classes
        self._linears = [
            [layer for layer in head.net.layers if isinstance(layer, Linear)]
            for head in heads
        ]
        self.structure = _layer_structure(heads[0])
        #: Stacked (S, in, out) weights / (S, out) biases per linear layer.
        self.weights = [
            np.stack([linears[i].weight for linears in self._linears])
            for i in range(len(self._linears[0]))
        ]
        self.biases = [
            np.stack([linears[i].bias for linears in self._linears])
            for i in range(len(self._linears[0]))
        ]
        self._l2 = [linear.l2 for linear in self._linears[0]]
        self.optimizer = StackedOptimizer(heads)
        # Backward caches (training forward only).
        self._inputs: List[Optional[np.ndarray]] = [None] * len(self.weights)
        self._masks: List[Optional[np.ndarray]] = []
        self._grad_weights: List[Optional[np.ndarray]] = [None] * len(self.weights)
        self._grad_biases: List[Optional[np.ndarray]] = [None] * len(self.weights)

    # ------------------------------------------------------------------ #
    # stacked forward / backward
    # ------------------------------------------------------------------ #
    def forward(self, x: np.ndarray, *, training: bool = False) -> np.ndarray:
        """Stacked forward pass: ``(S, n, d_in)`` to ``(S, n, c)`` logits."""
        out = x
        linear_index = 0
        self._masks = []
        for part in self.structure:
            if part[0] == "linear":
                if training:
                    self._inputs[linear_index] = out
                out = (
                    np.matmul(out, self.weights[linear_index])
                    + self.biases[linear_index][:, None, :]
                )
                linear_index += 1
            elif part[0] == "relu":
                mask = out > 0
                if training:
                    self._masks.append(mask)
                out = out * mask
            elif part[0] == "tanh":
                out = np.tanh(out)
                if training:
                    self._masks.append(out)
        return out

    def backward(self, grad: np.ndarray) -> None:
        """Stacked backward pass; stores per-layer stacked gradients."""
        linear_index = len(self.weights) - 1
        mask_index = len(self._masks) - 1
        for part in reversed(self.structure):
            if part[0] == "linear":
                cached = self._inputs[linear_index]
                if cached is None:
                    raise ConfigurationError(
                        "backward called before a training forward pass"
                    )
                grad_weight = np.matmul(cached.transpose(0, 2, 1), grad)
                if self._l2[linear_index]:
                    grad_weight += self._l2[linear_index] * self.weights[linear_index]
                self._grad_weights[linear_index] = grad_weight
                self._grad_biases[linear_index] = grad.sum(axis=1)
                grad = np.matmul(grad, self.weights[linear_index].transpose(0, 2, 1))
                linear_index -= 1
            elif part[0] == "relu":
                grad = grad * self._masks[mask_index]
                mask_index -= 1
            elif part[0] == "tanh":
                grad = grad * (1.0 - self._masks[mask_index] ** 2)
                mask_index -= 1

    def step(self) -> None:
        """Apply one stacked optimiser update from the cached gradients."""
        params: List[np.ndarray] = []
        grads: List[np.ndarray] = []
        for index in range(len(self.weights)):
            params.extend((self.weights[index], self.biases[index]))
            grads.extend((self._grad_weights[index], self._grad_biases[index]))
        self.optimizer.step(params, grads)

    # ------------------------------------------------------------------ #
    # adoption back into the member heads
    # ------------------------------------------------------------------ #
    def writeback(self) -> None:
        """Copy stacked parameters and optimiser state back into the heads."""
        for s, linears in enumerate(self._linears):
            for index, linear in enumerate(linears):
                linear.weight[...] = self.weights[index][s]
                linear.bias[...] = self.biases[index][s]
        self.optimizer.writeback()

    def param_slice(self, s: int) -> List[np.ndarray]:
        """The stacked parameter slices of member ``s`` (probe comparisons)."""
        params: List[np.ndarray] = []
        for index in range(len(self.weights)):
            params.extend((self.weights[index][s], self.biases[index][s]))
        return params


def _stacked_cross_entropy_stats(
    logits: np.ndarray, labels: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-slice mean loss, gradient and predictions for stacked logits.

    The stacked twin of
    :func:`repro.nn.losses.softmax_cross_entropy_stats`: shift by the row
    maximum (taken from the argmax gather), exponentiate once, share the
    exponentials between loss and gradient.  All reductions run along the
    last (contiguous) axis, so every slice reduces in the same order as
    the 2-D call.
    """
    size, n = logits.shape[0], logits.shape[1]
    stack_index = np.arange(size)[:, None]
    row_index = np.arange(n)[None, :]
    predictions = np.argmax(logits, axis=2)
    top = np.take_along_axis(logits, predictions[:, :, None], axis=2)
    shifted = logits - top
    exp = np.exp(shifted)
    sum_exp = np.sum(exp, axis=2, keepdims=True)
    log_probs = shifted - np.log(sum_exp)
    losses = -np.mean(log_probs[stack_index, row_index, labels], axis=1)
    grad = exp / sum_exp
    grad[stack_index, row_index, labels] -= 1.0
    grad /= n
    return losses, grad, predictions


def fused_fit_epoch(
    stacked: StackedHeads,
    x: np.ndarray,
    y: np.ndarray,
    perms: np.ndarray,
    *,
    batch_size: int,
) -> Tuple[List[float], List[float]]:
    """Train every stacked head for one epoch over its own permutation.

    Parameters
    ----------
    stacked:
        The stacked heads (mutated in stacked space).
    x:
        ``(S, n, d)`` feature slab — slice ``s`` is member ``s``'s encoded
        training features.
    y:
        ``(n,)`` shared integer labels (same task for every member).
    perms:
        ``(S, n)`` per-member shuffle permutations, pre-drawn from each
        member's own RNG in the serial draw order.
    batch_size:
        Mini-batch size shared by the group.

    Returns
    -------
    tuple
        ``(mean_losses, train_accuracies)`` — per-member floats built by
        the exact accumulation the serial ``fit_epoch`` performs (python
        float list, then ``np.mean``).
    """
    if batch_size <= 0:
        raise ConfigurationError("batch_size must be positive")
    size, n = perms.shape
    stack_index = np.arange(size)[:, None]
    batch_losses: List[List[float]] = [[] for _ in range(size)]
    correct = np.zeros(size, dtype=np.int64)
    for start in range(0, n, batch_size):
        idx = perms[:, start : start + batch_size]
        batch_x = x[stack_index, idx]
        batch_y = y[idx]
        logits = stacked.forward(batch_x, training=True)
        losses, grad, predictions = _stacked_cross_entropy_stats(logits, batch_y)
        for s, loss in enumerate(losses.tolist()):
            batch_losses[s].append(loss)
        correct += np.sum(predictions == batch_y, axis=1)
        stacked.backward(grad)
        stacked.step()
    mean_losses = [float(np.mean(member)) for member in batch_losses]
    accuracies = [int(count) / n for count in correct]
    return mean_losses, accuracies


def stacked_predictions(stacked: StackedHeads, x: np.ndarray) -> np.ndarray:
    """Hard class predictions ``(S, n)`` of an inference-mode stacked forward."""
    return np.argmax(stacked.forward(x, training=False), axis=2)


@dataclass
class FusedAdvanceReport:
    """Accounting of one :meth:`FusedSessionGroup.advance` call.

    ``fused_epochs``/``serial_epochs`` count *session-epochs* (one member
    advancing one epoch), so their sum is always ``S * epochs``.
    ``probe_epochs`` counts the duplicated oracle epochs a verification
    probe spent on top.
    """

    sessions: int = 0
    epochs: int = 0
    fused_epochs: int = 0
    serial_epochs: int = 0
    probe_epochs: int = 0
    verified: bool = False
    delegated: bool = False
    mismatches: List[str] = field(default_factory=list)


class FusedSessionGroup:
    """Advance ``S`` same-geometry fine-tuning sessions with fused kernels.

    Members must expose the :class:`~repro.zoo.finetune.FineTuneSession`
    adoption surface (``head``, ``train_features``, ``train_labels``,
    ``eval_features()``, ``eval_split``, ``record_epoch``,
    ``train_epochs``, ``fusion_signature``) and agree on
    ``fusion_signature()`` and ``epochs_trained``.  The module docstring
    describes the bitwise contract; :meth:`advance` enforces it through
    the probe gate.
    """

    def __init__(self, sessions: Sequence) -> None:
        sessions = list(sessions)
        if len(sessions) < 1:
            raise ConfigurationError("fused group needs at least one session")
        signature = sessions[0].fusion_signature()
        position = sessions[0].epochs_trained
        for session in sessions[1:]:
            if session.fusion_signature() != signature:
                raise ConfigurationError(
                    "sessions in a fused group must share their geometry "
                    "signature"
                )
            if session.epochs_trained != position:
                raise ConfigurationError(
                    "sessions in a fused group must be at the same epoch "
                    f"({session.epochs_trained} != {position})"
                )
        self.sessions = sessions
        self.signature = signature
        self.batch_size = int(sessions[0].config.batch_size)

    # ------------------------------------------------------------------ #
    def _draw_permutations(self) -> np.ndarray:
        """One shuffle permutation per member, from each member's own RNG.

        This is the serial draw order: ``fit_epoch`` draws exactly one
        permutation per epoch from the head's generator (dropout is
        excluded from fusion), so pulling the epoch's permutation from
        each session's generator here leaves every RNG in the exact state
        a serial epoch would.
        """
        return np.stack(
            [
                session.head._rng.permutation(session.train_features.shape[0])
                for session in self.sessions
            ]
        )

    def _evaluate(self, stacked: StackedHeads, eval_slab: np.ndarray):
        """Per-member (val, test) accuracies from one stacked forward."""
        predictions = stacked_predictions(stacked, eval_slab)
        split = self.sessions[0].eval_split
        val_labels = np.asarray(self.sessions[0].task.val.labels)
        test_labels = np.asarray(self.sessions[0].task.test.labels)
        pairs = []
        for s in range(len(self.sessions)):
            pairs.append(
                (
                    float(np.mean(val_labels == predictions[s, :split])),
                    float(np.mean(test_labels == predictions[s, split:])),
                )
            )
        return pairs

    def _probe_matches(
        self,
        stacked: StackedHeads,
        staged: Dict[str, object],
        report: FusedAdvanceReport,
    ) -> bool:
        """Compare the staged fused epoch against the serially trained one.

        Called after the members were advanced one epoch by the *serial*
        oracle: every staged per-slice quantity — loss, accuracies,
        parameters, optimiser moments — must equal the serial result
        bitwise for the group to stay fused.
        """
        for s, session in enumerate(self.sessions):
            name = getattr(session.curve, "model_name", str(s))
            serial_params = session.head.net.params()
            for mine, theirs in zip(stacked.param_slice(s), serial_params):
                if not np.array_equal(mine, theirs):
                    report.mismatches.append(f"{name}: params")
                    return False
            if staged["losses"][s] != session.curve.train_loss[-1]:
                report.mismatches.append(f"{name}: loss")
                return False
            if staged["train_accs"][s] != session.head.history.train_accuracy[-1]:
                report.mismatches.append(f"{name}: train accuracy")
                return False
            val_acc, test_acc = staged["scores"][s]
            if (
                val_acc != session.curve.val_accuracy[-1]
                or test_acc != session.curve.test_accuracy[-1]
            ):
                report.mismatches.append(f"{name}: val/test accuracy")
                return False
            state = stacked.optimizer.state_slice(s)
            opt = session.head.optimizer
            if state["t"] != getattr(opt, "_t", state["t"]):
                report.mismatches.append(f"{name}: optimizer clock")
                return False
            for attribute, key in (("_velocity", "velocity"), ("_m", "m"), ("_v", "v")):
                theirs_state = getattr(opt, attribute, None)
                if key in state and theirs_state is not None:
                    for mine, theirs in zip(state[key], theirs_state):
                        if not np.array_equal(mine, theirs):
                            report.mismatches.append(f"{name}: optimizer state")
                            return False
        return True

    # ------------------------------------------------------------------ #
    def advance(self, epochs: int, *, probe: bool = True) -> FusedAdvanceReport:
        """Train every member ``epochs`` epochs; fused where proven safe.

        With ``probe=True`` (an unverified geometry) the first epoch runs
        both stacked and serial from the same RNG state and compares the
        trajectories bitwise; a match trains the remaining epochs fused, a
        mismatch delegates the whole group to the serial path — keeping
        the serial epoch already computed, so the probe never wastes
        training.  ``probe=False`` trusts a previous verification and
        runs every epoch fused.
        """
        if epochs <= 0:
            raise ConfigurationError("epochs must be positive")
        report = FusedAdvanceReport(sessions=len(self.sessions), epochs=epochs)
        size = len(self.sessions)
        y = np.asarray(self.sessions[0].train_labels, dtype=int)
        x = np.stack(
            [
                np.asarray(session.train_features, dtype=float)
                for session in self.sessions
            ]
        )
        eval_slab = np.stack(
            [
                np.asarray(session.eval_features(), dtype=float)
                for session in self.sessions
            ]
        )
        stacked = StackedHeads([session.head for session in self.sessions])
        remaining = epochs

        if probe:
            rng_states = [
                session.head._rng.bit_generator.state for session in self.sessions
            ]
            perms = self._draw_permutations()
            losses, train_accs = fused_fit_epoch(
                stacked, x, y, perms, batch_size=self.batch_size
            )
            staged = {
                "losses": losses,
                "train_accs": train_accs,
                "scores": self._evaluate(stacked, eval_slab),
            }
            # Serial oracle for the same epoch: rewind each RNG to the
            # pre-epoch state and let the real fit_epoch redraw the same
            # permutation.  The member sessions now hold the serial
            # trajectory; the stacked state holds the fused one.
            for session, state in zip(self.sessions, rng_states):
                session.head._rng.bit_generator.state = state
                session.train_epochs(1)
            report.probe_epochs += size
            report.serial_epochs += size
            remaining -= 1
            if not self._probe_matches(stacked, staged, report):
                report.delegated = True
                if remaining:
                    for session in self.sessions:
                        session.train_epochs(remaining)
                    report.serial_epochs += size * remaining
                return report
            report.verified = True
            # Fused == serial bitwise; the member heads already hold the
            # epoch's parameters, and the stacked state is identical —
            # continue in stacked space.

        for _ in range(remaining):
            perms = self._draw_permutations()
            losses, train_accs = fused_fit_epoch(
                stacked, x, y, perms, batch_size=self.batch_size
            )
            scores = self._evaluate(stacked, eval_slab)
            for s, session in enumerate(self.sessions):
                session.record_epoch(
                    losses[s], train_accs[s], scores[s][0], scores[s][1]
                )
            report.fused_epochs += size
        stacked.writeback()
        return report
