"""First-order optimisers operating on lists of parameter arrays in place."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.utils.exceptions import ConfigurationError
from repro.utils.validation import check_positive


class Optimizer:
    """Base class: subclasses implement :meth:`step`."""

    def __init__(self, learning_rate: float) -> None:
        check_positive("learning_rate", learning_rate)
        self.learning_rate = float(learning_rate)

    def step(self, params: List[np.ndarray], grads: List[np.ndarray]) -> None:
        """Update ``params`` in place from ``grads`` (aligned lists)."""
        raise NotImplementedError

    def _check_aligned(self, params: List[np.ndarray], grads: List[np.ndarray]) -> None:
        if len(params) != len(grads):
            raise ConfigurationError(
                f"params and grads must align ({len(params)} != {len(grads)})"
            )


class SGD(Optimizer):
    """Plain stochastic gradient descent."""

    def step(self, params: List[np.ndarray], grads: List[np.ndarray]) -> None:
        self._check_aligned(params, grads)
        for param, grad in zip(params, grads):
            param -= self.learning_rate * grad


class Momentum(Optimizer):
    """SGD with classical momentum."""

    def __init__(self, learning_rate: float, momentum: float = 0.9) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self._velocity: Optional[List[np.ndarray]] = None

    def step(self, params: List[np.ndarray], grads: List[np.ndarray]) -> None:
        self._check_aligned(params, grads)
        if self._velocity is None:
            self._velocity = [np.zeros_like(p) for p in params]
        for param, grad, vel in zip(params, grads, self._velocity):
            vel *= self.momentum
            vel -= self.learning_rate * grad
            param += vel


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015)."""

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        super().__init__(learning_rate)
        for name, value in (("beta1", beta1), ("beta2", beta2)):
            if not 0.0 <= value < 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1), got {value}")
        check_positive("epsilon", epsilon)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self._m: Optional[List[np.ndarray]] = None
        self._v: Optional[List[np.ndarray]] = None
        self._t = 0

    def step(self, params: List[np.ndarray], grads: List[np.ndarray]) -> None:
        self._check_aligned(params, grads)
        if self._m is None or self._v is None:
            self._m = [np.zeros_like(p) for p in params]
            self._v = [np.zeros_like(p) for p in params]
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for param, grad, m, v in zip(params, grads, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)


def build_optimizer(name: str, learning_rate: float) -> Optimizer:
    """Construct an optimiser by name (``sgd``, ``momentum`` or ``adam``)."""
    table = {"sgd": SGD, "momentum": Momentum, "adam": Adam}
    if name not in table:
        raise ConfigurationError(
            f"unknown optimizer {name!r}; expected one of {sorted(table)}"
        )
    return table[name](learning_rate)
