"""Unit tests for the EpochScheduler: policies, budgets, backpressure."""

import threading

import pytest

from repro.core.pipeline import OfflineArtifacts, TwoPhaseSelector
from repro.sched import EpochScheduler, SchedulerConfig
from repro.utils.exceptions import (
    BudgetExhaustedError,
    ConfigurationError,
    QueueFullError,
    RequestTimeoutError,
    SchedulerError,
)


@pytest.fixture(scope="module")
def artifacts(nlp_hub_small, nlp_suite_small, test_pipeline_config, fine_tuner):
    return OfflineArtifacts.build(
        nlp_hub_small,
        nlp_suite_small,
        config=test_pipeline_config,
        fine_tuner=fine_tuner,
    )


@pytest.fixture(scope="module")
def serial_results(artifacts):
    selector = TwoPhaseSelector(artifacts)
    return {name: selector.select(name) for name in ("mnli", "boolq")}


def make_scheduler(artifacts, **overrides):
    defaults = dict(max_concurrent=4, epoch_budget=4, max_queue=8)
    defaults.update(overrides)
    return EpochScheduler.for_artifacts(
        artifacts, config=SchedulerConfig(**defaults)
    )


class TestSchedulerConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SchedulerConfig(policy="lifo")
        with pytest.raises(ConfigurationError):
            SchedulerConfig(max_concurrent=0)
        with pytest.raises(ConfigurationError):
            SchedulerConfig(epoch_budget=0)
        with pytest.raises(ConfigurationError):
            SchedulerConfig(max_queue=0)
        with pytest.raises(ConfigurationError):
            SchedulerConfig(max_epochs_per_request=0)
        with pytest.raises(ConfigurationError):
            SchedulerConfig(timeout_seconds=0)

    def test_unbounded_epoch_budget_is_valid(self):
        assert SchedulerConfig(epoch_budget=None).epoch_budget is None

    def test_unbounded_budget_drains_a_stage_per_round(self, artifacts):
        bounded = make_scheduler(artifacts, epoch_budget=1)
        unbounded = make_scheduler(artifacts, epoch_budget=None)
        for scheduler in (bounded, unbounded):
            scheduler.submit("mnli")
            scheduler.submit("boolq")
            scheduler.run_until_idle()
        assert unbounded.stats()["rounds"] < bounded.stats()["rounds"]


class TestSingleRequest:
    @pytest.mark.parametrize("policy", ["fair_share", "deadline"])
    def test_matches_serial_selector(self, artifacts, serial_results, policy):
        scheduler = make_scheduler(artifacts, policy=policy)
        request = scheduler.submit("mnli")
        scheduler.run_until_idle()
        result = scheduler.result(request)
        serial = serial_results["mnli"]
        assert result.selected_model == serial.selected_model
        assert result.selection.stages == serial.selection.stages
        assert result.selection.final_accuracies == serial.selection.final_accuracies
        assert result.recall.recall_scores == serial.recall.recall_scores
        assert result.total_cost == serial.total_cost

    def test_poll_progresses_to_done(self, artifacts):
        scheduler = make_scheduler(artifacts)
        request = scheduler.submit("mnli")
        assert scheduler.poll(request)["state"] == "queued"
        scheduler.run_until_idle()
        snapshot = scheduler.poll(request)
        assert snapshot["state"] == "done"
        assert snapshot["progress"]["phase"] == "done"
        assert snapshot["latency_seconds"] >= 0
        assert snapshot["progress"]["stages_completed"]


class TestConcurrentRequests:
    def test_duplicate_targets_share_sessions(self, artifacts, serial_results):
        scheduler = make_scheduler(artifacts)
        requests = [scheduler.submit("mnli") for _ in range(3)]
        scheduler.run_until_idle()
        results = [scheduler.result(r) for r in requests]
        for result in results:
            assert result.selection.stages == serial_results["mnli"].selection.stages
        stats = scheduler.pool.stats()
        # Three identical requests cost barely more than one.
        assert stats["epochs_reused"] >= stats["epochs_trained"]

    def test_mixed_targets_each_match_serial(self, artifacts, serial_results):
        scheduler = make_scheduler(artifacts, epoch_budget=2)
        targets = ["mnli", "boolq", "mnli"]
        requests = [scheduler.submit(t) for t in targets]
        scheduler.run_until_idle()
        for target, request in zip(targets, requests):
            result = scheduler.result(request)
            serial = serial_results[target]
            assert result.selected_model == serial.selected_model
            assert result.selection.stages == serial.selection.stages

    def test_completion_counters(self, artifacts):
        scheduler = make_scheduler(artifacts)
        requests = [scheduler.submit(t) for t in ("mnli", "boolq")]
        scheduler.run_until_idle()
        stats = scheduler.stats()
        assert stats["completed"] == 2
        assert stats["failed"] == 0
        assert stats["queued"] == 0 and stats["active"] == 0
        assert stats["session_pool"]["misses"] > 0
        assert all(scheduler.result(r) is not None for r in requests)


class TestAdmissionControl:
    def test_queue_full_raises(self, artifacts):
        scheduler = make_scheduler(artifacts, max_queue=2)
        scheduler.submit("mnli")
        scheduler.submit("boolq")
        with pytest.raises(QueueFullError, match="admission queue is full"):
            scheduler.submit("mnli")
        scheduler.run_until_idle()

    def test_submit_after_close_raises(self, artifacts):
        scheduler = make_scheduler(artifacts)
        scheduler.close()
        with pytest.raises(SchedulerError, match="closed"):
            scheduler.submit("mnli")

    def test_epoch_quota_fails_request(self, artifacts):
        scheduler = make_scheduler(artifacts)
        # The quota (1 epoch) is below the first stage's cost for 10
        # recalled candidates, so the request must fail deterministically.
        request = scheduler.submit("mnli", epoch_quota=1)
        scheduler.run_until_idle()
        assert request.state == "failed"
        with pytest.raises(BudgetExhaustedError, match="epoch quota"):
            scheduler.result(request)
        assert scheduler.stats()["failed"] == 1

    def test_expired_deadline_fails_request(self, artifacts):
        scheduler = make_scheduler(artifacts)
        request = scheduler.submit("mnli", timeout=1e-9)
        scheduler.run_until_idle()
        with pytest.raises(RequestTimeoutError):
            scheduler.result(request)

    def test_quota_failure_does_not_disturb_others(self, artifacts, serial_results):
        scheduler = make_scheduler(artifacts)
        doomed = scheduler.submit("mnli", epoch_quota=1)
        healthy = scheduler.submit("boolq")
        scheduler.run_until_idle()
        assert doomed.state == "failed"
        result = scheduler.result(healthy)
        assert result.selection.stages == serial_results["boolq"].selection.stages


class TestBackgroundThread:
    def test_start_serves_submissions(self, artifacts, serial_results):
        scheduler = make_scheduler(artifacts)
        scheduler.start()
        try:
            request = scheduler.submit("mnli")
            result = scheduler.result(request, timeout=120)
            assert result.selected_model == serial_results["mnli"].selected_model
        finally:
            scheduler.close()

    def test_result_timeout_raises(self, artifacts):
        scheduler = make_scheduler(artifacts)
        request = scheduler.submit("mnli")  # nothing is driving the loop
        with pytest.raises(RequestTimeoutError, match="still running"):
            scheduler.result(request, timeout=0.01)
        scheduler.run_until_idle()

    def test_close_without_drain_fails_pending(self, artifacts):
        scheduler = make_scheduler(artifacts)
        request = scheduler.submit("mnli")
        scheduler.close(drain=False)
        assert request.state == "failed"
        with pytest.raises(SchedulerError):
            scheduler.result(request)


class TestDeadlinePolicy:
    def test_earliest_deadline_finishes_first(self, artifacts):
        """The deadline policy drains the urgent request's stages first."""
        scheduler = make_scheduler(
            artifacts, policy="deadline", max_concurrent=3, epoch_budget=2
        )
        relaxed = [scheduler.submit("boolq"), scheduler.submit("mnli")]
        urgent = scheduler.submit("mnli", timeout=3600.0)
        order = []
        lock = threading.Lock()

        def record(request):
            with lock:
                order.append(request.id)

        scheduler._on_complete = record
        scheduler.run_until_idle()
        assert all(r.state == "done" for r in [*relaxed, urgent])
        # The deadline-bearing request was submitted last but drains
        # first, so it must not complete after the unrelated boolq
        # request (the relaxed mnli twin may ride its shared sessions).
        assert order.index(urgent.id) < order.index(relaxed[0].id)


class TestQuotaRefund:
    def test_failed_request_trains_nothing(self, artifacts):
        """Steps claimed before the quota trips are refunded, not trained."""
        scheduler = make_scheduler(artifacts, epoch_budget=None)
        doomed = scheduler.submit("mnli", epoch_quota=3)
        scheduler.run_until_idle()
        assert doomed.state == "failed"
        stats = scheduler.pool.stats()
        # Nothing of the failed request reached a training op: with an
        # unbounded budget its whole first stage was claimed in the same
        # selection pass that tripped the quota.
        assert stats["epochs_trained"] == 0
        assert doomed.epochs_charged <= 3


class TestCancellation:
    def test_close_without_drain_cancels_background_thread(self, artifacts):
        scheduler = make_scheduler(artifacts)
        scheduler.start()
        requests = [scheduler.submit("mnli"), scheduler.submit("boolq")]
        scheduler.close(drain=False)
        for request in requests:
            assert request.state in ("done", "failed")
            assert request._event.is_set()

    def test_terminal_transition_fires_callbacks_once(self, artifacts):
        completions = []
        scheduler = make_scheduler(artifacts)
        scheduler._on_complete = completions.append
        request = scheduler.submit("mnli")
        scheduler.run_until_idle()
        # A late cancellation racing an already-finished request is a no-op.
        scheduler._fail(request, SchedulerError("scheduler closed"))
        assert request.state == "done"
        assert [r.id for r in completions] == [request.id]
