"""Scheduler-level tests for fused (stacked-kernel) round training.

The contract under test: whatever ``fused_training`` is set to, and
whatever executor backend runs the round, the scheduler's answers —
selected models, curves, epoch accounting — are bitwise-identical to the
serial two-phase selector.  Fusion may only change *speed*, observable
through the ``stats()["train"]`` counters.
"""

import pytest

from repro.core.pipeline import OfflineArtifacts, TwoPhaseSelector
from repro.sched import EpochScheduler, SchedulerConfig
from repro.utils.exceptions import ConfigurationError

TARGETS = ("mnli", "boolq")


@pytest.fixture(scope="module")
def artifacts(nlp_hub_small, nlp_suite_small, test_pipeline_config, fine_tuner):
    return OfflineArtifacts.build(
        nlp_hub_small,
        nlp_suite_small,
        config=test_pipeline_config,
        fine_tuner=fine_tuner,
    )


@pytest.fixture(scope="module")
def serial_results(artifacts):
    selector = TwoPhaseSelector(artifacts)
    return {name: selector.select(name) for name in TARGETS}


def run_scheduler(artifacts, *, fused, parallel=None, **overrides):
    config = SchedulerConfig(
        max_concurrent=4,
        epoch_budget=4,
        max_queue=8,
        fused_training=fused,
        **overrides,
    )
    scheduler = EpochScheduler.for_artifacts(
        artifacts, config=config, parallel=parallel
    )
    scheduler.start()
    try:
        requests = {name: scheduler.submit(name) for name in TARGETS}
        results = {}
        for name, request in requests.items():
            request.wait()
            if request.error is not None:
                raise request.error
            results[name] = request.result
    finally:
        scheduler.close()
    return results, scheduler.stats()


def assert_identical(result, oracle):
    assert result.selection.selected_model == oracle.selection.selected_model
    assert result.selection.selected_accuracy == oracle.selection.selected_accuracy
    assert result.selection.runtime_epochs == oracle.selection.runtime_epochs
    assert result.selection.final_accuracies == oracle.selection.final_accuracies
    assert result.recall.recalled_models == oracle.recall.recalled_models


class TestFusedConfig:
    def test_fused_training_defaults_on(self):
        config = SchedulerConfig()
        assert config.fused_training is True
        assert config.fused_min_group == 2

    def test_min_group_validation(self):
        with pytest.raises(ConfigurationError):
            SchedulerConfig(fused_min_group=1)


class TestFusedRounds:
    @pytest.mark.parametrize("backend", [None, "thread", "process"])
    def test_results_identical_to_serial_selector(
        self, artifacts, serial_results, backend
    ):
        fused_results, fused_stats = run_scheduler(
            artifacts, fused=True, parallel=backend
        )
        for name in TARGETS:
            assert_identical(fused_results[name], serial_results[name])
        train = fused_stats["train"]
        assert train["fused_groups"] > 0
        assert train["fused_sessions"] >= 2 * train["fused_groups"]
        assert train["fused_epochs"] > 0
        assert train["delegated_groups"] == 0
        assert train["verified_geometries"] >= 1
        assert train["largest_group"] >= 2

    def test_disabled_fusion_identical_and_counts_nothing(
        self, artifacts, serial_results
    ):
        results, stats = run_scheduler(artifacts, fused=False)
        for name in TARGETS:
            assert_identical(results[name], serial_results[name])
        train = stats["train"]
        assert train["fused_training"] is False
        assert train["fused_groups"] == 0
        assert train["fused_epochs"] == 0
        assert train["serial_epochs"] > 0

    def test_fused_and_plain_schedulers_agree_exactly(self, artifacts):
        fused_results, _ = run_scheduler(artifacts, fused=True)
        plain_results, _ = run_scheduler(artifacts, fused=False)
        for name in TARGETS:
            fused_curves = fused_results[name].selection.stages
            plain_curves = plain_results[name].selection.stages
            assert len(fused_curves) == len(plain_curves)
            assert_identical(fused_results[name], plain_results[name])

    def test_probe_divergence_delegates_whole_round(self, artifacts, monkeypatch):
        """A poisoned kernel may cost speed, never correctness."""
        import repro.nn.batched as batched

        real = batched.fused_fit_epoch

        def lying_fit_epoch(stacked, x, y, perms, *, batch_size):
            losses, accuracies = real(stacked, x, y, perms, batch_size=batch_size)
            return [loss + 1e-9 for loss in losses], accuracies

        monkeypatch.setattr(batched, "fused_fit_epoch", lying_fit_epoch)
        selector = TwoPhaseSelector(artifacts)
        oracle = {name: selector.select(name) for name in TARGETS}
        results, stats = run_scheduler(artifacts, fused=True)
        for name in TARGETS:
            assert_identical(results[name], oracle[name])
        train = stats["train"]
        assert train["delegated_groups"] > 0
        assert train["fused_epochs"] == 0
        assert train["verified_geometries"] == 0

    def test_min_group_above_round_size_stays_serial(
        self, artifacts, serial_results
    ):
        results, stats = run_scheduler(artifacts, fused=True, fused_min_group=64)
        for name in TARGETS:
            assert_identical(results[name], serial_results[name])
        assert stats["train"]["fused_groups"] == 0
