"""Unit tests for the SessionPool's reuse, accounting and eviction."""

import pytest

from repro.cache import fingerprint_model, fingerprint_task, session_key
from repro.sched.pool import SessionPool
from repro.utils.exceptions import SelectionError


@pytest.fixture()
def pool(fine_tuner):
    return SessionPool(fine_tuner)


@pytest.fixture(scope="module")
def task(nlp_suite_small):
    return nlp_suite_small.task("mnli")


@pytest.fixture(scope="module")
def other_task(nlp_suite_small):
    return nlp_suite_small.task("boolq")


@pytest.fixture(scope="module")
def model(nlp_hub_small):
    return nlp_hub_small.get("bert-base-uncased")


class TestAcquire:
    def test_miss_then_hit(self, pool, model, task):
        first = pool.acquire(model, task, version_key="v0-abc")
        second = pool.acquire(model, task, version_key="v0-abc")
        assert first.entry is second.entry
        stats = pool.stats()
        assert stats["misses"] == 1 and stats["hits"] == 1

    def test_distinct_tasks_do_not_share(self, pool, model, task, other_task):
        a = pool.acquire(model, task, version_key="v0-abc")
        b = pool.acquire(model, other_task, version_key="v0-abc")
        assert a.entry is not b.entry

    def test_distinct_versions_do_not_share(self, pool, model, task):
        a = pool.acquire(model, task, version_key="v0-abc")
        b = pool.acquire(model, task, version_key="v1-def")
        assert a.entry is not b.entry

    def test_key_shape_matches_cache_helper(self, pool, model, task):
        view = pool.acquire(model, task, version_key="v0-abc")
        expected = session_key(
            "v0-abc", fingerprint_model(model), fingerprint_task(task)
        )
        assert view.entry.key == expected
        assert view.entry.checkpoint_key() == f"{expected}:e=0"


class TestAdvance:
    def test_reuse_avoids_retraining(self, pool, model, task):
        a = pool.acquire(model, task, version_key="v0")
        b = pool.acquire(model, task, version_key="v0")
        trained_a = pool.advance(a, 2)
        trained_b = pool.advance(b, 2)  # fully served from the shared prefix
        assert (trained_a, trained_b) == (2, 0)
        stats = pool.stats()
        assert stats["epochs_trained"] == 2
        assert stats["epochs_reused"] == 2

    def test_views_read_their_own_epochs(self, pool, model, task):
        a = pool.acquire(model, task, version_key="v0")
        b = pool.acquire(model, task, version_key="v0")
        pool.advance(a, 3)
        pool.advance(b, 1)
        curve = a.entry.session.curve
        assert a.validation_accuracy() == curve.val_accuracy[2]
        assert b.validation_accuracy() == curve.val_accuracy[0]

    def test_shared_session_equals_private_session(self, fine_tuner, model, task):
        """A pooled continuation is bitwise-equal to a private session."""
        pool = SessionPool(fine_tuner)
        a = pool.acquire(model, task, version_key="v0")
        pool.advance(a, 1)
        b = pool.acquire(model, task, version_key="v0")
        pool.advance(b, 3)  # trains 2 more on top of a's prefix
        private = fine_tuner.start_session(model, task)
        private.train_epochs(3)
        assert b.entry.session.curve.val_accuracy == private.curve.val_accuracy
        assert b.entry.session.curve.test_accuracy == private.curve.test_accuracy

    def test_adopt_behind_pooled_session_raises(self, pool, model, task, fine_tuner):
        view = pool.acquire(model, task, version_key="v0")
        pool.advance(view, 2)
        stale = fine_tuner.start_session(model, task)
        stale.train_epochs(1)
        with pytest.raises(SelectionError, match="behind the pooled one"):
            view.entry.adopt(stale)


class TestEviction:
    def test_evict_version_drops_idle_entries(self, pool, model, task):
        view = pool.acquire(model, task, version_key="v0-old")
        pool.acquire(model, task, version_key="v1-new")
        pool.release(view)
        assert pool.evict_version("v0-old") == 1
        assert len(pool) == 1

    def test_leased_entries_survive_eviction(self, pool, model, task):
        pool.acquire(model, task, version_key="v0-old")  # lease kept
        assert pool.evict_version("v0-old") == 0
        assert len(pool) == 1

    def test_lru_bound_evicts_idle_only(self, fine_tuner, nlp_hub_small, task):
        pool = SessionPool(fine_tuner, max_sessions=2)
        names = nlp_hub_small.model_names[:3]
        views = [
            pool.acquire(nlp_hub_small.get(name), task, version_key="v0")
            for name in names[:2]
        ]
        pool.release(views[0])
        pool.acquire(nlp_hub_small.get(names[2]), task, version_key="v0")
        assert len(pool) == 2  # the released entry was evicted
        assert pool.stats()["evicted"] == 1

    def test_record_round_accounting(self, pool):
        pool.record_round(charged=10, trained=4)
        stats = pool.stats()
        assert stats["epochs_trained"] == 4
        assert stats["epochs_reused"] == 6

    def test_max_sessions_validation(self, fine_tuner):
        with pytest.raises(SelectionError):
            SessionPool(fine_tuner, max_sessions=0)
