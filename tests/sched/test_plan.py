"""Unit tests for the SelectionPlan state machine."""

import pytest

from repro.core.pipeline import OfflineArtifacts
from repro.core.plan import SelectionPlan, SessionView, TrainStep
from repro.core.selection import FineSelection, SuccessiveHalving
from repro.utils.exceptions import SelectionError


@pytest.fixture(scope="module")
def artifacts(nlp_hub_small, nlp_suite_small, test_pipeline_config, fine_tuner):
    return OfflineArtifacts.build(
        nlp_hub_small,
        nlp_suite_small,
        config=test_pipeline_config,
        fine_tuner=fine_tuner,
    )


@pytest.fixture()
def engine(artifacts, fine_tuner):
    return FineSelection(
        artifacts.hub,
        artifacts.matrix,
        fine_tuner,
        config=artifacts.config.fine_selection,
    )


@pytest.fixture()
def task(artifacts):
    return artifacts.suite.task("mnli")


CANDIDATES = ["bert-base-uncased", "roberta-base", "albert-base-v2",
              "distilbert-base-uncased"]


class TestPlanStateMachine:
    def test_initial_state(self, engine, task):
        plan = engine.build_plan(CANDIDATES, task)
        assert not plan.done
        assert not plan.needs_recall
        assert plan.surviving == CANDIDATES
        assert plan.num_stages == len(engine.stage_schedule())

    def test_claim_next_hands_out_stage_steps_once(self, engine, task):
        plan = engine.build_plan(CANDIDATES, task)
        steps = []
        while (step := plan.claim_next()) is not None:
            steps.append(step)
        assert [s.model for s in steps] == CANDIDATES
        assert all(s.stage == 0 for s in steps)
        assert plan.claim_next() is None  # stage fully claimed, none done

    def test_complete_unclaimed_step_raises(self, engine, task):
        plan = engine.build_plan(CANDIDATES, task)
        bogus = TrainStep(model=CANDIDATES[0], epochs=1, stage=0)
        with pytest.raises(SelectionError, match="never claimed"):
            plan.complete(bogus)

    def test_release_requeues_step(self, engine, task):
        plan = engine.build_plan(CANDIDATES, task)
        step = plan.claim_next()
        plan.release(step)
        assert plan.claim_next() == step

    def test_stage_advances_only_when_all_steps_complete(self, engine, task):
        plan = engine.build_plan(CANDIDATES, task)
        steps = plan.claim_stage()
        for step in steps[:-1]:
            view = plan.views[step.model]
            view.session.train_epochs(step.epochs)
            view.adopt(view.session, advance=step.epochs)
            plan.complete(step)
            assert plan.stage_index == 0  # still waiting on the last step
        last = steps[-1]
        view = plan.views[last.model]
        view.session.train_epochs(last.epochs)
        view.adopt(view.session, advance=last.epochs)
        plan.complete(last)
        assert plan.stage_index == 1
        assert len(plan.stages) == 1
        assert plan.runtime_epochs == len(CANDIDATES) * steps[0].epochs

    def test_interleaved_driving_matches_blocking_run(self, engine, task):
        """Claiming steps one at a time (scheduler-style) equals run()."""
        blocking = engine.run(CANDIDATES, task)
        plan = engine.build_plan(CANDIDATES, task)
        while not plan.done:
            step = plan.claim_next()
            assert step is not None  # a live plan always has runnable work
            view = plan.views[step.model]
            view.session.train_epochs(step.epochs)
            view.adopt(view.session, advance=step.epochs)
            plan.complete(step)
        assert plan.result.selected_model == blocking.selected_model
        assert plan.result.stages == blocking.stages
        assert plan.result.final_accuracies == blocking.final_accuracies
        assert plan.result.runtime_epochs == blocking.runtime_epochs

    def test_progress_snapshot(self, engine, task):
        plan = engine.build_plan(CANDIDATES, task)
        snapshot = plan.progress()
        assert snapshot["phase"] == "stage 0"
        assert snapshot["num_stages"] == plan.num_stages
        assert snapshot["surviving"] == CANDIDATES

    def test_recall_plan_lifecycle(self, artifacts, engine, fine_tuner, task):
        from repro.core.batch import build_phase_engines

        recall, fine = build_phase_engines(artifacts, fine_tuner)
        plan = SelectionPlan(
            policy=fine,
            task=task,
            view_factory=lambda name: SessionView(
                fine_tuner.start_session(artifacts.hub.get(name), task)
            ),
            recall=recall,
            top_k=4,
        )
        assert plan.needs_recall
        with pytest.raises(SelectionError, match="not finished"):
            plan.two_phase_result()
        recall_result = plan.run_recall()
        assert plan.candidates == recall_result.recalled_models
        with pytest.raises(SelectionError, match="already recalled"):
            plan.run_recall()
        while not plan.done:
            for step in plan.claim_stage():
                view = plan.views[step.model]
                view.session.train_epochs(step.epochs)
                view.adopt(view.session, advance=step.epochs)
                plan.complete(step)
        two_phase = plan.two_phase_result()
        assert two_phase.selected_model == plan.result.selected_model
        # The recall proxy cost is folded into the selection record.
        assert plan.result.extra_epoch_cost == recall_result.epoch_cost

    def test_plan_without_candidates_or_recall_raises(self, engine, task):
        with pytest.raises(SelectionError, match="candidates or a recall"):
            SelectionPlan(
                policy=engine, task=task, view_factory=lambda name: None
            )

    def test_empty_candidates_raise(self, engine, task):
        with pytest.raises(SelectionError, match="must not be empty"):
            engine.build_plan([], task)


class TestSessionView:
    def test_reads_index_recorded_curve(self, artifacts, fine_tuner, task):
        session = fine_tuner.start_session(
            artifacts.hub.get("bert-base-uncased"), task
        )
        view = SessionView(session)
        with pytest.raises(SelectionError, match="not trained"):
            view.validation_accuracy()
        session.train_epochs(3)
        view.adopt(session, advance=2)
        # The view reads epoch 2 even though the session is at epoch 3.
        assert view.validation_accuracy() == session.curve.val_accuracy[1]
        assert view.test_accuracy() == session.curve.test_accuracy[1]

    def test_adopt_behind_position_raises(self, artifacts, fine_tuner, task):
        session = fine_tuner.start_session(
            artifacts.hub.get("bert-base-uncased"), task
        )
        view = SessionView(session)
        with pytest.raises(SelectionError, match="view requires"):
            view.adopt(session, advance=2)  # session has trained 0 epochs


class TestHalvingSchedules:
    def test_successive_halving_schedule(self, artifacts, fine_tuner):
        engine = SuccessiveHalving(
            artifacts.hub, fine_tuner, config=artifacts.config.fine_selection
        )
        config = artifacts.config.fine_selection
        schedule = engine.stage_schedule()
        assert sum(schedule) <= config.total_epochs
        assert all(e == config.validation_interval for e in schedule)
