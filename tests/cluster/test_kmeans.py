"""Tests for repro.cluster.kmeans."""

import numpy as np
import pytest

from repro.cluster.kmeans import KMeans, kmeans_cluster
from repro.utils.exceptions import ConfigurationError, DataError


def make_blobs(rng, centers, n_per_center=30, spread=0.3):
    points, labels = [], []
    for index, center in enumerate(centers):
        points.append(center + spread * rng.normal(size=(n_per_center, len(center))))
        labels.extend([index] * n_per_center)
    return np.vstack(points), np.array(labels)


class TestKMeans:
    def test_recovers_well_separated_blobs(self):
        rng = np.random.default_rng(0)
        points, truth = make_blobs(rng, np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]]))
        labels = KMeans(3, rng=0).fit_predict(points)
        # Same-blob points share a label and different blobs get different labels.
        for blob in range(3):
            blob_labels = labels[truth == blob]
            assert len(set(blob_labels.tolist())) == 1
        assert len(set(labels.tolist())) == 3

    def test_inertia_recorded(self):
        rng = np.random.default_rng(1)
        points, _ = make_blobs(rng, np.array([[0.0, 0.0], [5.0, 5.0]]))
        model = KMeans(2, rng=0)
        model.fit_predict(points)
        assert model.inertia_ is not None and model.inertia_ >= 0
        assert model.centers_.shape == (2, 2)

    def test_more_clusters_lower_inertia(self):
        rng = np.random.default_rng(2)
        points = rng.normal(size=(60, 3))
        inertias = []
        for k in (2, 6):
            model = KMeans(k, rng=0)
            model.fit_predict(points)
            inertias.append(model.inertia_)
        assert inertias[1] < inertias[0]

    def test_deterministic_with_seed(self):
        rng = np.random.default_rng(3)
        points, _ = make_blobs(rng, np.array([[0.0, 0.0], [8.0, 8.0]]))
        a = KMeans(2, rng=42).fit_predict(points)
        b = KMeans(2, rng=42).fit_predict(points)
        assert np.array_equal(a, b)

    def test_k_equal_n_points(self):
        points = np.array([[0.0], [1.0], [2.0]])
        labels = KMeans(3, rng=0).fit_predict(points)
        assert len(set(labels.tolist())) == 3

    def test_rejects_more_clusters_than_points(self):
        with pytest.raises(DataError):
            KMeans(5, rng=0).fit_predict(np.ones((3, 2)))

    def test_rejects_invalid_params(self):
        with pytest.raises(ConfigurationError):
            KMeans(0)
        with pytest.raises(ConfigurationError):
            KMeans(2, max_iter=0)

    def test_rejects_1d_points(self):
        with pytest.raises(DataError):
            KMeans(2, rng=0).fit_predict(np.ones(5))


def test_kmeans_cluster_wrapper():
    rng = np.random.default_rng(4)
    points, _ = make_blobs(rng, np.array([[0.0, 0.0], [9.0, 9.0]]), n_per_center=5)
    names = [f"item{i}" for i in range(10)]
    assignment = kmeans_cluster(names, points, 2, rng=0)
    assert assignment.num_clusters == 2
    assert set(assignment.item_names) == set(names)
