"""Tests for the silhouette coefficient."""

import numpy as np
import pytest

from repro.cluster.distance import pairwise_distances
from repro.cluster.silhouette import (
    _silhouette_samples_loop,
    silhouette_samples,
    silhouette_score,
)
from repro.utils.exceptions import DataError


def blob_distances_and_labels(rng, separation):
    points = np.vstack(
        [rng.normal(size=(10, 2)), separation + rng.normal(size=(10, 2))]
    )
    labels = np.array([0] * 10 + [1] * 10)
    return pairwise_distances(points), labels


class TestSilhouette:
    def test_well_separated_clusters_score_high(self):
        distances, labels = blob_distances_and_labels(np.random.default_rng(0), 20.0)
        assert silhouette_score(distances, labels) > 0.8

    def test_random_labels_score_low(self):
        rng = np.random.default_rng(1)
        points = rng.normal(size=(30, 3))
        distances = pairwise_distances(points)
        labels = rng.integers(0, 2, size=30)
        assert silhouette_score(distances, labels) < 0.3

    def test_better_separation_scores_higher(self):
        close, labels = blob_distances_and_labels(np.random.default_rng(2), 2.0)
        far, _ = blob_distances_and_labels(np.random.default_rng(2), 20.0)
        assert silhouette_score(far, labels) > silhouette_score(close, labels)

    def test_values_in_range(self):
        distances, labels = blob_distances_and_labels(np.random.default_rng(3), 5.0)
        values = silhouette_samples(distances, labels)
        assert np.all(values >= -1.0) and np.all(values <= 1.0)

    def test_singleton_cluster_gets_zero(self):
        distances = pairwise_distances(np.array([[0.0], [0.1], [5.0]]))
        labels = np.array([0, 0, 1])
        values = silhouette_samples(distances, labels)
        assert values[2] == 0.0

    def test_requires_two_clusters(self):
        distances = pairwise_distances(np.ones((4, 2)))
        with pytest.raises(DataError):
            silhouette_score(distances, np.zeros(4, dtype=int))

    def test_rejects_misaligned_labels(self):
        distances = pairwise_distances(np.random.default_rng(4).normal(size=(4, 2)))
        with pytest.raises(DataError):
            silhouette_score(distances, np.array([0, 1]))


class TestStreamingEqualsLoop:
    """The streaming path must be bitwise-identical to the original loop."""

    @pytest.mark.parametrize("seed", range(12))
    def test_bitwise_equal_on_random_labelings(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 120))
        distances = pairwise_distances(rng.normal(size=(n, 4)))
        labels = rng.integers(0, max(2, n // 3), size=n)
        if np.unique(labels).size < 2:
            labels[0] = labels[0] + 1 if labels[0] == 0 else 0
        assert np.array_equal(
            silhouette_samples(distances, labels),
            _silhouette_samples_loop(distances, labels),
        )

    def test_bitwise_equal_with_singletons_and_negative_labels(self):
        rng = np.random.default_rng(99)
        distances = pairwise_distances(rng.normal(size=(15, 3)))
        labels = np.array([0] * 6 + [3] * 6 + [-1, 7, 9])  # unsorted, gappy
        assert np.array_equal(
            silhouette_samples(distances, labels),
            _silhouette_samples_loop(distances, labels),
        )

    def test_memmap_input_streams_and_matches_dense(self, tmp_path):
        rng = np.random.default_rng(5)
        distances = pairwise_distances(rng.normal(size=(60, 4)))
        labels = rng.integers(0, 6, size=60)
        path = tmp_path / "distances.npy"
        np.save(path, distances)
        mapped = np.load(path, mmap_mode="r")
        assert np.array_equal(
            silhouette_samples(mapped, labels),
            _silhouette_samples_loop(distances, labels),
        )
