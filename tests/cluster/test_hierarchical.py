"""Tests for repro.cluster.hierarchical."""

import numpy as np
import pytest

from repro.cluster.distance import pairwise_distances
from repro.cluster.hierarchical import AgglomerativeClustering, hierarchical_cluster
from repro.utils.exceptions import ConfigurationError, DataError


def two_blob_distances(rng, n_per_blob=8, separation=10.0):
    points = np.vstack(
        [
            rng.normal(size=(n_per_blob, 2)),
            separation + rng.normal(size=(n_per_blob, 2)),
        ]
    )
    return pairwise_distances(points)


class TestAgglomerativeClustering:
    def test_num_clusters_stopping_rule(self):
        distances = two_blob_distances(np.random.default_rng(0))
        labels = AgglomerativeClustering(num_clusters=2).fit_predict(distances)
        assert len(set(labels.tolist())) == 2
        # The two blobs must be separated.
        assert len(set(labels[:8].tolist())) == 1
        assert len(set(labels[8:].tolist())) == 1
        assert labels[0] != labels[8]

    def test_distance_threshold_stopping_rule(self):
        distances = two_blob_distances(np.random.default_rng(1))
        labels = AgglomerativeClustering(distance_threshold=5.0).fit_predict(distances)
        assert len(set(labels.tolist())) == 2

    def test_tiny_threshold_keeps_singletons(self):
        distances = two_blob_distances(np.random.default_rng(2))
        labels = AgglomerativeClustering(distance_threshold=1e-9).fit_predict(distances)
        assert len(set(labels.tolist())) == distances.shape[0]

    def test_single_cluster_when_target_is_one(self):
        distances = two_blob_distances(np.random.default_rng(3))
        labels = AgglomerativeClustering(num_clusters=1).fit_predict(distances)
        assert set(labels.tolist()) == {0}

    @pytest.mark.parametrize("linkage", ["average", "single", "complete"])
    def test_all_linkages_separate_blobs(self, linkage):
        distances = two_blob_distances(np.random.default_rng(4))
        labels = AgglomerativeClustering(num_clusters=2, linkage=linkage).fit_predict(distances)
        assert labels[0] != labels[8]

    def test_merge_history_recorded(self):
        distances = two_blob_distances(np.random.default_rng(5), n_per_blob=4)
        algorithm = AgglomerativeClustering(num_clusters=2)
        algorithm.fit_predict(distances)
        assert len(algorithm.merge_history_) == 6  # 8 items -> 2 clusters

    def test_requires_a_stopping_rule(self):
        with pytest.raises(ConfigurationError):
            AgglomerativeClustering()

    def test_rejects_bad_linkage(self):
        with pytest.raises(ConfigurationError):
            AgglomerativeClustering(num_clusters=2, linkage="ward")

    def test_rejects_invalid_distance_matrix(self):
        with pytest.raises(DataError):
            AgglomerativeClustering(num_clusters=2).fit_predict(np.array([[0.0, 1.0], [2.0, 0.0]]))

    def test_single_item(self):
        labels = AgglomerativeClustering(num_clusters=1).fit_predict(np.zeros((1, 1)))
        assert labels.tolist() == [0]


def test_hierarchical_cluster_wrapper():
    distances = two_blob_distances(np.random.default_rng(6), n_per_blob=3)
    names = [f"m{i}" for i in range(6)]
    assignment = hierarchical_cluster(names, distances, num_clusters=2)
    assert assignment.num_clusters == 2
    assert set(assignment.item_names) == set(names)


def test_hierarchical_cluster_wrapper_plumbs_work_store(tmp_path):
    """Regression: the wrapper used to drop ``work_store``, spilling the
    scratch working matrix of a memmapped input to the process default."""
    from repro.store import MatrixStore

    calls = []

    class SpyStore(MatrixStore):
        def scratch(self, shape, dtype=float, *, prefix="scratch"):
            calls.append(tuple(shape))
            return super().scratch(shape, dtype, prefix=prefix)

    distances = two_blob_distances(np.random.default_rng(7), n_per_blob=3)
    path = tmp_path / "distances.npy"
    np.save(path, distances)
    mapped = np.load(path, mmap_mode="r")
    names = [f"m{i}" for i in range(6)]
    spy = SpyStore(tmp_path / "store")
    assignment = hierarchical_cluster(names, mapped, num_clusters=2, work_store=spy)
    assert calls == [(6, 6)]
    dense = hierarchical_cluster(names, distances, num_clusters=2)
    assert assignment.labels.tolist() == dense.labels.tolist()
