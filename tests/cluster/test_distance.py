"""Tests for repro.cluster.distance."""

import numpy as np
import pytest

from repro.cluster.distance import (
    check_distance_matrix,
    pairwise_distances,
    similarity_to_distance,
)
from repro.utils.exceptions import DataError


class TestPairwiseDistances:
    def test_euclidean_matches_manual(self):
        points = np.array([[0.0, 0.0], [3.0, 4.0]])
        distances = pairwise_distances(points)
        assert np.isclose(distances[0, 1], 5.0)

    def test_symmetric_zero_diagonal(self):
        points = np.random.default_rng(0).normal(size=(6, 4))
        distances = pairwise_distances(points)
        assert np.allclose(distances, distances.T)
        assert np.allclose(np.diag(distances), 0.0)

    def test_sqeuclidean(self):
        points = np.array([[0.0], [2.0]])
        assert pairwise_distances(points, metric="sqeuclidean")[0, 1] == 4.0

    def test_cosine_orthogonal_vectors(self):
        points = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert np.isclose(pairwise_distances(points, metric="cosine")[0, 1], 1.0)

    def test_cityblock(self):
        points = np.array([[0.0, 0.0], [1.0, 2.0]])
        assert pairwise_distances(points, metric="cityblock")[0, 1] == 3.0

    def test_unknown_metric(self):
        with pytest.raises(DataError):
            pairwise_distances(np.ones((2, 2)), metric="mahalanobis")

    def test_rejects_1d(self):
        with pytest.raises(DataError):
            pairwise_distances(np.ones(4))


class TestSimilarityToDistance:
    def test_conversion(self):
        similarity = np.array([[1.0, 0.8], [0.8, 1.0]])
        distance = similarity_to_distance(similarity)
        assert np.isclose(distance[0, 1], 0.2)
        assert np.allclose(np.diag(distance), 0.0)

    def test_clips_negative_distances(self):
        similarity = np.array([[1.0, 1.2], [1.2, 1.0]])
        assert similarity_to_distance(similarity).min() >= 0.0

    def test_rejects_non_square(self):
        with pytest.raises(DataError):
            similarity_to_distance(np.ones((2, 3)))


class TestCheckDistanceMatrix:
    def test_accepts_valid(self):
        matrix = pairwise_distances(np.random.default_rng(0).normal(size=(4, 2)))
        assert check_distance_matrix(matrix).shape == (4, 4)

    def test_rejects_asymmetric(self):
        with pytest.raises(DataError):
            check_distance_matrix(np.array([[0.0, 1.0], [2.0, 0.0]]))

    def test_rejects_nonzero_diagonal(self):
        with pytest.raises(DataError):
            check_distance_matrix(np.array([[1.0, 0.5], [0.5, 0.0]]))

    def test_rejects_negative(self):
        with pytest.raises(DataError):
            check_distance_matrix(np.array([[0.0, -0.5], [-0.5, 0.0]]))
