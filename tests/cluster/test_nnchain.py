"""Tests for repro.cluster.nnchain (nearest-neighbor-chain agglomeration)."""

import numpy as np
import pytest

from repro.cluster.distance import pairwise_distances
from repro.cluster.hierarchical import AgglomerativeClustering
from repro.cluster.nnchain import (
    NNChainClustering,
    TiedDistancesError,
    nn_chain_dendrogram,
    nnchain_cluster,
)
from repro.store import MatrixStore
from repro.utils.exceptions import ConfigurationError, DataError


def two_blob_distances(rng, n_per_blob=8, separation=10.0):
    points = np.vstack(
        [
            rng.normal(size=(n_per_blob, 2)),
            separation + rng.normal(size=(n_per_blob, 2)),
        ]
    )
    return pairwise_distances(points)


def random_distances(seed, n=24, dim=6):
    return pairwise_distances(np.random.default_rng(seed).normal(size=(n, dim)))


class TestNNChainClustering:
    def test_num_clusters_stopping_rule(self):
        distances = two_blob_distances(np.random.default_rng(0))
        labels = NNChainClustering(num_clusters=2).fit_predict(distances)
        assert len(set(labels.tolist())) == 2
        assert len(set(labels[:8].tolist())) == 1
        assert len(set(labels[8:].tolist())) == 1
        assert labels[0] != labels[8]

    def test_distance_threshold_stopping_rule(self):
        distances = two_blob_distances(np.random.default_rng(1))
        labels = NNChainClustering(distance_threshold=5.0).fit_predict(distances)
        assert len(set(labels.tolist())) == 2

    def test_tiny_threshold_keeps_singletons(self):
        distances = two_blob_distances(np.random.default_rng(2))
        labels = NNChainClustering(distance_threshold=1e-9).fit_predict(distances)
        assert len(set(labels.tolist())) == distances.shape[0]

    def test_single_cluster_when_target_is_one(self):
        distances = two_blob_distances(np.random.default_rng(3))
        labels = NNChainClustering(num_clusters=1).fit_predict(distances)
        assert set(labels.tolist()) == {0}

    @pytest.mark.parametrize("linkage", ["average", "single", "complete"])
    def test_all_linkages_separate_blobs(self, linkage):
        distances = two_blob_distances(np.random.default_rng(4))
        labels = NNChainClustering(num_clusters=2, linkage=linkage).fit_predict(
            distances
        )
        assert labels[0] != labels[8]

    def test_requires_a_stopping_rule(self):
        with pytest.raises(ConfigurationError):
            NNChainClustering()

    def test_rejects_bad_linkage(self):
        with pytest.raises(ConfigurationError):
            NNChainClustering(num_clusters=2, linkage="ward")

    def test_rejects_invalid_distance_matrix(self):
        with pytest.raises(DataError):
            NNChainClustering(num_clusters=2).fit_predict(
                np.array([[0.0, 1.0], [2.0, 0.0]])
            )

    def test_single_item(self):
        labels = NNChainClustering(num_clusters=1).fit_predict(np.zeros((1, 1)))
        assert labels.tolist() == [0]


class TestScanEquivalence:
    """The issue's exactness gate: merge-for-merge identical to the scan."""

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("linkage", ["average", "single", "complete"])
    def test_labels_match_scan_num_clusters(self, seed, linkage):
        distances = random_distances(seed)
        for k in (1, 2, 5, 12):
            scan = AgglomerativeClustering(num_clusters=k, linkage=linkage)
            chain = NNChainClustering(num_clusters=k, linkage=linkage)
            assert np.array_equal(
                scan.fit_predict(distances), chain.fit_predict(distances)
            ), (seed, linkage, k)

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("linkage", ["average", "single", "complete"])
    def test_labels_match_scan_distance_threshold(self, seed, linkage):
        distances = random_distances(seed)
        for quantile in (0.05, 0.2, 0.5, 0.9):
            threshold = float(
                np.quantile(distances[np.triu_indices_from(distances, k=1)], quantile)
            ) * 1.0000001  # nudge off exact data values: heights of the two
            # engines agree to ~1 ulp for average linkage, not bitwise
            scan = AgglomerativeClustering(
                distance_threshold=threshold, linkage=linkage
            )
            chain = NNChainClustering(distance_threshold=threshold, linkage=linkage)
            assert np.array_equal(
                scan.fit_predict(distances), chain.fit_predict(distances)
            ), (seed, linkage, quantile)

    @pytest.mark.parametrize("linkage", ["average", "single", "complete"])
    def test_merge_history_matches_scan(self, linkage):
        distances = random_distances(42, n=30)
        scan = AgglomerativeClustering(num_clusters=3, linkage=linkage)
        chain = NNChainClustering(num_clusters=3, linkage=linkage)
        scan.fit_predict(distances)
        chain.fit_predict(distances)
        assert len(scan.merge_history_) == len(chain.merge_history_)
        for (a1, b1, h1), (a2, b2, h2) in zip(
            scan.merge_history_, chain.merge_history_
        ):
            assert (a1, b1) == (a2, b2)
            if linkage == "average":
                # Lance-Williams rounds differently from the scan's raw
                # block means; the values are mathematically identical.
                assert h1 == pytest.approx(h2, rel=1e-12)
            else:
                assert h1 == h2  # min/max linkage updates are exact


class TestTieDelegation:
    """Tied inputs must reproduce the scan's first-occurrence tie-breaking."""

    def quantized(self, seed, n=16):
        rng = np.random.default_rng(seed)
        # A coarse value grid guarantees duplicate off-diagonal distances.
        raw = rng.integers(1, 5, size=(n, n)).astype(float)
        distances = (raw + raw.T) / 2
        np.fill_diagonal(distances, 0.0)
        return distances

    def test_dendrogram_refuses_ties(self):
        with pytest.raises(TiedDistancesError):
            nn_chain_dendrogram(self.quantized(0))

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("linkage", ["average", "single", "complete"])
    def test_tied_inputs_match_scan_exactly(self, seed, linkage):
        distances = self.quantized(seed)
        for kwargs in ({"num_clusters": 4}, {"distance_threshold": 2.0}):
            scan = AgglomerativeClustering(linkage=linkage, **kwargs)
            chain = NNChainClustering(linkage=linkage, **kwargs)
            assert np.array_equal(
                scan.fit_predict(distances), chain.fit_predict(distances)
            )
            # Delegation runs the scan underneath: histories are bitwise.
            assert scan.merge_history_ == chain.merge_history_

    def test_duplicate_points_match_scan(self):
        rng = np.random.default_rng(7)
        points = rng.normal(size=(6, 3))
        points = np.vstack([points, points[:3]])  # exact duplicates
        distances = pairwise_distances(points)
        scan = AgglomerativeClustering(num_clusters=3)
        chain = NNChainClustering(num_clusters=3)
        assert np.array_equal(
            scan.fit_predict(distances), chain.fit_predict(distances)
        )


class TestMemmapPath:
    def memmapped(self, tmp_path, distances):
        path = tmp_path / "distances.npy"
        np.save(path, distances)
        return np.load(path, mmap_mode="r")

    def test_memmap_bitwise_equals_dense(self, tmp_path):
        distances = random_distances(9, n=40)
        mapped = self.memmapped(tmp_path, distances)
        dense_algo = NNChainClustering(num_clusters=5)
        mapped_algo = NNChainClustering(num_clusters=5)
        dense_labels = dense_algo.fit_predict(distances)
        mapped_labels = mapped_algo.fit_predict(
            mapped, work_store=MatrixStore(tmp_path / "store")
        )
        assert np.array_equal(dense_labels, mapped_labels)
        assert dense_algo.merge_history_ == mapped_algo.merge_history_

    def test_scratch_lands_in_callers_store(self, tmp_path):
        calls = []

        class SpyStore(MatrixStore):
            def scratch(self, shape, dtype=float, *, prefix="scratch"):
                calls.append((tuple(shape), prefix))
                return super().scratch(shape, dtype, prefix=prefix)

        distances = random_distances(10, n=12)
        mapped = self.memmapped(tmp_path, distances)
        spy = SpyStore(tmp_path / "store")
        NNChainClustering(num_clusters=3).fit_predict(mapped, work_store=spy)
        assert calls == [((12, 12), "nnchain")]

    def test_dense_input_never_touches_the_store(self, tmp_path):
        class ExplodingStore(MatrixStore):
            def scratch(self, *args, **kwargs):  # pragma: no cover - guard
                raise AssertionError("dense input must not spill")

        distances = random_distances(11, n=10)
        NNChainClustering(num_clusters=2).fit_predict(
            distances, work_store=ExplodingStore(tmp_path / "store")
        )


def test_nnchain_cluster_wrapper():
    distances = two_blob_distances(np.random.default_rng(6), n_per_blob=3)
    names = [f"m{i}" for i in range(6)]
    assignment = nnchain_cluster(names, distances, num_clusters=2)
    assert assignment.num_clusters == 2
    assert set(assignment.item_names) == set(names)
