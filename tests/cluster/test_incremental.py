"""Unit tests for incremental cluster maintenance (repro.cluster.incremental)."""

import numpy as np
import pytest

from repro.cluster.incremental import ClusteringUpdate, update_clustering
from repro.core.config import ClusteringConfig
from repro.core.model_clustering import ModelClusterer
from repro.core.performance import PerformanceMatrix
from repro.core.similarity import (
    performance_similarity_matrix,
    update_similarity_matrix,
)
from repro.utils.exceptions import DataError


def _matrix(values, names):
    return PerformanceMatrix(
        dataset_names=[f"d{i}" for i in range(values.shape[0])],
        model_names=list(names),
        values=values,
    )


@pytest.fixture()
def base():
    """A 10-model repository with two tight families and loose singletons."""
    rng = np.random.default_rng(3)
    centers = {
        "a": rng.uniform(0.4, 0.9, size=6),
        "b": rng.uniform(0.2, 0.7, size=6),
    }
    columns, names = [], []
    for family, center in centers.items():
        for i in range(3):
            columns.append(np.clip(center + rng.normal(0, 0.01, 6), 0, 1))
            names.append(f"{family}{i}")
    for i in range(4):
        columns.append(rng.uniform(0.0, 1.0, size=6))
        names.append(f"solo{i}")
    matrix = _matrix(np.column_stack(columns), names)
    config = ClusteringConfig(staleness_threshold=0.5)
    clustering = ModelClusterer(config).cluster(matrix, cache=False)
    return matrix, clustering, config


def _grow(matrix, rng, added_names):
    values = np.concatenate(
        [matrix.values, rng.uniform(0, 1, (matrix.values.shape[0], len(added_names)))],
        axis=1,
    )
    return _matrix(values, matrix.model_names + list(added_names))


class TestUpdateClustering:
    def test_noop_update_returns_old_clustering(self, base):
        matrix, clustering, config = base
        update = update_clustering(
            clustering, matrix, clustering.similarity, config=config
        )
        assert isinstance(update, ClusteringUpdate)
        assert update.clustering is clustering
        assert not update.reclustered
        assert update.touched_clusters == []

    def test_sibling_add_joins_its_family_cluster(self, base):
        matrix, clustering, config = base
        # A new checkpoint nearly identical to family "a" must join it.
        new_values = np.concatenate(
            [matrix.values, matrix.values[:, [0]] + 1e-4], axis=1
        )
        new_matrix = _matrix(new_values, matrix.model_names + ["a_new"])
        similarity = update_similarity_matrix(
            matrix, clustering.similarity, new_matrix, top_k=config.top_k, cache=False
        )
        update = update_clustering(clustering, new_matrix, similarity, config=config)
        assert not update.reclustered
        assert update.clustering.cluster_of("a_new") == update.clustering.cluster_of("a0")
        assert update.clustering.cluster_of("a_new") in update.touched_clusters

    def test_outlier_add_becomes_singleton(self, base):
        matrix, clustering, config = base
        # An adversarial vector far from everything: distance ~1 to all.
        outlier = np.where(matrix.values.mean(axis=1) > 0.5, 0.0, 1.0)[:, None]
        new_matrix = _matrix(
            np.concatenate([matrix.values, outlier], axis=1),
            matrix.model_names + ["outlier"],
        )
        similarity = update_similarity_matrix(
            matrix, clustering.similarity, new_matrix, top_k=config.top_k, cache=False
        )
        update = update_clustering(clustering, new_matrix, similarity, config=config)
        assert not update.reclustered
        assert update.clustering.is_singleton("outlier")

    def test_untouched_clusters_keep_their_representative(self, base):
        matrix, clustering, config = base
        removed = "b0"
        survivors = [n for n in matrix.model_names if n != removed]
        idx = [matrix.model_names.index(n) for n in survivors]
        new_matrix = _matrix(matrix.values[:, idx], survivors)
        similarity = update_similarity_matrix(
            matrix, clustering.similarity, new_matrix, top_k=config.top_k, cache=False
        )
        update = update_clustering(clustering, new_matrix, similarity, config=config)
        a_cluster = update.clustering.cluster_of("a0")
        assert a_cluster not in update.touched_clusters
        assert (
            update.clustering.representatives[a_cluster]
            == clustering.representatives[clustering.cluster_of("a0")]
        )

    def test_staleness_accumulates_until_recluster(self, base):
        matrix, clustering, config = base
        rng = np.random.default_rng(11)
        total_added = 0
        reclustered = False
        for step in range(14):
            new_matrix = _grow(matrix, rng, [f"extra{step}"])
            similarity = update_similarity_matrix(
                matrix, clustering.similarity, new_matrix,
                top_k=config.top_k, cache=False,
            )
            update = update_clustering(
                clustering, new_matrix, similarity, config=config
            )
            total_added += 1
            if update.reclustered:
                reclustered = True
                assert update.clustering.extras["stale_models"] == 0.0
                break
            stale = update.clustering.extras["stale_models"]
            assert stale == total_added
            assert stale / len(new_matrix.model_names) <= config.staleness_threshold
            matrix, clustering = new_matrix, update.clustering
        # stale/n = k/(10+k) crosses the 0.5 budget at the 11th add.
        assert reclustered

    def test_shrink_below_two_models_raises(self, base):
        matrix, clustering, config = base
        last = matrix.model_names[:1]
        tiny = _matrix(matrix.values[:, :1], last)
        similarity = np.ones((1, 1))
        with pytest.raises(DataError):
            update_clustering(clustering, tiny, similarity, config=config)

    def test_misaligned_similarity_rejected(self, base):
        matrix, clustering, config = base
        with pytest.raises(DataError):
            update_clustering(clustering, matrix, np.ones((3, 3)), config=config)


class TestUpdateSimilarityValidation:
    def test_changed_benchmarks_rejected(self, base):
        matrix, clustering, _ = base
        renamed = PerformanceMatrix(
            dataset_names=[f"x{i}" for i in range(matrix.values.shape[0])],
            model_names=matrix.model_names,
            values=matrix.values,
        )
        with pytest.raises(DataError):
            update_similarity_matrix(
                matrix, clustering.similarity, renamed, cache=False
            )

    def test_mutated_survivor_column_rejected(self, base):
        matrix, clustering, _ = base
        poisoned = matrix.values.copy()
        poisoned[0, 0] += 0.25
        with pytest.raises(DataError):
            update_similarity_matrix(
                matrix,
                clustering.similarity,
                _matrix(poisoned, matrix.model_names),
                cache=False,
            )

    def test_misaligned_old_similarity_rejected(self, base):
        matrix, _, _ = base
        with pytest.raises(DataError):
            update_similarity_matrix(matrix, np.ones((2, 2)), matrix, cache=False)

    def test_pure_removal_is_a_submatrix_copy(self, base):
        matrix, clustering, _ = base
        survivors = matrix.model_names[2:]
        idx = [matrix.model_names.index(n) for n in survivors]
        new_matrix = _matrix(matrix.values[:, idx], survivors)
        result = update_similarity_matrix(
            matrix, clustering.similarity, new_matrix, top_k=5, cache=False
        )
        oracle = performance_similarity_matrix(new_matrix, top_k=5, cache=False)
        assert np.array_equal(result, oracle)

    def test_mismatched_top_k_rejected(self, base):
        """Regression: a top_k differing from the one old_similarity was
        computed with must fail loudly, not silently mix regimes and poison
        the cache under the new matrix's canonical key."""
        matrix, clustering, config = base
        assert config.top_k == 5
        with pytest.raises(DataError):
            update_similarity_matrix(
                matrix, clustering.similarity, matrix, top_k=3, cache=False
            )


class TestAnnPlacement:
    def test_none_default_is_exact(self):
        assert ClusteringConfig().ann_placement is None

    def test_wide_shortlist_matches_exact_placement(self, base):
        """ANN placement probing every list must match the full scan."""
        matrix, clustering, config = base
        rng = np.random.default_rng(11)
        new_matrix = _grow(matrix, rng, ["x0", "x1"])
        similarity = update_similarity_matrix(
            matrix, clustering.similarity, new_matrix, top_k=config.top_k, cache=False
        )
        exact = update_clustering(clustering, new_matrix, similarity, config=config)
        ann_config = ClusteringConfig(
            staleness_threshold=0.5, ann_placement=len(new_matrix.model_names)
        )
        approx = update_clustering(
            clustering, new_matrix, similarity, config=ann_config
        )
        assert np.array_equal(
            exact.clustering.assignment.labels, approx.clustering.assignment.labels
        )
        assert exact.touched_clusters == approx.touched_clusters

    def test_narrow_shortlist_keeps_structural_invariants(self, base):
        matrix, clustering, config = base
        rng = np.random.default_rng(12)
        new_matrix = _grow(matrix, rng, ["y0", "y1", "y2"])
        similarity = update_similarity_matrix(
            matrix, clustering.similarity, new_matrix, top_k=config.top_k, cache=False
        )
        ann_config = ClusteringConfig(staleness_threshold=0.9, ann_placement=1)
        update = update_clustering(
            clustering, new_matrix, similarity, config=ann_config
        )
        assert not update.reclustered
        # Survivors keep pairwise co-membership exactly.
        new = update.clustering
        for a in matrix.model_names:
            for b in matrix.model_names:
                assert (clustering.cluster_of(a) == clustering.cluster_of(b)) == (
                    new.cluster_of(a) == new.cluster_of(b)
                )
        assert set(new.model_names) == set(new_matrix.model_names)

    def test_sibling_add_still_joins_family_with_ann(self, base):
        matrix, clustering, config = base
        new_values = np.concatenate(
            [matrix.values, matrix.values[:, [0]] + 1e-4], axis=1
        )
        new_matrix = _matrix(new_values, matrix.model_names + ["a_new"])
        similarity = update_similarity_matrix(
            matrix, clustering.similarity, new_matrix, top_k=config.top_k, cache=False
        )
        ann_config = ClusteringConfig(staleness_threshold=0.5, ann_placement=2)
        update = update_clustering(
            clustering, new_matrix, similarity, config=ann_config
        )
        # The nearest neighbor in performance space is a0 itself, so its
        # cluster is always in the shortlist and the join is preserved.
        assert update.clustering.cluster_of("a_new") == update.clustering.cluster_of("a0")

    def test_invalid_ann_placement_rejected(self):
        from repro.utils.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            ClusteringConfig(ann_placement=0)
