"""Tests for repro.cluster.assignments.ClusterAssignment."""

import pytest

from repro.cluster.assignments import ClusterAssignment
from repro.utils.exceptions import DataError


@pytest.fixture()
def assignment():
    return ClusterAssignment.from_labels(
        ["a", "b", "c", "d", "e"], [0, 0, 1, 2, 1]
    )


class TestClusterAssignment:
    def test_num_clusters(self, assignment):
        assert assignment.num_clusters == 3

    def test_members(self, assignment):
        assert assignment.members(0) == ["a", "b"]
        assert assignment.members(1) == ["c", "e"]

    def test_cluster_of(self, assignment):
        assert assignment.cluster_of("d") == 2

    def test_cluster_of_unknown(self, assignment):
        with pytest.raises(DataError):
            assignment.cluster_of("zzz")

    def test_non_singleton_clusters(self, assignment):
        non_singleton = assignment.non_singleton_clusters()
        assert set(non_singleton) == {0, 1}

    def test_singleton_items(self, assignment):
        assert assignment.singleton_items() == ["d"]

    def test_as_dict_covers_all_items(self, assignment):
        as_dict = assignment.as_dict()
        assert sorted(name for members in as_dict.values() for name in members) == [
            "a", "b", "c", "d", "e",
        ]

    def test_from_labels_remaps_to_contiguous(self):
        assignment = ClusterAssignment.from_labels(["x", "y", "z"], [10, 5, 10])
        assert set(assignment.labels.tolist()) == {0, 1}

    def test_rejects_misaligned(self):
        with pytest.raises(DataError):
            ClusterAssignment(["a", "b"], [0])

    def test_rejects_negative_labels(self):
        import numpy as np

        with pytest.raises(DataError):
            ClusterAssignment(["a"], np.array([-1]))
