"""Chaos tier: SIGKILL a worker mid-request; the answer must not change.

The routed tier's availability claim, tested with a real ``SIGKILL`` to a
real worker process while its requests are mid-flight:

* the supervisor notices within a heartbeat and restarts the worker under
  the same name (same plan-store slice, recovery suppressed);
* the router resubmits the dead worker's in-flight requests verbatim;
* journal replay inside the replacement restores every step the first
  incarnation already charged — ``epochs_reused >= epochs_replayed``, no
  step is double-trained;
* every client receives its result under its original id, bitwise
  identical to a deployment that never lost a worker (the payload
  includes ``runtime_epochs``, so equality also proves no request was
  double-charged).

Unlike the fault-injection tier's armed failpoints (which the supervisor
deliberately *propagates*), an unarmed SIGKILL is the heal-in-place path.
"""

import json
import os
import signal
import time

from harness import ServeProcess

from repro.distrib import HashRing, route_key

VOLATILE = ("id", "latency_seconds")

TARGETS = ("mnli", "sst2", "qnli", "cola", "rte", "mrpc", "boolq", "qqp")


def strip(event: dict) -> dict:
    return {k: v for k, v in event.items() if k not in VOLATILE}


def submit_all(serve: ServeProcess) -> None:
    # top_k=5 keeps several finalists training per request, widening the
    # mid-flight window the SIGKILL must land in.
    for index, target in enumerate(TARGETS):
        serve.send({"op": "select", "target": target, "top_k": 5,
                    "id": f"c{index}"})


def collect_results(serve: ServeProcess) -> dict:
    return {
        target: strip(serve.wait_for("result", id=f"c{index}"))
        for index, target in enumerate(TARGETS)
    }


class TestWorkerKillChaos:
    def test_sigkill_worker_mid_request_is_invisible_to_clients(self, tmp_path):
        reference_serve = ServeProcess(tmp_path / "reference")
        with reference_serve:
            submit_all(reference_serve)
            reference = collect_results(reference_serve)
            reference_serve.send({"op": "shutdown"})

        with ServeProcess(tmp_path / "store", workers=2,
                          timeout=240.0) as serve:
            workers = {w["name"]: w for w in serve.banner["workers"]}
            ring = HashRing(sorted(workers))
            victim = ring.lookup(
                route_key(serve.banner["zoo_version"], "mnli")
            )
            submit_all(serve)
            for index in range(len(TARGETS)):
                serve.wait_for("accepted", id=f"c{index}")
            # Deterministically mid-flight: ``mnli`` (c0) belongs to the
            # victim; a progress event past its first full training stage
            # proves the victim has journaled charged plan steps — its
            # own and (under fair-share round-robin) its siblings' — with
            # stages still to run.  Kill it exactly there.
            assert victim == ring.lookup(
                route_key(serve.banner["zoo_version"], TARGETS[0])
            )
            serve.wait_until(
                lambda m: m.get("event") == "progress"
                and m.get("id") == "c0"
                and m.get("stage", 0) >= 1
            )
            os.kill(workers[victim]["pid"], signal.SIGKILL)

            results = collect_results(serve)
            assert results == reference

            serve.send({"op": "stats", "id": "st"})
            stats = serve.wait_for("stats", id="st")["stats"]

            supervisor = stats["router"]["supervisor"][victim]
            assert supervisor["restarts"] >= 1, json.dumps(supervisor)
            assert supervisor["alive"] is True

            scheduler = stats["workers"][victim]["scheduler"]
            replayed = scheduler["persist"]["epochs_replayed"]
            reused = scheduler["session_pool"]["epochs_reused"]
            # The replacement replayed its predecessor's journaled steps
            # (charged, not retrained): every replayed epoch shows up as
            # a reused one — zero double-trained, zero double-charged.
            assert replayed >= 1
            assert reused >= replayed, (reused, replayed)

            serve.send({"op": "shutdown"})

    def test_sigkill_with_no_inflight_requests_just_restarts(self, tmp_path):
        """Idle-worker death is boring by design: the supervisor restarts
        it and the deployment keeps serving."""
        with ServeProcess(tmp_path / "idle-store", workers=2,
                          timeout=240.0) as serve:
            victim = serve.banner["workers"][0]
            os.kill(victim["pid"], signal.SIGKILL)

            # The fleet keeps answering while the supervisor heals.
            serve.send({"op": "select", "target": "sst2", "top_k": 3,
                        "id": "during"})
            serve.wait_for("result", id="during")

            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                serve.send({"op": "stats", "id": "st"})
                stats = serve.wait_for("stats", id="st")["stats"]
                state = stats["router"]["supervisor"][victim["name"]]
                if state["restarts"] >= 1 and state["alive"]:
                    break
                time.sleep(0.5)
            else:
                raise AssertionError(f"worker never healed: {stats}")

            # And the healed worker serves its shard again.
            serve.send({"op": "select", "target": "mnli", "top_k": 3,
                        "id": "after"})
            serve.wait_for("result", id="after")
            serve.send({"op": "shutdown"})
