"""Marker plumbing for the routed-serving test tier.

Everything under ``tests/distrib/`` exercises the multi-process serving
tier (router + supervisor + workers) and is automatically tagged with the
``distrib`` marker, so the fast CI tier deselects it with ``-m "not
distrib"`` and the dedicated ``test-distrib`` tier selects exactly it —
the same pattern as ``tests/property/conftest.py`` and
``tests/faultinject/conftest.py``.

The tier reuses the fault-injection harness (``ServeProcess`` drives real
``python -m repro serve`` processes over TCP) — the path insertion below
makes ``from harness import ServeProcess`` resolve to it.
"""

import pathlib
import sys

import pytest

_DISTRIB_DIR = pathlib.Path(__file__).parent
_FAULT_DIR = _DISTRIB_DIR.parent / "faultinject"

if str(_FAULT_DIR) not in sys.path:
    sys.path.insert(0, str(_FAULT_DIR))


def pytest_collection_modifyitems(items):
    # The hook sees the whole session's items; only tag the ones that live
    # under this directory.
    for item in items:
        if _DISTRIB_DIR in pathlib.Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.distrib)
